//! A single column of values.

use crate::datatype::{DataType, ScalarValue};
use crate::encoding::{DictColumn, PackedIntColumn, PackedLogical, XorFloatColumn};
use quokka_common::rng::{fnv1a, mix64};
use quokka_common::{QuokkaError, Result};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// A contiguous, homogeneously-typed column of values.
///
/// The five plain variants are simple `Vec`s; the engine cares about the
/// relational semantics and the byte volume of data movement, not about
/// SIMD-level layout. The three encoded variants (`Dict`, `Packed`, `Xor`)
/// are compressed *representations* of the plain types — `data_type()`
/// always reports the logical type, and every kernel either computes on the
/// encoded form directly or decodes once per batch via [`Column::decoded`].
///
/// Dispatch rules:
/// * `Dict` (logical Utf8) and `Packed` (logical Int64/Date) support O(1)
///   random access and are first-class in the hot paths (hashing, keys,
///   comparisons, filters).
/// * `Xor` (logical Float64) is sequential-only; any kernel that needs
///   random access must decode it once, and row-subset operations re-encode
///   their output so compression survives the pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
    /// Dictionary-encoded strings: u32 codes into a sorted dictionary.
    Dict(DictColumn),
    /// Bit-packed integers: `base + fixed-width delta`, logical Int64/Date.
    Packed(PackedIntColumn),
    /// XOR-compressed floats (Gorilla); sequential access only.
    Xor(XorFloatColumn),
}

/// Columns compare by *logical* content: a dictionary column equals the
/// plain string column it decodes to. Plain same-type comparisons keep Vec
/// semantics (so `NaN != NaN`, exactly as before encodings existed).
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Column::Int64(a), Column::Int64(b)) => a == b,
            (Column::Float64(a), Column::Float64(b)) => a == b,
            (Column::Utf8(a), Column::Utf8(b)) => a == b,
            (Column::Bool(a), Column::Bool(b)) => a == b,
            (Column::Date(a), Column::Date(b)) => a == b,
            (Column::Dict(a), Column::Dict(b)) if a.same_dict(b) => a.codes == b.codes,
            (a, b) => {
                a.data_type() == b.data_type() && *a.decoded().as_ref() == *b.decoded().as_ref()
            }
        }
    }
}

impl Column {
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Bool(_) => DataType::Bool,
            Column::Date(_) => DataType::Date,
            Column::Dict(_) => DataType::Utf8,
            Column::Packed(p) => match p.logical {
                PackedLogical::Int64 => DataType::Int64,
                PackedLogical::Date => DataType::Date,
            },
            Column::Xor(_) => DataType::Float64,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Dict(d) => d.len(),
            Column::Packed(p) => p.len(),
            Column::Xor(x) => x.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this column is stored in a compressed encoding.
    pub fn is_encoded(&self) -> bool {
        matches!(self, Column::Dict(_) | Column::Packed(_) | Column::Xor(_))
    }

    /// The encoding this column is stored in, for metrics and benchmarks.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            Column::Dict(_) => "dict",
            Column::Packed(_) => "packed",
            Column::Xor(_) => "xor",
            _ => "plain",
        }
    }

    /// An empty column of the given type.
    pub fn empty(data_type: DataType) -> Column {
        match data_type {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Utf8 => Column::Utf8(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Date => Column::Date(Vec::new()),
        }
    }

    /// Decode to the plain representation: borrowed for plain columns,
    /// owned for encoded ones. Kernels without an encoding-aware fast path
    /// call this once per batch — decode-on-demand, never per row.
    pub fn decoded(&self) -> Cow<'_, Column> {
        match self {
            Column::Dict(d) => Cow::Owned(Column::Utf8(d.to_plain())),
            Column::Packed(p) => Cow::Owned(match p.logical {
                PackedLogical::Int64 => Column::Int64(p.to_vec()),
                PackedLogical::Date => Column::Date(p.iter().map(|v| v as i32).collect()),
            }),
            Column::Xor(x) => Cow::Owned(Column::Float64(x.to_vec())),
            plain => Cow::Borrowed(plain),
        }
    }

    /// Replace an encoded representation with its plain decoding in place.
    pub fn make_plain(&mut self) {
        if self.is_encoded() {
            *self = self.decoded().into_owned();
        }
    }

    /// Re-encode into the most compact representation, or return a plain
    /// clone when no encoding is strictly smaller. Already-encoded columns
    /// and Bools pass through unchanged (Bools are bit-packed on the wire
    /// instead).
    pub fn encode_auto(&self) -> Column {
        match self {
            Column::Utf8(v) => {
                let d = DictColumn::from_plain(v);
                if d.memory_bytes() < self.byte_size() {
                    Column::Dict(d)
                } else {
                    self.clone()
                }
            }
            Column::Int64(v) => {
                let p = PackedIntColumn::from_values(PackedLogical::Int64, v);
                if p.memory_bytes() < v.len() * 8 {
                    Column::Packed(p)
                } else {
                    self.clone()
                }
            }
            Column::Date(v) => {
                let as_i64: Vec<i64> = v.iter().map(|&x| x as i64).collect();
                let p = PackedIntColumn::from_values(PackedLogical::Date, &as_i64);
                if p.memory_bytes() < v.len() * 4 {
                    Column::Packed(p)
                } else {
                    self.clone()
                }
            }
            Column::Float64(v) => xor_or_plain_ref(v),
            other => other.clone(),
        }
    }

    /// The value at row `i`. O(1) for every representation except `Xor`,
    /// which walks its stream (prefer [`Column::decoded`] in loops).
    pub fn get(&self, i: usize) -> ScalarValue {
        match self {
            Column::Int64(v) => ScalarValue::Int64(v[i]),
            Column::Float64(v) => ScalarValue::Float64(v[i]),
            Column::Utf8(v) => ScalarValue::Utf8(v[i].clone()),
            Column::Bool(v) => ScalarValue::Bool(v[i]),
            Column::Date(v) => ScalarValue::Date(v[i]),
            Column::Dict(d) => ScalarValue::Utf8(d.str_at(i).to_string()),
            Column::Packed(p) => match p.logical {
                PackedLogical::Int64 => ScalarValue::Int64(p.get(i)),
                PackedLogical::Date => ScalarValue::Date(p.get(i) as i32),
            },
            Column::Xor(x) => ScalarValue::Float64(x.get_slow(i)),
        }
    }

    /// Build a column of `data_type` from scalar values, coercing compatible
    /// numeric scalars (Int64 <-> Float64) where needed.
    pub fn from_scalars(data_type: DataType, values: &[ScalarValue]) -> Result<Column> {
        let mut col = Column::empty(data_type);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Append one scalar, coercing Int64 <-> Float64. Appending to an
    /// encoded column decodes it in place first.
    pub fn push(&mut self, value: &ScalarValue) -> Result<()> {
        self.make_plain();
        match (self, value) {
            (Column::Int64(v), ScalarValue::Int64(x)) => v.push(*x),
            (Column::Int64(v), ScalarValue::Float64(x)) => v.push(*x as i64),
            (Column::Float64(v), ScalarValue::Float64(x)) => v.push(*x),
            (Column::Float64(v), ScalarValue::Int64(x)) => v.push(*x as f64),
            (Column::Utf8(v), ScalarValue::Utf8(x)) => v.push(x.clone()),
            (Column::Bool(v), ScalarValue::Bool(x)) => v.push(*x),
            (Column::Date(v), ScalarValue::Date(x)) => v.push(*x),
            (Column::Date(v), ScalarValue::Int64(x)) => v.push(*x as i32),
            (col, val) => {
                return Err(QuokkaError::TypeError(format!(
                    "cannot push {:?} into {} column",
                    val,
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Append row `row` of `src` to this column without materializing a
    /// `ScalarValue`. Both columns must have the same logical data type;
    /// encoded sources are read through their encoding.
    pub fn push_from(&mut self, src: &Column, row: usize) -> Result<()> {
        self.make_plain();
        match (self, src) {
            (Column::Int64(out), Column::Int64(v)) => out.push(v[row]),
            (Column::Float64(out), Column::Float64(v)) => out.push(v[row]),
            (Column::Utf8(out), Column::Utf8(v)) => out.push(v[row].clone()),
            (Column::Bool(out), Column::Bool(v)) => out.push(v[row]),
            (Column::Date(out), Column::Date(v)) => out.push(v[row]),
            (Column::Utf8(out), Column::Dict(d)) => out.push(d.str_at(row).to_string()),
            (Column::Int64(out), Column::Packed(p)) if p.logical == PackedLogical::Int64 => {
                out.push(p.get(row))
            }
            (Column::Date(out), Column::Packed(p)) if p.logical == PackedLogical::Date => {
                out.push(p.get(row) as i32)
            }
            (Column::Float64(out), Column::Xor(x)) => out.push(x.get_slow(row)),
            (out, src) => {
                return Err(QuokkaError::TypeError(format!(
                    "cannot append {} row to {} column",
                    src.data_type(),
                    out.data_type()
                )))
            }
        }
        Ok(())
    }

    /// A column of `len` default values ("zero" of each type), used to pad
    /// the build side of unmatched left-join rows.
    pub fn default_of(data_type: DataType, len: usize) -> Column {
        match data_type {
            DataType::Int64 => Column::Int64(vec![0; len]),
            DataType::Float64 => Column::Float64(vec![0.0; len]),
            DataType::Utf8 => Column::Utf8(vec![String::new(); len]),
            DataType::Bool => Column::Bool(vec![false; len]),
            DataType::Date => Column::Date(vec![0; len]),
        }
    }

    /// Keep the rows where `mask` is true. `mask.len()` must equal
    /// `self.len()`. Encoded columns stay encoded: dictionary columns keep
    /// their (shared) dictionary, packed columns keep their base/width, and
    /// XOR columns are re-compressed from the surviving rows.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(values: &[T], mask: &[bool]) -> Vec<T> {
            values
                .iter()
                .zip(mask.iter())
                .filter_map(|(v, &m)| if m { Some(v.clone()) } else { None })
                .collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(keep(v, mask)),
            Column::Float64(v) => Column::Float64(keep(v, mask)),
            Column::Utf8(v) => Column::Utf8(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Date(v) => Column::Date(keep(v, mask)),
            Column::Dict(d) => {
                Column::Dict(DictColumn::from_parts(keep(&d.codes, mask), d.values.clone()))
            }
            Column::Packed(p) => {
                let kept: Vec<i64> = (0..p.len())
                    .zip(mask.iter())
                    .filter_map(|(i, &m)| if m { Some(p.get(i)) } else { None })
                    .collect();
                Column::Packed(PackedIntColumn::pack(p.logical, p.base, p.width, &kept))
            }
            Column::Xor(x) => xor_or_plain(keep(&x.to_vec(), mask)),
        }
    }

    /// Gather the rows at `indices` (indices may repeat or be out of order).
    /// Preserves encodings the same way [`Column::filter`] does.
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(values: &[T], indices: &[usize]) -> Vec<T> {
            indices.iter().map(|&i| values[i].clone()).collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(gather(v, indices)),
            Column::Float64(v) => Column::Float64(gather(v, indices)),
            Column::Utf8(v) => Column::Utf8(gather(v, indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
            Column::Date(v) => Column::Date(gather(v, indices)),
            Column::Dict(d) => {
                Column::Dict(DictColumn::from_parts(gather(&d.codes, indices), d.values.clone()))
            }
            Column::Packed(p) => {
                let taken: Vec<i64> = indices.iter().map(|&i| p.get(i)).collect();
                Column::Packed(PackedIntColumn::pack(p.logical, p.base, p.width, &taken))
            }
            Column::Xor(x) => xor_or_plain(gather(&x.to_vec(), indices)),
        }
    }

    /// Rows `start .. start + len`.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        fn cut<T: Clone>(values: &[T], start: usize, len: usize) -> Vec<T> {
            values[start..start + len].to_vec()
        }
        match self {
            Column::Int64(v) => Column::Int64(cut(v, start, len)),
            Column::Float64(v) => Column::Float64(cut(v, start, len)),
            Column::Utf8(v) => Column::Utf8(cut(v, start, len)),
            Column::Bool(v) => Column::Bool(cut(v, start, len)),
            Column::Date(v) => Column::Date(cut(v, start, len)),
            Column::Dict(d) => {
                Column::Dict(DictColumn::from_parts(cut(&d.codes, start, len), d.values.clone()))
            }
            Column::Packed(p) => {
                let vals: Vec<i64> = (start..start + len).map(|i| p.get(i)).collect();
                Column::Packed(PackedIntColumn::pack(p.logical, p.base, p.width, &vals))
            }
            Column::Xor(x) => xor_or_plain(cut(&x.to_vec(), start, len)),
        }
    }

    /// Concatenate columns of the same logical type. Dictionary columns
    /// sharing one dictionary concatenate without decoding; any other
    /// encoded input decodes to plain (concatenation crosses encoding
    /// contexts, so the combined packing would have to be recomputed
    /// anyway).
    pub fn concat(columns: &[&Column]) -> Result<Column> {
        let first = columns.first().ok_or_else(|| QuokkaError::internal("concat of 0 columns"))?;
        for col in columns {
            if col.data_type() != first.data_type() {
                return Err(QuokkaError::TypeError(format!(
                    "concat type mismatch: {} vs {}",
                    first.data_type(),
                    col.data_type()
                )));
            }
        }
        if let Column::Dict(head) = first {
            if columns.iter().all(|c| matches!(c, Column::Dict(d) if d.same_dict(head))) {
                let mut codes = Vec::with_capacity(columns.iter().map(|c| c.len()).sum());
                for col in columns {
                    if let Column::Dict(d) = col {
                        codes.extend_from_slice(&d.codes);
                    }
                }
                return Ok(Column::Dict(DictColumn::from_parts(codes, head.values.clone())));
            }
        }
        let mut out = Column::empty(first.data_type());
        for col in columns {
            let plain = col.decoded();
            match (&mut out, plain.as_ref()) {
                (Column::Int64(o), Column::Int64(v)) => o.extend_from_slice(v),
                (Column::Float64(o), Column::Float64(v)) => o.extend_from_slice(v),
                (Column::Utf8(o), Column::Utf8(v)) => o.extend(v.iter().cloned()),
                (Column::Bool(o), Column::Bool(v)) => o.extend_from_slice(v),
                (Column::Date(o), Column::Date(v)) => o.extend_from_slice(v),
                _ => unreachable!("logical type checked above"),
            }
        }
        Ok(out)
    }

    /// Mix this column's row-wise hash into `hashes` (one u64 per row),
    /// used for hash partitioning and hash joins. Int64/Date/Float64 values
    /// that compare equal hash identically so cross-type joins on numeric
    /// keys behave — and every encoded representation hashes bit-identically
    /// to its plain decoding, so a dictionary column on one side of a
    /// shuffle partitions exactly like the plain strings on the other.
    pub fn hash_into(&self, hashes: &mut [u64]) {
        debug_assert_eq!(hashes.len(), self.len());
        match self {
            Column::Int64(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ mix64(*x as u64));
                }
            }
            Column::Date(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ mix64(*x as i64 as u64));
                }
            }
            Column::Float64(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    // Hash the value as i64 when it is integral so that a
                    // Float64 join key equal to an Int64 key hashes the same.
                    let bits = if x.fract() == 0.0 { *x as i64 as u64 } else { x.to_bits() };
                    *h = mix64(*h ^ mix64(bits));
                }
            }
            Column::Utf8(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ fnv1a(x.as_bytes()));
                }
            }
            Column::Bool(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ (*x as u64 + 1));
                }
            }
            Column::Dict(d) => {
                // Hash each dictionary entry once, then fan out over codes.
                let lut: Vec<u64> = d.values.iter().map(|s| fnv1a(s.as_bytes())).collect();
                for (h, &c) in hashes.iter_mut().zip(&d.codes) {
                    *h = mix64(*h ^ lut[c as usize]);
                }
            }
            Column::Packed(p) => {
                for (i, h) in hashes.iter_mut().enumerate() {
                    *h = mix64(*h ^ mix64(p.get(i) as u64));
                }
            }
            Column::Xor(x) => {
                for (h, v) in hashes.iter_mut().zip(x.to_vec()) {
                    let bits = if v.fract() == 0.0 { v as i64 as u64 } else { v.to_bits() };
                    *h = mix64(*h ^ mix64(bits));
                }
            }
        }
    }

    /// The *logical* (decoded) size in bytes — what the column would occupy
    /// as a plain `Vec`. This is the "raw" side of every raw-vs-encoded
    /// metric; [`Column::memory_bytes`] is the encoded side.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.iter().map(|s| s.len() + 4).sum(),
            Column::Dict(d) => d.codes.iter().map(|&c| d.values[c as usize].len() + 4).sum(),
            Column::Packed(p) => match p.logical {
                PackedLogical::Int64 => p.len() * 8,
                PackedLogical::Date => p.len() * 4,
            },
            Column::Xor(x) => x.len() * 8,
        }
    }

    /// The encoded in-memory footprint in bytes: what this column actually
    /// costs to hold, ship, or back up. Equal to [`Column::byte_size`] for
    /// plain columns, smaller for encoded ones. Admission control and the
    /// shuffle accounting charge this.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::Dict(d) => d.memory_bytes(),
            Column::Packed(p) => p.memory_bytes(),
            Column::Xor(x) => x.memory_bytes(),
            plain => plain.byte_size(),
        }
    }

    /// Borrow as `&[i64]`, failing for other representations.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Int64, got {}", other.describe())))
            }
        }
    }

    /// Borrow as `&[f64]`, failing for other representations.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Float64, got {}", other.describe())))
            }
        }
    }

    /// Borrow as `&[bool]`, failing for other representations.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Bool, got {}", other.describe())))
            }
        }
    }

    /// Borrow as `&[String]`, failing for other representations.
    pub fn as_utf8(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Utf8, got {}", other.describe())))
            }
        }
    }

    /// Borrow as `&[i32]` (dates), failing for other representations.
    pub fn as_date(&self) -> Result<&[i32]> {
        match self {
            Column::Date(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Date, got {}", other.describe())))
            }
        }
    }

    /// The column's values as f64, coercing Int64/Date (used by aggregates
    /// and arithmetic). Encoded numeric columns decode on demand.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        match self {
            Column::Float64(v) => Ok(v.clone()),
            Column::Int64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Date(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Packed(p) => Ok(p.iter().map(|x| x as f64).collect()),
            Column::Xor(x) => Ok(x.to_vec()),
            other => {
                Err(QuokkaError::TypeError(format!("cannot coerce {} to f64", other.describe())))
            }
        }
    }

    /// Logical type plus encoding, for error messages.
    fn describe(&self) -> String {
        if self.is_encoded() {
            format!("{} ({})", self.data_type(), self.encoding_name())
        } else {
            self.data_type().to_string()
        }
    }
}

/// XOR-compress `values`, or keep them plain when compression would not
/// shrink them (pathological streams can exceed 8 bytes/value).
pub(crate) fn xor_or_plain(values: Vec<f64>) -> Column {
    let x = XorFloatColumn::from_values(&values);
    if x.memory_bytes() < values.len() * 8 {
        Column::Xor(x)
    } else {
        Column::Float64(values)
    }
}

fn xor_or_plain_ref(values: &[f64]) -> Column {
    let x = XorFloatColumn::from_values(values);
    if x.memory_bytes() < values.len() * 8 {
        Column::Xor(x)
    } else {
        Column::Float64(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Column::Int64(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.get(1), ScalarValue::Int64(2));
        assert!(!c.is_empty());
        assert!(Column::empty(DataType::Utf8).is_empty());
    }

    #[test]
    fn filter_take_slice() {
        let c = Column::Utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        assert_eq!(
            c.filter(&[true, false, true, false]),
            Column::Utf8(vec!["a".into(), "c".into()])
        );
        assert_eq!(c.take(&[3, 3, 0]), Column::Utf8(vec!["d".into(), "d".into(), "a".into()]));
        assert_eq!(c.slice(1, 2), Column::Utf8(vec!["b".into(), "c".into()]));
    }

    #[test]
    fn concat_and_type_mismatch() {
        let a = Column::Int64(vec![1, 2]);
        let b = Column::Int64(vec![3]);
        assert_eq!(Column::concat(&[&a, &b]).unwrap(), Column::Int64(vec![1, 2, 3]));
        let c = Column::Float64(vec![1.0]);
        assert!(Column::concat(&[&a, &c]).is_err());
        assert!(Column::concat(&[]).is_err());
    }

    #[test]
    fn push_coerces_numeric() {
        let mut c = Column::Float64(vec![]);
        c.push(&ScalarValue::Int64(2)).unwrap();
        c.push(&ScalarValue::Float64(1.5)).unwrap();
        assert_eq!(c, Column::Float64(vec![2.0, 1.5]));
        assert!(c.push(&ScalarValue::Utf8("x".into())).is_err());
    }

    #[test]
    fn from_scalars_roundtrip() {
        let vals = vec![ScalarValue::Date(5), ScalarValue::Date(9)];
        let c = Column::from_scalars(DataType::Date, &vals).unwrap();
        assert_eq!(c, Column::Date(vec![5, 9]));
    }

    #[test]
    fn hashing_is_consistent_for_equal_numeric_values() {
        let ints = Column::Int64(vec![42, 7]);
        let floats = Column::Float64(vec![42.0, 7.0]);
        let mut h1 = vec![0u64; 2];
        let mut h2 = vec![0u64; 2];
        ints.hash_into(&mut h1);
        floats.hash_into(&mut h2);
        assert_eq!(h1, h2);
        // and different values produce different hashes
        assert_ne!(h1[0], h1[1]);
    }

    #[test]
    fn byte_size_estimates() {
        assert_eq!(Column::Int64(vec![1, 2]).byte_size(), 16);
        assert_eq!(Column::Date(vec![1, 2, 3]).byte_size(), 12);
        assert_eq!(Column::Bool(vec![true]).byte_size(), 1);
        assert_eq!(Column::Utf8(vec!["ab".into()]).byte_size(), 6);
    }

    #[test]
    fn push_from_appends_typed_rows() {
        let src = Column::Utf8(vec!["x".into(), "y".into()]);
        let mut dst = Column::empty(DataType::Utf8);
        dst.push_from(&src, 1).unwrap();
        dst.push_from(&src, 0).unwrap();
        assert_eq!(dst, Column::Utf8(vec!["y".into(), "x".into()]));
        let mut wrong = Column::empty(DataType::Int64);
        assert!(wrong.push_from(&src, 0).is_err());
    }

    #[test]
    fn default_columns_per_type() {
        assert_eq!(Column::default_of(DataType::Int64, 2), Column::Int64(vec![0, 0]));
        assert_eq!(Column::default_of(DataType::Float64, 1), Column::Float64(vec![0.0]));
        assert_eq!(Column::default_of(DataType::Utf8, 1), Column::Utf8(vec!["".into()]));
        assert_eq!(Column::default_of(DataType::Bool, 1), Column::Bool(vec![false]));
        assert_eq!(Column::default_of(DataType::Date, 1), Column::Date(vec![0]));
    }

    #[test]
    fn typed_accessors() {
        assert!(Column::Int64(vec![1]).as_i64().is_ok());
        assert!(Column::Int64(vec![1]).as_f64().is_err());
        assert_eq!(Column::Int64(vec![1, 2]).to_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert!(Column::Utf8(vec![]).to_f64_vec().is_err());
        assert!(Column::Bool(vec![true]).as_bool().is_ok());
        assert!(Column::Date(vec![1]).as_date().is_ok());
        assert!(Column::Utf8(vec!["a".into()]).as_utf8().is_ok());
    }

    // ----- encoding-aware behaviour -----

    fn dict_col() -> Column {
        Column::Utf8(vec!["MAIL".into(), "AIR".into(), "MAIL".into(), "AIR".into(), "AIR".into()])
            .encode_auto()
    }

    #[test]
    fn encode_auto_picks_each_encoding() {
        assert_eq!(dict_col().encoding_name(), "dict");
        let ints = Column::Int64((0..64).collect()).encode_auto();
        assert_eq!(ints.encoding_name(), "packed");
        let dates = Column::Date(vec![9131; 50]).encode_auto();
        assert_eq!(dates.encoding_name(), "packed");
        let floats = Column::Float64(vec![0.25; 100]).encode_auto();
        assert_eq!(floats.encoding_name(), "xor");
        // High-entropy data stays plain.
        let random: Vec<String> = (0..32).map(|i| format!("unique-{i}")).collect();
        assert_eq!(Column::Utf8(random).encode_auto().encoding_name(), "plain");
    }

    #[test]
    fn encoded_columns_compare_logically_equal_to_plain() {
        let plain = Column::Utf8(vec![
            "MAIL".into(),
            "AIR".into(),
            "MAIL".into(),
            "AIR".into(),
            "AIR".into(),
        ]);
        assert_eq!(dict_col(), plain);
        assert_eq!(plain, dict_col());
        let ints = Column::Int64(vec![5, 6, 7]);
        assert_eq!(ints.encode_auto(), ints);
        let floats = Column::Float64(vec![1.5; 9]);
        assert_eq!(floats.encode_auto(), floats);
        assert_ne!(dict_col(), ints);
    }

    #[test]
    fn encoded_filter_take_slice_match_plain() {
        let plain = Column::Utf8(vec![
            "MAIL".into(),
            "AIR".into(),
            "MAIL".into(),
            "AIR".into(),
            "AIR".into(),
        ]);
        let enc = dict_col();
        let mask = [true, false, true, true, false];
        assert_eq!(enc.filter(&mask), plain.filter(&mask));
        assert!(enc.filter(&mask).is_encoded(), "filter keeps the dictionary");
        assert_eq!(enc.take(&[4, 0, 0]), plain.take(&[4, 0, 0]));
        assert_eq!(enc.slice(1, 3), plain.slice(1, 3));

        let ints = Column::Int64(vec![100, 104, 101, 180, 100]);
        let penc = ints.encode_auto();
        assert_eq!(penc.filter(&mask), ints.filter(&mask));
        assert!(penc.filter(&mask).is_encoded(), "filter keeps the packing");
        assert_eq!(penc.take(&[3, 3]), ints.take(&[3, 3]));
        assert_eq!(penc.slice(2, 2), ints.slice(2, 2));
    }

    #[test]
    fn encoded_hashes_match_plain_hashes() {
        let strings: Vec<String> =
            (0..64).map(|i| ["TRUCK", "AIRMAIL", "RAIL"][i % 3].to_string()).collect();
        let ints: Vec<i64> = (0..64).map(|i| (i % 9) as i64 + 100).collect();
        let floats: Vec<f64> = (0..64).map(|i| (i % 5) as f64 * 0.25).collect();
        for (plain, encoded) in [
            (Column::Utf8(strings.clone()), Column::Utf8(strings).encode_auto()),
            (Column::Int64(ints.clone()), Column::Int64(ints).encode_auto()),
            (Column::Float64(floats.clone()), Column::Float64(floats).encode_auto()),
        ] {
            assert!(encoded.is_encoded(), "test data must actually encode");
            let mut hp = vec![17u64; plain.len()];
            let mut he = vec![17u64; plain.len()];
            plain.hash_into(&mut hp);
            encoded.hash_into(&mut he);
            assert_eq!(hp, he, "encoded hash must be bit-identical to plain");
        }
    }

    #[test]
    fn memory_bytes_reflects_compression() {
        let enc = dict_col();
        assert!(enc.memory_bytes() < enc.byte_size() * 6 / 5);
        let ints = Column::Int64(vec![1000; 512]).encode_auto();
        assert!(ints.memory_bytes() < ints.byte_size() / 8, "all-equal ints pack to near zero");
        assert_eq!(Column::Int64(vec![1, 2]).memory_bytes(), 16);
    }

    #[test]
    fn push_into_encoded_decodes_in_place() {
        let mut c = Column::Int64(vec![5; 100]).encode_auto();
        assert!(c.is_encoded());
        c.push(&ScalarValue::Int64(9)).unwrap();
        assert_eq!(c.len(), 101);
        assert_eq!(c.get(100), ScalarValue::Int64(9));

        let mut dst = Column::empty(DataType::Utf8);
        let src = dict_col();
        dst.push_from(&src, 1).unwrap();
        assert_eq!(dst, Column::Utf8(vec!["AIR".into()]));
    }

    #[test]
    fn concat_shares_or_decays_dictionaries() {
        let enc = dict_col();
        let left = enc.slice(0, 2);
        let right = enc.slice(2, 3);
        let merged = Column::concat(&[&left, &right]).unwrap();
        assert!(merged.is_encoded(), "same-dictionary concat stays encoded");
        assert_eq!(merged, enc);
        // Different dictionaries decay to plain but stay logically correct.
        let other = Column::Utf8(vec!["ZZZ".into()]).encode_auto();
        let mixed = Column::concat(&[&enc, &other]).unwrap();
        assert_eq!(mixed.len(), 6);
        assert_eq!(mixed.get(5), ScalarValue::Utf8("ZZZ".into()));
    }

    #[test]
    fn decoded_roundtrips_every_encoding() {
        for plain in [
            Column::Utf8(vec!["x".into(), "y".into(), "x".into(), "x".into()]),
            Column::Int64(vec![3, 1, 2, 3]),
            Column::Date(vec![100, 101, 100, 99]),
            Column::Float64(vec![0.5, 0.5, 0.25, 0.5]),
        ] {
            let enc = plain.encode_auto();
            assert_eq!(enc.decoded().as_ref(), &plain);
            assert_eq!(enc.data_type(), plain.data_type());
            assert_eq!(enc.byte_size(), plain.byte_size(), "byte_size stays logical");
        }
    }
}
