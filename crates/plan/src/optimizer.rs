//! Rule-based logical optimizer.
//!
//! Both frontends — the [`PlanBuilder`](crate::logical::PlanBuilder) DSL and
//! the SQL binder — emit plans exactly as written: `WHERE` filters above the
//! join tree, scans that materialize every column, and whatever build/probe
//! order the query author happened to choose. This module rewrites those
//! naive plans into the shape a columnar, shuffle-based engine wants to
//! execute: selections evaluated at (or fused into) the scans, scans that
//! read only the columns the query references, equi-joins recovered from
//! cross joins, the smaller input on the build side of each hash join, and
//! top-k limits folded into their sorts.
//!
//! Every rule preserves the plan's output schema and its result multiset —
//! the optimized and unoptimized plan of any query must be observationally
//! identical on the reference executor and on the distributed runtime
//! (including under fault injection). [`Optimizer::optimize`] re-derives the
//! output schema after rewriting and fails loudly if a rule ever broke that
//! contract.
//!
//! The rules, in pipeline order:
//!
//! 1. **Constant folding** — fold column-free subexpressions into literals
//!    (through the same columnar evaluator the runtime uses) and apply the
//!    boolean identities; `Filter(true)` nodes disappear.
//! 2. **Filter merging** — adjacent filters collapse into one conjunction.
//! 3. **Predicate pushdown** — filters sink below projections (with
//!    column-reference substitution), below sorts, into the matching side of
//!    inner joins (probe side only for the outer-ish variants), through
//!    group-key columns of aggregations, and down to the scans, where stage
//!    fusion evaluates them inside the scan tasks.
//! 4. **Filter → join conversion** — an equality conjunct relating the two
//!    sides of an inner join becomes a hash-join key; a cross join (as
//!    lowered from a comma-separated `FROM` list) plus `WHERE` equality
//!    becomes an ordinary equi-join.
//! 5. **Build-side selection** — using catalog row counts, the smaller
//!    estimated input of an inner join becomes the build (hash-table) side;
//!    a reordering projection keeps the output schema identical.
//! 6. **Top-k pushdown** — `Limit` over `Sort` becomes a top-k sort.
//! 7. **Projection pruning** — scans are narrowed to the columns the rest of
//!    the plan actually references (re-derived *after* pushdown, so pushed
//!    predicates keep their columns alive at the scan but nowhere above it).

use crate::catalog::Catalog;
use crate::expr::{CmpOpKind, Expr};
use crate::logical::{JoinType, LogicalPlan};
use quokka_batch::datatype::ScalarValue;
use quokka_batch::Schema;
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeSet;

/// Default row-count estimate for tables the statistics source cannot
/// answer for.
const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Fraction of rows assumed to survive a filter when estimating join input
/// sizes. The exact value matters little: build-side selection only compares
/// the two sides of one join.
const FILTER_SELECTIVITY: f64 = 0.25;

/// The rule names, in pipeline order (EXPLAIN and docs reference these).
pub const RULE_NAMES: [&str; 7] = [
    "fold_constants",
    "merge_filters",
    "push_down_filters",
    "filter_to_join",
    "choose_build_side",
    "push_down_topk",
    "prune_scan_columns",
];

/// Rule-based plan rewriter. Construct with [`Optimizer::new`] (no
/// statistics: build-side selection is skipped) or
/// [`Optimizer::with_catalog`] (row counts drive build-side selection).
pub struct Optimizer<'a> {
    catalog: Option<&'a dyn Catalog>,
}

impl Default for Optimizer<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Optimizer<'a> {
    /// An optimizer without table statistics.
    pub fn new() -> Self {
        Optimizer { catalog: None }
    }

    /// An optimizer that reads row-count estimates from `catalog`.
    pub fn with_catalog(catalog: &'a dyn Catalog) -> Self {
        Optimizer { catalog: Some(catalog) }
    }

    /// Run the full rule pipeline over `plan`.
    ///
    /// The output schema is guaranteed identical to the input plan's; a rule
    /// that would change it is a bug and reported as a `PlanError`.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let original_schema = plan.schema()?;
        let mut optimized = fold_constants(plan.clone())?;
        optimized = merge_filters(optimized)?;
        optimized = push_down_filters(optimized)?;
        optimized = filter_to_join(optimized)?;
        // Conversion can leave a filter directly above a join whose conjuncts
        // now all belong to one side; give them a second chance to sink.
        optimized = push_down_filters(optimized)?;
        optimized = self.choose_build_side(optimized)?;
        optimized = push_down_topk(optimized)?;
        let required: BTreeSet<String> =
            original_schema.column_names().iter().map(|s| s.to_string()).collect();
        optimized = prune_scan_columns(optimized, &required)?;
        let new_schema = optimized.schema()?;
        if new_schema != original_schema {
            return Err(QuokkaError::PlanError(format!(
                "optimizer changed the output schema from {original_schema} to {new_schema}\n{}",
                optimized.display_indent()
            )));
        }
        Ok(optimized)
    }

    /// Apply a single rule from [`RULE_NAMES`] (tests use this to check
    /// that every rule independently preserves schemas and results).
    pub fn apply_rule(&self, name: &str, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let plan = plan.clone();
        match name {
            "fold_constants" => fold_constants(plan),
            "merge_filters" => merge_filters(plan),
            "push_down_filters" => push_down_filters(plan),
            "filter_to_join" => filter_to_join(plan),
            "choose_build_side" => self.choose_build_side(plan),
            "push_down_topk" => push_down_topk(plan),
            "prune_scan_columns" => {
                let required: BTreeSet<String> =
                    plan.schema()?.column_names().iter().map(|s| s.to_string()).collect();
                prune_scan_columns(plan, &required)
            }
            other => Err(QuokkaError::PlanError(format!("unknown optimizer rule '{other}'"))),
        }
    }

    // -- rule 5: build-side selection ---------------------------------------

    /// Swap the sides of an inner join when the probe input is estimated to
    /// be smaller than the build input, so the hash table is built over the
    /// smaller side. A projection restores the original column order.
    fn choose_build_side(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        let Some(catalog) = self.catalog else { return Ok(plan) };
        plan.transform_up(&mut |node| {
            let LogicalPlan::Join { build, probe, on, join_type: JoinType::Inner } = node else {
                return Ok(node);
            };
            let build_schema = build.schema()?;
            let probe_schema = probe.schema()?;
            // Reordering needs name-based resolution over the join output,
            // which duplicate names across sides would make ambiguous.
            let distinct_names =
                build_schema.column_names().iter().all(|n| probe_schema.index_of(n).is_err());
            // 1.5x hysteresis: near-equal sides keep the author's order.
            let should_swap = distinct_names
                && estimate_rows(&build, catalog) > 1.5 * estimate_rows(&probe, catalog);
            if !should_swap {
                return Ok(LogicalPlan::Join { build, probe, on, join_type: JoinType::Inner });
            }
            let swapped = LogicalPlan::Join {
                build: probe,
                probe: build,
                on: on.into_iter().map(|(b, p)| (p, b)).collect(),
                join_type: JoinType::Inner,
            };
            let reorder = build_schema
                .column_names()
                .iter()
                .chain(probe_schema.column_names().iter())
                .map(|name| (Expr::Column(name.to_string()), name.to_string()))
                .collect();
            Ok(LogicalPlan::Project { input: Box::new(swapped), exprs: reorder })
        })
    }
}

/// Row-count estimate for a subplan, from catalog statistics plus coarse
/// per-operator selectivities. Only the *relative* order of the two sides of
/// a join matters, so the constants are deliberately crude.
fn estimate_rows(plan: &LogicalPlan, catalog: &dyn Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            catalog.table_rows(table).map(|r| r as f64).unwrap_or(DEFAULT_TABLE_ROWS).max(1.0)
        }
        LogicalPlan::Filter { input, .. } => FILTER_SELECTIVITY * estimate_rows(input, catalog),
        LogicalPlan::Project { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::Join { build, probe, join_type, .. } => {
            let b = estimate_rows(build, catalog);
            let p = estimate_rows(probe, catalog);
            match join_type {
                // A foreign-key equi-join produces about as many rows as its
                // larger (fact) side.
                JoinType::Inner | JoinType::Left => b.max(p),
                JoinType::Semi | JoinType::Anti => 0.5 * p,
            }
        }
        LogicalPlan::Aggregate { input, group_by, .. } => {
            if group_by.is_empty() {
                1.0
            } else {
                0.25 * estimate_rows(input, catalog)
            }
        }
        LogicalPlan::Sort { input, limit, .. } => {
            let rows = estimate_rows(input, catalog);
            limit.map(|n| rows.min(n as f64)).unwrap_or(rows)
        }
        LogicalPlan::Limit { input, n } => estimate_rows(input, catalog).min(*n as f64),
    }
}

// -- rule 1: constant folding ------------------------------------------------

/// Fold constant subexpressions in every node; drop filters whose predicate
/// folded to `true`.
fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let node = node.map_expressions(&mut |e| e.fold_constants());
        Ok(match node {
            LogicalPlan::Filter { input, predicate: Expr::Literal(ScalarValue::Bool(true)) } => {
                *input
            }
            other => other,
        })
    })
}

// -- rule 2: filter merging --------------------------------------------------

/// Collapse `Filter(Filter(x, a), b)` into `Filter(x, a AND b)`.
fn merge_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::Filter { input, predicate } => match *input {
            LogicalPlan::Filter { input: inner, predicate: first } => {
                Ok(LogicalPlan::Filter { input: inner, predicate: first.and(predicate) })
            }
            other => Ok(LogicalPlan::Filter { input: Box::new(other), predicate }),
        },
        other => Ok(other),
    })
}

// -- rule 3: predicate pushdown ----------------------------------------------

/// Sink every filter as far toward the scans as semantics allow. A single
/// top-down pass suffices: a filter that sinks one level is revisited when
/// the traversal descends into its new position.
fn push_down_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_down(&mut sink_filter)
}

/// Repeatedly push the filter at the top of `node` one level down, until it
/// stops being the top node or cannot sink further.
fn sink_filter(mut node: LogicalPlan) -> Result<LogicalPlan> {
    loop {
        let LogicalPlan::Filter { input, predicate } = node else { return Ok(node) };
        let (pushed, changed) = push_filter_step(*input, predicate)?;
        if !changed {
            return Ok(pushed);
        }
        node = pushed;
    }
}

/// One pushdown step for `Filter { input, predicate }`. Returns the new
/// subtree and whether anything moved.
fn push_filter_step(input: LogicalPlan, predicate: Expr) -> Result<(LogicalPlan, bool)> {
    let keep = |input: LogicalPlan, predicate: Expr| {
        (LogicalPlan::Filter { input: Box::new(input), predicate }, false)
    };
    Ok(match input {
        // Merge filter stacks as they sink.
        LogicalPlan::Filter { input, predicate: first } => {
            (LogicalPlan::Filter { input, predicate: first.and(predicate) }, true)
        }
        // Below a projection, with output-column references replaced by the
        // expressions that compute them.
        LogicalPlan::Project { input, exprs } => {
            let substituted = predicate
                .substitute(&|name| exprs.iter().find(|(_, n)| n == name).map(|(e, _)| e.clone()));
            let filtered = LogicalPlan::Filter { input, predicate: substituted };
            (LogicalPlan::Project { input: Box::new(filtered), exprs }, true)
        }
        // Below a full sort (a top-k sort must see all rows first).
        LogicalPlan::Sort { input, keys, limit: None } => {
            let filtered = LogicalPlan::Filter { input, predicate };
            (LogicalPlan::Sort { input: Box::new(filtered), keys, limit: None }, true)
        }
        // Into the join side(s) each conjunct references.
        LogicalPlan::Join { build, probe, on, join_type } => {
            let build_schema = build.schema()?;
            let probe_schema = probe.schema()?;
            let mut to_build = Vec::new();
            let mut to_probe = Vec::new();
            let mut residual = Vec::new();
            for conjunct in predicate.split_conjuncts() {
                let has_refs = !conjunct.referenced_columns().is_empty();
                let in_build = has_refs && conjunct.references_only(&build_schema);
                let in_probe = has_refs && conjunct.references_only(&probe_schema);
                // Build-side pushdown is unsound for Left (filtering the
                // build side turns matches into default-filled rows) and
                // meaningless for Semi/Anti (the filter sees probe columns
                // only). A name in both schemas is ambiguous: keep above.
                match (in_build && !in_probe, in_probe && !in_build, join_type) {
                    (true, false, JoinType::Inner) => to_build.push(conjunct),
                    (false, true, _) => to_probe.push(conjunct),
                    _ => residual.push(conjunct),
                }
            }
            let changed = !to_build.is_empty() || !to_probe.is_empty();
            let build = match Expr::conjoin(to_build) {
                Some(p) => Box::new(LogicalPlan::Filter { input: build, predicate: p }),
                None => build,
            };
            let probe = match Expr::conjoin(to_probe) {
                Some(p) => Box::new(LogicalPlan::Filter { input: probe, predicate: p }),
                None => probe,
            };
            let join = LogicalPlan::Join { build, probe, on, join_type };
            match Expr::conjoin(residual) {
                Some(p) => (LogicalPlan::Filter { input: Box::new(join), predicate: p }, changed),
                None => (join, changed),
            }
        }
        // Through an aggregation when every referenced column is a group
        // key: filtering whole groups by a key value is the same as
        // filtering their input rows by the key expression.
        LogicalPlan::Aggregate { input, group_by, aggregates } => {
            let key_names: BTreeSet<&str> = group_by.iter().map(|(_, n)| n.as_str()).collect();
            let refs = predicate.referenced_columns();
            if refs.is_empty() || !refs.iter().all(|c| key_names.contains(c.as_str())) {
                keep(LogicalPlan::Aggregate { input, group_by, aggregates }, predicate)
            } else {
                let substituted = predicate.substitute(&|name| {
                    group_by.iter().find(|(_, n)| n == name).map(|(e, _)| e.clone())
                });
                let filtered = LogicalPlan::Filter { input, predicate: substituted };
                (LogicalPlan::Aggregate { input: Box::new(filtered), group_by, aggregates }, true)
            }
        }
        other => keep(other, predicate),
    })
}

// -- rule 4: filter -> join conversion ---------------------------------------

/// Turn equality conjuncts relating the two sides of an inner join into
/// hash-join keys. A cross join (empty key list, as lowered from a
/// comma-separated FROM list) followed by `WHERE a = b` becomes a plain
/// equi-join; joins that already have keys gain extra ones (e.g. Q5's
/// `s_nationkey = c_nationkey` "local supplier" condition).
fn filter_to_join(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Filter { input, predicate } = node else { return Ok(node) };
        let LogicalPlan::Join { build, probe, mut on, join_type: JoinType::Inner } = *input else {
            return Ok(LogicalPlan::Filter { input, predicate });
        };
        let build_schema = build.schema()?;
        let probe_schema = probe.schema()?;
        let mut residual = Vec::new();
        for conjunct in predicate.split_conjuncts() {
            match as_join_key(&conjunct, &build_schema, &probe_schema) {
                Some(pair) => on.push(pair),
                None => residual.push(conjunct),
            }
        }
        let join = LogicalPlan::Join { build, probe, on, join_type: JoinType::Inner };
        Ok(match Expr::conjoin(residual) {
            Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
            None => join,
        })
    })
}

/// If `conjunct` is `a = b` with one plain column per join side (and equal
/// types, so hash equality matches comparison equality), the key pair in
/// `(build column, probe column)` order.
fn as_join_key(
    conjunct: &Expr,
    build_schema: &Schema,
    probe_schema: &Schema,
) -> Option<(String, String)> {
    let Expr::Cmp { op: CmpOpKind::Eq, left, right } = conjunct else { return None };
    let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) else { return None };
    // Each name must resolve on exactly one side, or hashing would read a
    // different column than the comparison did.
    let side = |name: &str| {
        match (build_schema.index_of(name).is_ok(), probe_schema.index_of(name).is_ok()) {
            (true, false) => Some(true),  // build
            (false, true) => Some(false), // probe
            _ => None,
        }
    };
    let (build_col, probe_col) = match (side(a)?, side(b)?) {
        (true, false) => (a.clone(), b.clone()),
        (false, true) => (b.clone(), a.clone()),
        _ => return None,
    };
    let same_type =
        build_schema.data_type(&build_col).ok()? == probe_schema.data_type(&probe_col).ok()?;
    same_type.then_some((build_col, probe_col))
}

// -- rule 6: top-k pushdown --------------------------------------------------

/// Fold `Limit` over `Sort` into a top-k sort, and collapse limit stacks.
fn push_down_topk(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Limit { input, n } = node else { return Ok(node) };
        Ok(match *input {
            LogicalPlan::Sort { input, keys, limit } => {
                let k = limit.map_or(n, |l| l.min(n));
                LogicalPlan::Sort { input, keys, limit: Some(k) }
            }
            LogicalPlan::Limit { input, n: m } => LogicalPlan::Limit { input, n: n.min(m) },
            other => LogicalPlan::Limit { input: Box::new(other), n },
        })
    })
}

// -- rule 7: projection pruning ----------------------------------------------

/// Narrow every scan to the columns required above it. `required` is the set
/// of output column names the parent needs from `plan`.
fn prune_scan_columns(plan: LogicalPlan, required: &BTreeSet<String>) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { table, schema } => {
            let kept: Vec<usize> = (0..schema.len())
                .filter(|&i| required.contains(schema.field(i).name.as_str()))
                .collect();
            // A scan that feeds pure row counting (e.g. COUNT(*)) references
            // no columns at all; keep one so batches still carry row counts.
            let narrowed =
                if kept.is_empty() { schema.project(&[0]) } else { schema.project(&kept) };
            LogicalPlan::Scan { table, schema: narrowed }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut child = required.clone();
            child.extend(predicate.referenced_columns());
            LogicalPlan::Filter { input: Box::new(prune_scan_columns(*input, &child)?), predicate }
        }
        LogicalPlan::Project { input, exprs } => {
            // Drop expressions nothing above needs (at the root, `required`
            // is the full output schema, so the final projection is kept
            // whole). This matters most for the reordering projections
            // build-side selection inserts, which would otherwise reference
            // every column and keep the whole subtree wide.
            let mut kept: Vec<(Expr, String)> =
                exprs.iter().filter(|(_, n)| required.contains(n)).cloned().collect();
            if kept.is_empty() {
                kept.push(exprs[0].clone());
            }
            let mut child = BTreeSet::new();
            for (e, _) in &kept {
                child.extend(e.referenced_columns());
            }
            LogicalPlan::Project {
                input: Box::new(prune_scan_columns(*input, &child)?),
                exprs: kept,
            }
        }
        LogicalPlan::Join { build, probe, on, join_type } => {
            let build_schema = build.schema()?;
            let probe_schema = probe.schema()?;
            // The probe side keeps its keys plus whatever the parent needs;
            // the build side of a semi/anti join contributes no output
            // columns, so only its keys stay alive.
            let mut build_req: BTreeSet<String> = on.iter().map(|(b, _)| b.clone()).collect();
            let mut probe_req: BTreeSet<String> = on.iter().map(|(_, p)| p.clone()).collect();
            if matches!(join_type, JoinType::Inner | JoinType::Left) {
                for name in required {
                    if build_schema.index_of(name).is_ok() {
                        build_req.insert(name.clone());
                    }
                    if probe_schema.index_of(name).is_ok() {
                        probe_req.insert(name.clone());
                    }
                }
            } else {
                probe_req.extend(required.iter().cloned());
            }
            LogicalPlan::Join {
                build: Box::new(prune_scan_columns(*build, &build_req)?),
                probe: Box::new(prune_scan_columns(*probe, &probe_req)?),
                on,
                join_type,
            }
        }
        LogicalPlan::Aggregate { input, group_by, aggregates } => {
            let mut child = BTreeSet::new();
            for (e, _) in &group_by {
                child.extend(e.referenced_columns());
            }
            for a in &aggregates {
                child.extend(a.expr.referenced_columns());
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune_scan_columns(*input, &child)?),
                group_by,
                aggregates,
            }
        }
        // Sort and Limit pass their input columns through; at the root,
        // `required` already names the full output schema, so nothing a
        // caller can observe is dropped.
        LogicalPlan::Sort { input, keys, limit } => {
            let mut child = required.clone();
            child.extend(keys.iter().map(|(k, _)| k.clone()));
            LogicalPlan::Sort { input: Box::new(prune_scan_columns(*input, &child)?), keys, limit }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(prune_scan_columns(*input, required)?), n }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{count, sum};
    use crate::catalog::MemoryCatalog;
    use crate::expr::{col, lit};
    use crate::logical::PlanBuilder;
    use crate::reference::{same_result, ReferenceExecutor};
    use quokka_batch::{Batch, Column, DataType};

    /// A small two-table catalog: a wide fact table and a narrow dim table.
    fn catalog() -> MemoryCatalog {
        let catalog = MemoryCatalog::new();
        let fact = Schema::from_pairs(&[
            ("f_key", DataType::Int64),
            ("f_val", DataType::Float64),
            ("f_tag", DataType::Utf8),
            ("f_pad", DataType::Utf8),
        ]);
        catalog.register(
            "fact",
            fact.clone(),
            vec![Batch::try_new(
                fact,
                vec![
                    Column::Int64((0..100).map(|i| i % 7).collect()),
                    Column::Float64((0..100).map(|i| i as f64 * 0.5).collect()),
                    Column::Utf8((0..100).map(|i| format!("t{}", i % 3)).collect()),
                    Column::Utf8((0..100).map(|_| "padding-padding".to_string()).collect()),
                ],
            )
            .unwrap()],
        );
        let dim = Schema::from_pairs(&[("d_key", DataType::Int64), ("d_name", DataType::Utf8)]);
        catalog.register(
            "dim",
            dim.clone(),
            vec![Batch::try_new(
                dim,
                vec![
                    Column::Int64((0..7).collect()),
                    Column::Utf8((0..7).map(|i| format!("dim-{i}")).collect()),
                ],
            )
            .unwrap()],
        );
        catalog
    }

    fn fact_scan(catalog: &MemoryCatalog) -> PlanBuilder {
        PlanBuilder::scan("fact", catalog.table_schema("fact").unwrap())
    }

    fn dim_scan(catalog: &MemoryCatalog) -> PlanBuilder {
        PlanBuilder::scan("dim", catalog.table_schema("dim").unwrap())
    }

    /// Optimize with stats and assert schema + reference-result parity.
    fn optimize_checked(catalog: &MemoryCatalog, plan: &LogicalPlan) -> LogicalPlan {
        let optimized = Optimizer::with_catalog(catalog).optimize(plan).unwrap();
        assert_eq!(optimized.schema().unwrap(), plan.schema().unwrap());
        let exec = ReferenceExecutor::new(catalog);
        let naive = exec.execute(plan).unwrap();
        let rewritten = exec.execute(&optimized).unwrap();
        assert!(
            same_result(&naive, &rewritten),
            "optimized plan diverged\nnaive:\n{}\noptimized:\n{}",
            plan.display_indent(),
            optimized.display_indent()
        );
        optimized
    }

    /// Collect every scan node's (table, column names).
    fn scans(plan: &LogicalPlan) -> Vec<(String, Vec<String>)> {
        let mut out = Vec::new();
        fn walk(plan: &LogicalPlan, out: &mut Vec<(String, Vec<String>)>) {
            if let LogicalPlan::Scan { table, schema } = plan {
                out.push((
                    table.clone(),
                    schema.column_names().iter().map(|s| s.to_string()).collect(),
                ));
            }
            for child in plan.children() {
                walk(child, out);
            }
        }
        walk(plan, &mut out);
        out
    }

    fn first_filter_predicate(plan: &LogicalPlan) -> Option<&Expr> {
        if let LogicalPlan::Filter { predicate, .. } = plan {
            return Some(predicate);
        }
        plan.children().iter().find_map(|c| first_filter_predicate(c))
    }

    #[test]
    fn constant_expressions_fold_to_literals() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .filter(col("f_val").gt(lit(1.0f64).add(lit(2.0f64))))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let predicate = first_filter_predicate(&optimized).expect("filter kept");
        assert_eq!(*predicate, col("f_val").gt(lit(3.0f64)));
    }

    #[test]
    fn always_true_filters_disappear() {
        let catalog = catalog();
        let plan = fact_scan(&catalog).filter(lit(1i64).lt(lit(2i64))).build().unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        assert!(first_filter_predicate(&optimized).is_none(), "{}", optimized.display_indent());
    }

    #[test]
    fn adjacent_filters_merge() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .filter(col("f_val").gt(lit(1.0f64)))
            .filter(col("f_key").gt(lit(2i64)))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // One Filter directly above the scan, containing both conjuncts.
        match &optimized {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(**input, LogicalPlan::Scan { .. }));
                assert_eq!(predicate.referenced_columns(), vec!["f_val", "f_key"]);
            }
            other => panic!("expected Filter(Scan), got {}", other.display_indent()),
        }
    }

    #[test]
    fn filters_push_below_projections_with_substitution() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .project(vec![(col("f_val").mul(lit(2.0f64)), "double"), (col("f_key"), "k")])
            .filter(col("double").gt(lit(50.0f64)))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // Project on top, filter (over the substituted expression) below.
        match &optimized {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, input } => {
                    assert_eq!(*predicate, col("f_val").mul(lit(2.0f64)).gt(lit(50.0f64)));
                    assert!(matches!(**input, LogicalPlan::Scan { .. }));
                }
                other => panic!("expected Filter below Project, got {}", other.name()),
            },
            other => panic!("expected Project on top, got {}", other.name()),
        }
    }

    #[test]
    fn filters_split_into_inner_join_sides() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Inner)
            .filter(col("d_name").like("dim-%").and(col("f_val").gt(lit(3.0f64))))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // No filter above the join any more; each side got its conjunct.
        match &optimized {
            LogicalPlan::Join { build, probe, .. } => {
                assert!(
                    matches!(**build, LogicalPlan::Filter { .. }),
                    "build side should be filtered: {}",
                    optimized.display_indent()
                );
                assert!(
                    matches!(**probe, LogicalPlan::Filter { .. }),
                    "probe side should be filtered: {}",
                    optimized.display_indent()
                );
            }
            other => panic!("expected bare Join on top, got {}", other.name()),
        }
    }

    #[test]
    fn left_join_build_side_is_not_filtered() {
        let catalog = catalog();
        // Probe (fact) rows must survive even when their dim match would be
        // filtered out; the predicate has to stay above the join.
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Left)
            .filter(col("d_name").like("dim-1%"))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        match &optimized {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Join { .. }));
            }
            other => panic!("expected Filter to stay above Left join, got {}", other.name()),
        }
    }

    #[test]
    fn group_key_filters_push_through_aggregates() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .aggregate(vec![(col("f_tag"), "tag")], vec![sum(col("f_val"), "total")])
            .filter(col("tag").eq(lit("t1")))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // The filter lands below the aggregate, rewritten over f_tag.
        match &optimized {
            LogicalPlan::Aggregate { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert_eq!(*predicate, col("f_tag").eq(lit("t1")));
                }
                other => panic!("expected Filter below Aggregate, got {}", other.name()),
            },
            other => panic!("expected Aggregate on top, got {}", other.name()),
        }
    }

    #[test]
    fn cross_join_plus_equality_becomes_equi_join() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![], JoinType::Inner)
            .filter(col("d_key").eq(col("f_key")).and(col("f_val").gt(lit(10.0f64))))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        fn find_join(plan: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(plan, LogicalPlan::Join { .. }) {
                return Some(plan);
            }
            plan.children().iter().find_map(|c| find_join(c))
        }
        let join = find_join(&optimized).expect("join survives");
        match join {
            LogicalPlan::Join { on, .. } => {
                assert_eq!(on, &vec![("d_key".to_string(), "f_key".to_string())]);
            }
            _ => unreachable!(),
        }
        // The non-equality conjunct was pushed into the fact side.
        assert!(first_filter_predicate(&optimized).is_some());
    }

    #[test]
    fn build_side_selection_puts_the_small_table_on_the_build_side() {
        let catalog = catalog();
        // fact (100 rows) as build, dim (7 rows) as probe: should swap, and
        // a projection must restore the original column order.
        let plan = fact_scan(&catalog)
            .join(dim_scan(&catalog), vec![("f_key", "d_key")], JoinType::Inner)
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        match &optimized {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Join { build, on, .. } => {
                    assert_eq!(build.referenced_tables(), vec!["dim"]);
                    assert_eq!(on, &vec![("d_key".to_string(), "f_key".to_string())]);
                }
                other => panic!("expected swapped Join, got {}", other.name()),
            },
            other => panic!("expected reordering Project, got {}", other.name()),
        }
    }

    #[test]
    fn near_equal_sides_are_not_swapped() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Inner)
            .build()
            .unwrap();
        // dim (7) is already the build side; nothing to do.
        let optimized = optimize_checked(&catalog, &plan);
        assert!(matches!(optimized, LogicalPlan::Join { .. }));
    }

    #[test]
    fn limit_over_sort_becomes_top_k() {
        let catalog = catalog();
        let plan = fact_scan(&catalog).sort(vec![("f_val", false)]).limit(5).build().unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        match &optimized {
            LogicalPlan::Sort { limit, .. } => assert_eq!(*limit, Some(5)),
            other => panic!("expected top-k Sort, got {}", other.name()),
        }
        // And the result really is 5 rows.
        let exec = ReferenceExecutor::new(&catalog);
        assert_eq!(exec.execute(&optimized).unwrap().num_rows(), 5);
    }

    #[test]
    fn scans_read_only_referenced_columns() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Inner)
            .filter(col("f_val").gt(lit(3.0f64)))
            .aggregate(vec![(col("d_name"), "d_name")], vec![sum(col("f_val"), "total")])
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let scans = scans(&optimized);
        let fact_cols = &scans.iter().find(|(t, _)| t == "fact").unwrap().1;
        // f_tag and f_pad are never referenced; f_key (join) and f_val
        // (filter + aggregate) are.
        assert_eq!(fact_cols, &vec!["f_key".to_string(), "f_val".to_string()]);
    }

    #[test]
    fn count_star_scans_keep_one_column() {
        let catalog = catalog();
        let plan =
            fact_scan(&catalog).aggregate(vec![], vec![count(lit(1i64), "n")]).build().unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let scans = scans(&optimized);
        assert_eq!(scans[0].1.len(), 1, "a row-count scan still needs one column");
    }

    #[test]
    fn semi_join_build_side_keeps_only_its_keys() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Semi)
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let scans = scans(&optimized);
        let dim_cols = &scans.iter().find(|(t, _)| t == "dim").unwrap().1;
        assert_eq!(dim_cols, &vec!["d_key".to_string()]);
    }

    #[test]
    fn optimizer_without_stats_skips_build_side_selection() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .join(dim_scan(&catalog), vec![("f_key", "d_key")], JoinType::Inner)
            .build()
            .unwrap();
        let optimized = Optimizer::new().optimize(&plan).unwrap();
        // No stats: no swap, no reordering projection.
        assert!(matches!(optimized, LogicalPlan::Join { .. }));
        assert_eq!(optimized.schema().unwrap(), plan.schema().unwrap());
    }

    #[test]
    fn rule_names_match_pipeline_length() {
        assert_eq!(RULE_NAMES.len(), 7);
    }
}
