/root/repo/target/debug/deps/quokka_storage-eff2d4b06a606ec3.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/libquokka_storage-eff2d4b06a606ec3.rlib: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/libquokka_storage-eff2d4b06a606ec3.rmeta: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
