/root/repo/target/debug/deps/quokka_plan-829514f632075a33.d: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

/root/repo/target/debug/deps/quokka_plan-829514f632075a33: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

crates/plan/src/lib.rs:
crates/plan/src/aggregate.rs:
crates/plan/src/catalog.rs:
crates/plan/src/expr.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
crates/plan/src/reference.rs:
crates/plan/src/stage.rs:
