//! A single column of values.

use crate::datatype::{DataType, ScalarValue};
use quokka_common::rng::{fnv1a, mix64};
use quokka_common::{QuokkaError, Result};
use serde::{Deserialize, Serialize};

/// A contiguous, homogeneously-typed column of values.
///
/// Columns are plain `Vec`s rather than Arrow buffers; the engine cares
/// about the relational semantics and the byte volume of data movement, not
/// about SIMD-level layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
}

impl Column {
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Bool(_) => DataType::Bool,
            Column::Date(_) => DataType::Date,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Date(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty column of the given type.
    pub fn empty(data_type: DataType) -> Column {
        match data_type {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Utf8 => Column::Utf8(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Date => Column::Date(Vec::new()),
        }
    }

    /// The value at row `i`.
    pub fn get(&self, i: usize) -> ScalarValue {
        match self {
            Column::Int64(v) => ScalarValue::Int64(v[i]),
            Column::Float64(v) => ScalarValue::Float64(v[i]),
            Column::Utf8(v) => ScalarValue::Utf8(v[i].clone()),
            Column::Bool(v) => ScalarValue::Bool(v[i]),
            Column::Date(v) => ScalarValue::Date(v[i]),
        }
    }

    /// Build a column of `data_type` from scalar values, coercing compatible
    /// numeric scalars (Int64 <-> Float64) where needed.
    pub fn from_scalars(data_type: DataType, values: &[ScalarValue]) -> Result<Column> {
        let mut col = Column::empty(data_type);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Append one scalar, coercing Int64 <-> Float64.
    pub fn push(&mut self, value: &ScalarValue) -> Result<()> {
        match (self, value) {
            (Column::Int64(v), ScalarValue::Int64(x)) => v.push(*x),
            (Column::Int64(v), ScalarValue::Float64(x)) => v.push(*x as i64),
            (Column::Float64(v), ScalarValue::Float64(x)) => v.push(*x),
            (Column::Float64(v), ScalarValue::Int64(x)) => v.push(*x as f64),
            (Column::Utf8(v), ScalarValue::Utf8(x)) => v.push(x.clone()),
            (Column::Bool(v), ScalarValue::Bool(x)) => v.push(*x),
            (Column::Date(v), ScalarValue::Date(x)) => v.push(*x),
            (Column::Date(v), ScalarValue::Int64(x)) => v.push(*x as i32),
            (col, val) => {
                return Err(QuokkaError::TypeError(format!(
                    "cannot push {:?} into {} column",
                    val,
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Append row `row` of `src` to this column without materializing a
    /// `ScalarValue`. Both columns must have the same data type.
    pub fn push_from(&mut self, src: &Column, row: usize) -> Result<()> {
        match (self, src) {
            (Column::Int64(out), Column::Int64(v)) => out.push(v[row]),
            (Column::Float64(out), Column::Float64(v)) => out.push(v[row]),
            (Column::Utf8(out), Column::Utf8(v)) => out.push(v[row].clone()),
            (Column::Bool(out), Column::Bool(v)) => out.push(v[row]),
            (Column::Date(out), Column::Date(v)) => out.push(v[row]),
            (out, src) => {
                return Err(QuokkaError::TypeError(format!(
                    "cannot append {} row to {} column",
                    src.data_type(),
                    out.data_type()
                )))
            }
        }
        Ok(())
    }

    /// A column of `len` default values ("zero" of each type), used to pad
    /// the build side of unmatched left-join rows.
    pub fn default_of(data_type: DataType, len: usize) -> Column {
        match data_type {
            DataType::Int64 => Column::Int64(vec![0; len]),
            DataType::Float64 => Column::Float64(vec![0.0; len]),
            DataType::Utf8 => Column::Utf8(vec![String::new(); len]),
            DataType::Bool => Column::Bool(vec![false; len]),
            DataType::Date => Column::Date(vec![0; len]),
        }
    }

    /// Keep the rows where `mask` is true. `mask.len()` must equal `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(values: &[T], mask: &[bool]) -> Vec<T> {
            values
                .iter()
                .zip(mask.iter())
                .filter_map(|(v, &m)| if m { Some(v.clone()) } else { None })
                .collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(keep(v, mask)),
            Column::Float64(v) => Column::Float64(keep(v, mask)),
            Column::Utf8(v) => Column::Utf8(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Date(v) => Column::Date(keep(v, mask)),
        }
    }

    /// Gather the rows at `indices` (indices may repeat or be out of order).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(values: &[T], indices: &[usize]) -> Vec<T> {
            indices.iter().map(|&i| values[i].clone()).collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(gather(v, indices)),
            Column::Float64(v) => Column::Float64(gather(v, indices)),
            Column::Utf8(v) => Column::Utf8(gather(v, indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
            Column::Date(v) => Column::Date(gather(v, indices)),
        }
    }

    /// Rows `range.start .. range.end`.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        fn cut<T: Clone>(values: &[T], start: usize, len: usize) -> Vec<T> {
            values[start..start + len].to_vec()
        }
        match self {
            Column::Int64(v) => Column::Int64(cut(v, start, len)),
            Column::Float64(v) => Column::Float64(cut(v, start, len)),
            Column::Utf8(v) => Column::Utf8(cut(v, start, len)),
            Column::Bool(v) => Column::Bool(cut(v, start, len)),
            Column::Date(v) => Column::Date(cut(v, start, len)),
        }
    }

    /// Concatenate columns of the same type. Panics if `columns` is empty.
    pub fn concat(columns: &[&Column]) -> Result<Column> {
        let first = columns.first().ok_or_else(|| QuokkaError::internal("concat of 0 columns"))?;
        let mut out = Column::empty(first.data_type());
        for col in columns {
            if col.data_type() != out.data_type() {
                return Err(QuokkaError::TypeError(format!(
                    "concat type mismatch: {} vs {}",
                    out.data_type(),
                    col.data_type()
                )));
            }
            match (&mut out, col) {
                (Column::Int64(o), Column::Int64(v)) => o.extend_from_slice(v),
                (Column::Float64(o), Column::Float64(v)) => o.extend_from_slice(v),
                (Column::Utf8(o), Column::Utf8(v)) => o.extend(v.iter().cloned()),
                (Column::Bool(o), Column::Bool(v)) => o.extend_from_slice(v),
                (Column::Date(o), Column::Date(v)) => o.extend_from_slice(v),
                _ => unreachable!("type checked above"),
            }
        }
        Ok(out)
    }

    /// Mix this column's row-wise hash into `hashes` (one u64 per row),
    /// used for hash partitioning and hash joins. Int64/Date/Float64 values
    /// that compare equal hash identically so cross-type joins on numeric
    /// keys behave.
    pub fn hash_into(&self, hashes: &mut [u64]) {
        debug_assert_eq!(hashes.len(), self.len());
        match self {
            Column::Int64(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ mix64(*x as u64));
                }
            }
            Column::Date(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ mix64(*x as i64 as u64));
                }
            }
            Column::Float64(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    // Hash the value as i64 when it is integral so that a
                    // Float64 join key equal to an Int64 key hashes the same.
                    let bits = if x.fract() == 0.0 { *x as i64 as u64 } else { x.to_bits() };
                    *h = mix64(*h ^ mix64(bits));
                }
            }
            Column::Utf8(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ fnv1a(x.as_bytes()));
                }
            }
            Column::Bool(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = mix64(*h ^ (*x as u64 + 1));
                }
            }
        }
    }

    /// Approximate in-memory footprint in bytes, used by the cost model when
    /// charging for shuffles, backups, spools and checkpoints.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.iter().map(|s| s.len() + 4).sum(),
        }
    }

    /// Borrow as `&[i64]`, failing for other types.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Int64, got {}", other.data_type())))
            }
        }
    }

    /// Borrow as `&[f64]`, failing for other types.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Float64, got {}", other.data_type())))
            }
        }
    }

    /// Borrow as `&[bool]`, failing for other types.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Bool, got {}", other.data_type())))
            }
        }
    }

    /// Borrow as `&[String]`, failing for other types.
    pub fn as_utf8(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Utf8, got {}", other.data_type())))
            }
        }
    }

    /// Borrow as `&[i32]` (dates), failing for other types.
    pub fn as_date(&self) -> Result<&[i32]> {
        match self {
            Column::Date(v) => Ok(v),
            other => {
                Err(QuokkaError::TypeError(format!("expected Date, got {}", other.data_type())))
            }
        }
    }

    /// The column's values as f64, coercing Int64/Date (used by aggregates
    /// and arithmetic).
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        match self {
            Column::Float64(v) => Ok(v.clone()),
            Column::Int64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Date(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            other => {
                Err(QuokkaError::TypeError(format!("cannot coerce {} to f64", other.data_type())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Column::Int64(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.get(1), ScalarValue::Int64(2));
        assert!(!c.is_empty());
        assert!(Column::empty(DataType::Utf8).is_empty());
    }

    #[test]
    fn filter_take_slice() {
        let c = Column::Utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        assert_eq!(
            c.filter(&[true, false, true, false]),
            Column::Utf8(vec!["a".into(), "c".into()])
        );
        assert_eq!(c.take(&[3, 3, 0]), Column::Utf8(vec!["d".into(), "d".into(), "a".into()]));
        assert_eq!(c.slice(1, 2), Column::Utf8(vec!["b".into(), "c".into()]));
    }

    #[test]
    fn concat_and_type_mismatch() {
        let a = Column::Int64(vec![1, 2]);
        let b = Column::Int64(vec![3]);
        assert_eq!(Column::concat(&[&a, &b]).unwrap(), Column::Int64(vec![1, 2, 3]));
        let c = Column::Float64(vec![1.0]);
        assert!(Column::concat(&[&a, &c]).is_err());
        assert!(Column::concat(&[]).is_err());
    }

    #[test]
    fn push_coerces_numeric() {
        let mut c = Column::Float64(vec![]);
        c.push(&ScalarValue::Int64(2)).unwrap();
        c.push(&ScalarValue::Float64(1.5)).unwrap();
        assert_eq!(c, Column::Float64(vec![2.0, 1.5]));
        assert!(c.push(&ScalarValue::Utf8("x".into())).is_err());
    }

    #[test]
    fn from_scalars_roundtrip() {
        let vals = vec![ScalarValue::Date(5), ScalarValue::Date(9)];
        let c = Column::from_scalars(DataType::Date, &vals).unwrap();
        assert_eq!(c, Column::Date(vec![5, 9]));
    }

    #[test]
    fn hashing_is_consistent_for_equal_numeric_values() {
        let ints = Column::Int64(vec![42, 7]);
        let floats = Column::Float64(vec![42.0, 7.0]);
        let mut h1 = vec![0u64; 2];
        let mut h2 = vec![0u64; 2];
        ints.hash_into(&mut h1);
        floats.hash_into(&mut h2);
        assert_eq!(h1, h2);
        // and different values produce different hashes
        assert_ne!(h1[0], h1[1]);
    }

    #[test]
    fn byte_size_estimates() {
        assert_eq!(Column::Int64(vec![1, 2]).byte_size(), 16);
        assert_eq!(Column::Date(vec![1, 2, 3]).byte_size(), 12);
        assert_eq!(Column::Bool(vec![true]).byte_size(), 1);
        assert_eq!(Column::Utf8(vec!["ab".into()]).byte_size(), 6);
    }

    #[test]
    fn push_from_appends_typed_rows() {
        let src = Column::Utf8(vec!["x".into(), "y".into()]);
        let mut dst = Column::empty(DataType::Utf8);
        dst.push_from(&src, 1).unwrap();
        dst.push_from(&src, 0).unwrap();
        assert_eq!(dst, Column::Utf8(vec!["y".into(), "x".into()]));
        let mut wrong = Column::empty(DataType::Int64);
        assert!(wrong.push_from(&src, 0).is_err());
    }

    #[test]
    fn default_columns_per_type() {
        assert_eq!(Column::default_of(DataType::Int64, 2), Column::Int64(vec![0, 0]));
        assert_eq!(Column::default_of(DataType::Float64, 1), Column::Float64(vec![0.0]));
        assert_eq!(Column::default_of(DataType::Utf8, 1), Column::Utf8(vec!["".into()]));
        assert_eq!(Column::default_of(DataType::Bool, 1), Column::Bool(vec![false]));
        assert_eq!(Column::default_of(DataType::Date, 1), Column::Date(vec![0]));
    }

    #[test]
    fn typed_accessors() {
        assert!(Column::Int64(vec![1]).as_i64().is_ok());
        assert!(Column::Int64(vec![1]).as_f64().is_err());
        assert_eq!(Column::Int64(vec![1, 2]).to_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert!(Column::Utf8(vec![]).to_f64_vec().is_err());
        assert!(Column::Bool(vec![true]).as_bool().is_ok());
        assert!(Column::Date(vec![1]).as_date().is_ok());
        assert!(Column::Utf8(vec!["a".into()]).as_utf8().is_ok());
    }
}
