/root/repo/target/debug/deps/quokka_tpch-8f4787f40a472563.d: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libquokka_tpch-8f4787f40a472563.rmeta: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/generator.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/q01_q11.rs:
crates/tpch/src/queries/q12_q22.rs:
crates/tpch/src/schema.rs:
