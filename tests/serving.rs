//! Integration tests: concurrent serving — plan cache and admission control.
//!
//! The serving path adds two shared pieces to a session: a plan cache
//! (repeated SQL skips parse → bind → decorrelate → optimize) and an
//! admission controller (bounded concurrency, bounded FIFO queue, typed
//! `Overloaded` rejection). This suite proves:
//!
//! * hit/miss/invalidation semantics — including the two soundness hinges:
//!   a catalog change (new generation) and a planning-config change (new
//!   fingerprint) must both miss, and a catalog change must re-plan against
//!   the *new* data;
//! * cached-plan parity on all 22 TPC-H queries: cache-on results are
//!   batch-for-batch identical to cache-off and to the reference executor,
//!   including under chaos (a worker kill must neither poison the cache nor
//!   strand an admission slot);
//! * admission fairness, overload rejection, and permit release on every
//!   exit path.

use quokka::plan::Catalog;
use quokka::tpch::queries::sql::{sql_text, SQL_QUERIES};
use quokka::{
    same_result, AdmissionConfig, Batch, ChaosPlan, Column, DataType, EngineConfig, FailureSpec,
    PlanCacheConfig, QuokkaError, QuokkaSession, Schema,
};
use std::sync::Arc;

fn tpch_session(workers: u32) -> QuokkaSession {
    QuokkaSession::tpch(0.002, workers).expect("generate TPC-H data")
}

/// A tiny session with one integer table `t` whose contents the tests can
/// swap out to exercise catalog invalidation.
fn tiny_session(values: &[i64]) -> QuokkaSession {
    let session = QuokkaSession::new(EngineConfig::quokka(2));
    register_t(&session, values);
    session
}

fn register_t(session: &QuokkaSession, values: &[i64]) {
    let schema = Schema::from_pairs(&[("x", DataType::Int64)]);
    let batch = Batch::try_new(schema.clone(), vec![Column::Int64(values.to_vec())]).unwrap();
    session.register_table("t", schema, vec![batch]);
}

// ---------------------------------------------------------------------------
// Plan cache: hit / miss / invalidation
// ---------------------------------------------------------------------------

#[test]
fn repeated_sql_hits_the_cache_and_stamps_metrics() {
    let session = tiny_session(&[1, 2, 3]);
    let first = session.sql("SELECT sum(x) AS s FROM t").unwrap();
    assert!(!first.is_plan_cache_hit(), "a fresh statement cannot hit");
    let second = session.sql("SELECT sum(x) AS s FROM t").unwrap();
    assert!(second.is_plan_cache_hit(), "the repeat must hit");
    // Whitespace, case and comments are insignificant to the key.
    let variant = session.sql("select SUM(X) as S\n FROM t -- same query\n;").unwrap();
    assert!(variant.is_plan_cache_hit(), "normalized variant must hit");

    let miss = first.collect().unwrap();
    let hit = second.collect().unwrap();
    assert!(!miss.metrics.plan_cache_hit);
    assert!(hit.metrics.plan_cache_hit, "the executed metrics must record the hit");
    assert!(same_result(&miss.batch, &hit.batch));

    let stats = session.plan_cache().stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
}

#[test]
fn literal_variants_share_a_template_but_replan() {
    let session = tiny_session(&(0..50).collect::<Vec<_>>());
    session.sql("SELECT count(*) AS n FROM t WHERE x < 10").unwrap();
    let other = session.sql("SELECT count(*) AS n FROM t WHERE x < 40").unwrap();
    assert!(!other.is_plan_cache_hit(), "different literals must re-plan");
    assert_eq!(session.plan_cache().stats().literal_misses, 1, "but only literals missed");
    // Both literal vectors are now cached variants of one template.
    assert!(session.sql("SELECT count(*) AS n FROM t WHERE x < 10").unwrap().is_plan_cache_hit());
    assert!(session.sql("SELECT count(*) AS n FROM t WHERE x < 40").unwrap().is_plan_cache_hit());
    assert_eq!(session.plan_cache().len(), 1, "one template holds both variants");
    // And the literals were honoured, not swapped: the results differ.
    let ten = session.sql("SELECT count(*) AS n FROM t WHERE x < 10").unwrap().collect().unwrap();
    let forty = session.sql("SELECT count(*) AS n FROM t WHERE x < 40").unwrap().collect().unwrap();
    assert!(!same_result(&ten.batch, &forty.batch), "cached variants must keep their literals");
}

#[test]
fn catalog_changes_invalidate_and_replan_against_new_data() {
    let session = tiny_session(&[1, 2, 3]);
    let before = session.sql("SELECT sum(x) AS s FROM t").unwrap().collect().unwrap();
    assert!(session.sql("SELECT sum(x) AS s FROM t").unwrap().is_plan_cache_hit());

    // Swap the table's contents: the generation advances, so the cached
    // plan is stale and the next statement must re-plan.
    register_t(&session, &[10, 20, 30, 40]);
    let handle = session.sql("SELECT sum(x) AS s FROM t").unwrap();
    assert!(!handle.is_plan_cache_hit(), "a catalog change must invalidate");
    let after = handle.collect().unwrap();
    assert!(
        !same_result(&before.batch, &after.batch),
        "the re-planned query must see the new data (100, not 6)"
    );
    assert!(session.plan_cache().stats().invalidations > 0, "stale entries must be purged");
    // The re-planned entry is cached again under the new generation.
    assert!(session.sql("SELECT sum(x) AS s FROM t").unwrap().is_plan_cache_hit());
}

#[test]
fn planning_config_changes_miss_by_fingerprint() {
    let session = tiny_session(&[1, 2, 3]);
    session.sql("SELECT sum(x) AS s FROM t").unwrap();
    assert!(session.sql("SELECT sum(x) AS s FROM t").unwrap().is_plan_cache_hit());
    // Toggling the optimizer changes the planning fingerprint; the cache is
    // shared (same Arc) but the old entry must not satisfy the new config.
    let naive = session.clone().with_config(EngineConfig::quokka(2).with_optimize(false));
    assert!(Arc::ptr_eq(session.plan_cache(), naive.plan_cache()), "cache section unchanged");
    let handle = naive.sql("SELECT sum(x) AS s FROM t").unwrap();
    assert!(!handle.is_plan_cache_hit(), "a different planning config must miss");
    let outcome = handle.collect().unwrap();
    assert_eq!(outcome.batch.value(0, 0), quokka::ScalarValue::Int64(6));
    // Each config now has its own entry; both hit.
    assert!(session.sql("SELECT sum(x) AS s FROM t").unwrap().is_plan_cache_hit());
    assert!(naive.sql("SELECT sum(x) AS s FROM t").unwrap().is_plan_cache_hit());
}

#[test]
fn explain_and_disabled_cache_bypass_caching() {
    let session = tiny_session(&[1]);
    let explain = session.sql("EXPLAIN SELECT sum(x) AS s FROM t").unwrap();
    assert!(explain.is_explain());
    assert!(!explain.is_plan_cache_hit());
    assert!(session.plan_cache().is_empty(), "EXPLAIN must not populate the cache");
    // EXPLAIN output still renders through the cached-plan-free path.
    let rendering = explain.collect().unwrap();
    assert_eq!(rendering.batch.schema().column_names(), vec!["plan"]);

    let disabled = session
        .clone()
        .with_config(EngineConfig::quokka(2).with_plan_cache(PlanCacheConfig::disabled()));
    disabled.sql("SELECT sum(x) AS s FROM t").unwrap();
    let repeat = disabled.sql("SELECT sum(x) AS s FROM t").unwrap();
    assert!(!repeat.is_plan_cache_hit(), "a disabled cache never hits");
    assert!(disabled.plan_cache().is_empty());
    // The original session's cache was rebuilt away, not shared.
    assert!(!Arc::ptr_eq(session.plan_cache(), disabled.plan_cache()));
}

// ---------------------------------------------------------------------------
// Cached-plan parity: all 22 TPC-H queries, cache on vs off
// ---------------------------------------------------------------------------

/// Cache-off and warmed cache-on runs of the same statement must be
/// batch-for-batch identical (and match the reference executor).
fn check_cached_parity(queries: &[usize]) {
    let on = tpch_session(2);
    let off = on
        .clone()
        .with_config(EngineConfig::quokka(2).with_plan_cache(PlanCacheConfig::disabled()));
    for &q in queries {
        let text = sql_text(q).unwrap();
        let expected = on.sql(text).unwrap().collect_reference().unwrap(); // also warms
        let handle = on.sql(text).unwrap();
        assert!(handle.is_plan_cache_hit(), "Q{q}: warm statement must hit");
        let hit = handle.collect().unwrap();
        assert!(hit.metrics.plan_cache_hit, "Q{q}: executed metrics must record the hit");
        let cold = off.sql(text).unwrap().collect().unwrap();
        assert!(!cold.metrics.plan_cache_hit, "Q{q}: cache-off run must not hit");
        assert!(
            same_result(&hit.batch, &cold.batch),
            "Q{q}: cached plan diverged from the uncached run"
        );
        assert!(
            same_result(&hit.batch, &expected),
            "Q{q}: cached plan diverged from the reference executor"
        );
    }
}

#[test]
fn cached_plan_parity_q1_to_q8() {
    check_cached_parity(&SQL_QUERIES[0..8]);
}

#[test]
fn cached_plan_parity_q9_to_q15() {
    check_cached_parity(&SQL_QUERIES[8..15]);
}

#[test]
fn cached_plan_parity_q16_to_q22() {
    check_cached_parity(&SQL_QUERIES[15..22]);
}

/// A worker kill mid-query must not poison the cache (the next hit still
/// returns the right answer) and must not strand an admission slot.
#[test]
fn chaos_kills_neither_poison_the_cache_nor_strand_admission() {
    let session = tpch_session(3)
        .with_config(EngineConfig::quokka(3).with_admission(AdmissionConfig::bounded(2, 8)));
    for q in [3usize, 6, 12] {
        let text = sql_text(q).unwrap();
        let expected = session.sql(text).unwrap().collect_reference().unwrap(); // warms
        let handle = session.sql(text).unwrap();
        assert!(handle.is_plan_cache_hit(), "Q{q}: warm statement must hit");
        // Kill a worker at the first task-commit boundary of the cached run.
        let chaos_config = EngineConfig::quokka(3)
            .with_admission(AdmissionConfig::bounded(2, 8))
            .with_chaos(ChaosPlan::kill_at_commits(1, 3));
        let outcome = handle.collect_with(&chaos_config).unwrap();
        assert!(outcome.metrics.plan_cache_hit, "Q{q}: chaos run started from the cache");
        assert!(outcome.metrics.chaos_events > 0, "Q{q}: the kill must actually fire");
        assert!(
            same_result(&outcome.batch, &expected),
            "Q{q}: cached plan diverged under a chaos worker kill"
        );
        // The cache survives the crash: the next hit is still correct.
        let again = session.sql(text).unwrap();
        assert!(again.is_plan_cache_hit(), "Q{q}: chaos must not poison the cache");
        assert!(same_result(&again.collect().unwrap().batch, &expected));
    }
    assert_eq!(session.admission().running(), 0, "chaos must not strand admission slots");
    assert_eq!(session.admission().queue_depth(), 0);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[test]
fn every_session_query_reports_its_admission_estimate() {
    let session = tpch_session(2);
    let outcome = session.sql(sql_text(6).unwrap()).unwrap().collect().unwrap();
    // Q6 reads exactly one table; the admitted estimate is its footprint.
    let lineitem = session.catalog().table_bytes("lineitem").unwrap();
    assert_eq!(outcome.metrics.admitted_memory_bytes, lineitem);
    assert!(lineitem > 0);
}

#[test]
fn overload_is_a_typed_rejection_not_a_timeout() {
    let session = tiny_session(&[1, 2, 3])
        .with_config(EngineConfig::quokka(2).with_admission(AdmissionConfig::bounded(1, 0)));
    // Occupy the only slot directly, then submit a query: with a zero-length
    // queue it must be rejected immediately with the typed error.
    let slot = session.admission().acquire(0).unwrap();
    let err = session.sql("SELECT sum(x) AS s FROM t").unwrap().collect().unwrap_err();
    match &err {
        QuokkaError::Overloaded { running, queued, queue_limit } => {
            assert_eq!((*running, *queued, *queue_limit), (1, 0, 0));
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    assert!(err.to_string().contains("retry later"), "{err}");
    assert!(err.is_fatal(), "overload is the client's back-off signal, not a retry");
    drop(slot);
    // Capacity freed: the same statement now runs to completion.
    let outcome = session.sql("SELECT sum(x) AS s FROM t").unwrap().collect().unwrap();
    assert_eq!(outcome.batch.value(0, 0), quokka::ScalarValue::Int64(6));
    assert_eq!(session.admission().stats().rejected, 1);
}

/// With one slot and a deep queue, every concurrent query completes, they
/// are serialized (peak concurrency 1), and waiters are admitted in arrival
/// order — no newcomer overtakes the queue.
#[test]
fn bounded_queue_serializes_fairly_under_contention() {
    let session = Arc::new(
        tpch_session(2)
            .with_config(EngineConfig::quokka(2).with_admission(AdmissionConfig::bounded(1, 8))),
    );
    let expected = Arc::new(session.tpch_query(6).unwrap().collect_reference().unwrap());
    let threads: Vec<_> = (0..5)
        .map(|i| {
            let session = Arc::clone(&session);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let outcome = session.sql(sql_text(6).unwrap()).unwrap().collect().unwrap();
                assert!(same_result(&outcome.batch, &expected), "thread {i} diverged");
                outcome.metrics
            })
        })
        .collect();
    let all: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(all.len(), 5);
    let stats = session.admission().stats();
    assert_eq!(stats.admitted, 5, "every query must eventually be admitted");
    assert_eq!(stats.rejected, 0, "the queue was deep enough for everyone");
    assert_eq!(stats.peak_running, 1, "one slot must serialize execution");
    assert!(stats.queued >= 1, "contention must actually queue someone");
    assert!(
        all.iter().any(|m| m.admission_wait > std::time::Duration::ZERO),
        "queued queries must report their admission wait"
    );
    assert_eq!(session.admission().running(), 0);
    assert_eq!(session.admission().queue_depth(), 0);
}

/// Admission slots are released on *failure* paths too: queries that die
/// under fault injection (and recover, or restart) never leak their permit.
#[test]
fn failed_and_recovered_queries_release_their_slots() {
    let session = tpch_session(3)
        .with_config(EngineConfig::quokka(3).with_admission(AdmissionConfig::bounded(2, 8)));
    let faulty = EngineConfig::quokka(3)
        .with_admission(AdmissionConfig::bounded(2, 8))
        .with_failure(FailureSpec::halfway(1));
    let expected = session.tpch_query(12).unwrap().collect_reference().unwrap();
    let outcome = session.sql(sql_text(12).unwrap()).unwrap().collect_with(&faulty).unwrap();
    assert_eq!(outcome.metrics.failures, 1, "the injected failure must fire");
    assert!(same_result(&outcome.batch, &expected));
    assert!(outcome.metrics.admitted_memory_bytes > 0);
    assert_eq!(session.admission().running(), 0, "recovered query leaked its slot");
    // A follow-up query finds the full capacity available again.
    let again = session.sql(sql_text(12).unwrap()).unwrap().collect().unwrap();
    assert!(same_result(&again.batch, &expected));
    assert_eq!(session.admission().running(), 0);
}

#[test]
fn memory_budget_admits_oversized_queries_only_alone() {
    // A budget below any single table forces serialization but must never
    // starve: the work-conserving rule admits an oversized query when the
    // controller is idle.
    let session = tiny_session(&(0..1000).collect::<Vec<_>>()).with_config(
        EngineConfig::quokka(2).with_admission(AdmissionConfig {
            max_concurrent: None,
            max_queued: 8,
            memory_budget_bytes: Some(1),
        }),
    );
    let outcome = session.sql("SELECT sum(x) AS s FROM t").unwrap().collect().unwrap();
    assert!(outcome.metrics.admitted_memory_bytes > 1, "estimate exceeds the whole budget");
    assert_eq!(session.admission().running(), 0);
    let stats = session.admission().stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.rejected, 0, "oversized-but-alone must be admitted, not rejected");
}
