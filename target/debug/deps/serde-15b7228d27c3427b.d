/root/repo/target/debug/deps/serde-15b7228d27c3427b.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-15b7228d27c3427b.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
