//! Execution metrics collected during a query run.
//!
//! The experiments in the paper report *ratios* of runtimes (overhead,
//! speedup, recovery overhead). The engine additionally records the raw
//! quantities that explain those ratios — bytes spooled durably, bytes backed
//! up locally, lineage bytes logged, GCS transactions, tasks executed,
//! recovery time — so the benchmark harness can print the "why" next to the
//! "what".

use crate::ids::{StageId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Bytes shuffled across one stage edge (producer stage → consumer stage)
/// over the simulated network. The per-edge breakdown is what makes
/// optimizer wins measurable: predicate pushdown and projection pruning
/// shrink specific scan→join edges, and the shuffle-volume bench asserts on
/// exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleEdge {
    /// Stage that produced the shuffled slices.
    pub from_stage: StageId,
    /// Stage that consumed them.
    pub to_stage: StageId,
    /// Total bytes pushed across workers on this edge, as they ship on the
    /// wire (compressed column encodings included).
    pub bytes: u64,
    /// The same traffic measured in plain (decoded) column bytes. The gap
    /// between `raw_bytes` and `bytes` is what the columnar encodings saved
    /// on this edge.
    pub raw_bytes: u64,
}

/// Wire-level transport counters towards one peer, as seen from this
/// process: frames/bytes handed to the peer's send queue, frames/bytes
/// received from it, and the deepest its bounded send queue ever got (the
/// backpressure high-water mark). All zeros under the in-process transport,
/// which has no wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerWireStats {
    /// The peer worker these counters are towards/from.
    pub peer: WorkerId,
    /// Frames enqueued for sending to this peer.
    pub frames_sent: u64,
    /// Encoded bytes enqueued for sending to this peer.
    pub bytes_sent: u64,
    /// Frames received from this peer.
    pub frames_received: u64,
    /// Encoded bytes received from this peer.
    pub bytes_received: u64,
    /// Deepest observed occupancy of the bounded send queue to this peer.
    pub send_queue_peak: u64,
}

/// A snapshot of the counters for one query run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Wall-clock runtime of the query.
    pub runtime: Duration,
    /// Number of tasks executed (including replays and rewinds).
    pub tasks_executed: u64,
    /// Number of tasks executed purely for recovery (replay + rewind).
    pub recovery_tasks: u64,
    /// Bytes of shuffle data pushed over the (simulated) network, measured
    /// in wire-encoded form (compressed column encodings included).
    pub shuffle_bytes: u64,
    /// The same shuffle traffic measured in plain (decoded) column bytes;
    /// `shuffle_raw_bytes / shuffle_bytes` is the network compression ratio.
    pub shuffle_raw_bytes: u64,
    /// Per-edge breakdown of `shuffle_bytes`, sorted by (from, to) stage.
    pub shuffle_edges: Vec<ShuffleEdge>,
    /// Bytes written to the durable object store (spooling / checkpoints).
    pub durable_bytes: u64,
    /// Bytes written to workers' local disks (upstream backup), in encoded
    /// form as stored.
    pub backup_bytes: u64,
    /// Plain (decoded) column bytes of the batches behind `backup_bytes`.
    pub backup_raw_bytes: u64,
    /// Bytes of operator state written as checkpoints (subset of
    /// `durable_bytes` when checkpointing is enabled).
    pub checkpoint_bytes: u64,
    /// Bytes of lineage records committed to the GCS.
    pub lineage_bytes: u64,
    /// Number of GCS transactions committed.
    pub gcs_transactions: u64,
    /// Number of worker failures injected during the run.
    pub failures: u64,
    /// Number of chaos events fired (kills, suspicions, lost backups,
    /// dropped/delayed pushes, stragglers).
    pub chaos_events: u64,
    /// Number of times the failure detector suspected a live worker and
    /// reconciled its channels without killing it.
    pub suspicions: u64,
    /// Number of retries spent publishing task results (push + commit
    /// attempts beyond the first).
    pub push_retries: u64,
    /// Number of times a replay request was re-queued after a failed
    /// delivery attempt.
    pub replay_requeues: u64,
    /// Time spent between failure detection and resumption of normal
    /// execution (coordinator-side recovery planning + rescheduling).
    pub recovery_planning: Duration,
    /// Number of output rows produced by the query.
    pub output_rows: u64,
    /// Number of (non-empty) result emissions the sink stage produced.
    pub result_batches: u64,
    /// Time from query start until the sink emitted its first result batch.
    /// `None` when the query produced no results (or predates streaming).
    /// For a blocking sink (sort/global aggregate) this approaches
    /// `runtime`; for a pipelined sink it is the time-to-first-row the
    /// streaming API delivers on.
    pub time_to_first_batch: Option<Duration>,
    /// The stall watchdog the run actually used, after environment
    /// overrides. Surfaced so tests can assert the effective setting.
    pub effective_watchdog: Duration,
    /// The failure detector's effective suspicion timeout.
    pub effective_suspicion_timeout: Duration,
    /// Whether this execution reused a cached plan (parse, bind,
    /// decorrelation and optimization were all skipped). Stamped by the
    /// facade's plan cache; always `false` for non-SQL frontends.
    pub plan_cache_hit: bool,
    /// Time this query spent waiting in the admission queue before it was
    /// allowed to execute (zero when admission is unlimited or the query
    /// was admitted immediately).
    pub admission_wait: Duration,
    /// The memory estimate (from catalog statistics) this query was
    /// admitted under; zero when admission control is unlimited.
    pub admitted_memory_bytes: u64,
    /// Per-peer wire counters (bytes/frames on the wire, send-queue
    /// high-water marks), sorted by peer. Empty under the in-process
    /// transport.
    pub transport_peers: Vec<PeerWireStats>,
}

impl QueryMetrics {
    /// Overhead of this run relative to a baseline runtime, as defined in
    /// the paper (ratio of runtimes); returns `f64::NAN` for a zero baseline.
    pub fn overhead_vs(&self, baseline: Duration) -> f64 {
        if baseline.is_zero() {
            f64::NAN
        } else {
            self.runtime.as_secs_f64() / baseline.as_secs_f64()
        }
    }

    /// Speedup of a baseline over this run (how much faster this run is).
    pub fn speedup_over(&self, other: Duration) -> f64 {
        if self.runtime.is_zero() {
            f64::NAN
        } else {
            other.as_secs_f64() / self.runtime.as_secs_f64()
        }
    }
}

/// Thread-safe counters shared by workers, the coordinator, the data plane
/// and the storage layer during one query run.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Origin of the first-batch clock. Created at registry construction
    /// and reset by the runtime when workers actually start, so
    /// `time_to_first_batch` and `runtime` share one origin (table loading
    /// is excluded from both).
    started: Mutex<std::time::Instant>,
    tasks_executed: AtomicU64,
    recovery_tasks: AtomicU64,
    shuffle_bytes: AtomicU64,
    shuffle_raw_bytes: AtomicU64,
    /// Per-edge `(encoded bytes, raw bytes)` pairs.
    shuffle_edges: Mutex<BTreeMap<(StageId, StageId), (u64, u64)>>,
    wire_peers: Mutex<BTreeMap<WorkerId, PeerWireStats>>,
    durable_bytes: AtomicU64,
    backup_bytes: AtomicU64,
    backup_raw_bytes: AtomicU64,
    checkpoint_bytes: AtomicU64,
    lineage_bytes: AtomicU64,
    gcs_transactions: AtomicU64,
    failures: AtomicU64,
    chaos_events: AtomicU64,
    suspicions: AtomicU64,
    push_retries: AtomicU64,
    replay_requeues: AtomicU64,
    recovery_planning_nanos: AtomicU64,
    output_rows: AtomicU64,
    result_batches: AtomicU64,
    /// Nanoseconds from `started` to the first sink emission; 0 = not yet.
    first_batch_nanos: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            started: Mutex::new(std::time::Instant::now()),
            tasks_executed: AtomicU64::new(0),
            recovery_tasks: AtomicU64::new(0),
            shuffle_bytes: AtomicU64::new(0),
            shuffle_raw_bytes: AtomicU64::new(0),
            shuffle_edges: Mutex::new(BTreeMap::new()),
            wire_peers: Mutex::new(BTreeMap::new()),
            durable_bytes: AtomicU64::new(0),
            backup_bytes: AtomicU64::new(0),
            backup_raw_bytes: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            lineage_bytes: AtomicU64::new(0),
            gcs_transactions: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            chaos_events: AtomicU64::new(0),
            suspicions: AtomicU64::new(0),
            push_retries: AtomicU64::new(0),
            replay_requeues: AtomicU64::new(0),
            recovery_planning_nanos: AtomicU64::new(0),
            output_rows: AtomicU64::new(0),
            result_batches: AtomicU64::new(0),
            first_batch_nanos: AtomicU64::new(0),
        }
    }
}

impl MetricsRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn add_task(&self, recovery: bool) {
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        if recovery {
            self.recovery_tasks.fetch_add(1, Ordering::Relaxed);
        }
    }
    /// Record one shuffle push: `bytes` as shipped on the wire (encoded) and
    /// `raw_bytes` as the plain column footprint of the same batches.
    pub fn add_shuffle_bytes(&self, bytes: u64, raw_bytes: u64) {
        self.shuffle_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.shuffle_raw_bytes.fetch_add(raw_bytes, Ordering::Relaxed);
    }
    /// Record shuffled bytes against the (producer stage, consumer stage)
    /// edge, in addition to the `shuffle_bytes` total the caller records.
    pub fn add_shuffle_edge(&self, from_stage: StageId, to_stage: StageId, bytes: u64, raw: u64) {
        let mut edges = self.shuffle_edges.lock().expect("shuffle edge map poisoned");
        let entry = edges.entry((from_stage, to_stage)).or_insert((0, 0));
        entry.0 += bytes;
        entry.1 += raw;
    }
    /// Record one frame handed to `peer`'s send queue, and fold the queue
    /// occupancy observed at enqueue time into the high-water mark.
    pub fn add_wire_send(&self, peer: WorkerId, bytes: u64, queue_depth: u64) {
        let mut peers = self.wire_peers.lock().expect("wire peer map poisoned");
        let stats = peers.entry(peer).or_insert(PeerWireStats { peer, ..Default::default() });
        stats.frames_sent += 1;
        stats.bytes_sent += bytes;
        stats.send_queue_peak = stats.send_queue_peak.max(queue_depth);
    }

    /// Record one frame received from `peer`.
    pub fn add_wire_recv(&self, peer: WorkerId, bytes: u64) {
        let mut peers = self.wire_peers.lock().expect("wire peer map poisoned");
        let stats = peers.entry(peer).or_insert(PeerWireStats { peer, ..Default::default() });
        stats.frames_received += 1;
        stats.bytes_received += bytes;
    }

    /// Fold another snapshot's per-peer wire counters into this registry
    /// (used in process mode, where each worker process reports its own
    /// counters to the driver at exit).
    pub fn merge_wire_peers(&self, other: &[PeerWireStats]) {
        let mut peers = self.wire_peers.lock().expect("wire peer map poisoned");
        for s in other {
            let stats =
                peers.entry(s.peer).or_insert(PeerWireStats { peer: s.peer, ..Default::default() });
            stats.frames_sent += s.frames_sent;
            stats.bytes_sent += s.bytes_sent;
            stats.frames_received += s.frames_received;
            stats.bytes_received += s.bytes_received;
            stats.send_queue_peak = stats.send_queue_peak.max(s.send_queue_peak);
        }
    }

    pub fn add_durable_bytes(&self, bytes: u64) {
        self.durable_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
    pub fn add_backup_bytes(&self, bytes: u64) {
        self.backup_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
    /// Record the plain column footprint behind a backup write (the backup
    /// store itself only sees the encoded payload).
    pub fn add_backup_raw_bytes(&self, bytes: u64) {
        self.backup_raw_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
    pub fn add_checkpoint_bytes(&self, bytes: u64) {
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
    pub fn add_lineage_bytes(&self, bytes: u64) {
        self.lineage_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
    pub fn add_gcs_transaction(&self) {
        self.gcs_transactions.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_chaos_event(&self) {
        self.chaos_events.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_suspicion(&self) {
        self.suspicions.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_push_retry(&self) {
        self.push_retries.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_replay_requeue(&self) {
        self.replay_requeues.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_recovery_planning(&self, d: Duration) {
        self.recovery_planning_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
    pub fn add_output_rows(&self, rows: u64) {
        self.output_rows.fetch_add(rows, Ordering::Relaxed);
    }
    /// Restart the first-batch clock (called by the runtime when worker
    /// execution begins, so setup work is excluded from the measurement).
    pub fn restart_clock(&self) {
        *self.started.lock().expect("metrics clock poisoned") = std::time::Instant::now();
    }

    /// Record one (non-empty) sink emission, stamping the time-to-first-batch
    /// on the first call.
    pub fn add_result_batch(&self) {
        self.result_batches.fetch_add(1, Ordering::Relaxed);
        if self.first_batch_nanos.load(Ordering::Relaxed) == 0 {
            let started = *self.started.lock().expect("metrics clock poisoned");
            // `max(1)` so an emission in the first nanosecond still counts
            // as "seen" (0 is the unset sentinel).
            let nanos = (started.elapsed().as_nanos() as u64).max(1);
            let _ = self.first_batch_nanos.compare_exchange(
                0,
                nanos,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Produce an immutable snapshot, attaching the measured wall-clock
    /// runtime of the query.
    pub fn snapshot(&self, runtime: Duration) -> QueryMetrics {
        QueryMetrics {
            runtime,
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            recovery_tasks: self.recovery_tasks.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            shuffle_raw_bytes: self.shuffle_raw_bytes.load(Ordering::Relaxed),
            shuffle_edges: self
                .shuffle_edges
                .lock()
                .expect("shuffle edge map poisoned")
                .iter()
                .map(|(&(from_stage, to_stage), &(bytes, raw_bytes))| ShuffleEdge {
                    from_stage,
                    to_stage,
                    bytes,
                    raw_bytes,
                })
                .collect(),
            durable_bytes: self.durable_bytes.load(Ordering::Relaxed),
            backup_bytes: self.backup_bytes.load(Ordering::Relaxed),
            backup_raw_bytes: self.backup_raw_bytes.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            lineage_bytes: self.lineage_bytes.load(Ordering::Relaxed),
            gcs_transactions: self.gcs_transactions.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            chaos_events: self.chaos_events.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
            push_retries: self.push_retries.load(Ordering::Relaxed),
            replay_requeues: self.replay_requeues.load(Ordering::Relaxed),
            recovery_planning: Duration::from_nanos(
                self.recovery_planning_nanos.load(Ordering::Relaxed),
            ),
            output_rows: self.output_rows.load(Ordering::Relaxed),
            result_batches: self.result_batches.load(Ordering::Relaxed),
            time_to_first_batch: match self.first_batch_nanos.load(Ordering::Relaxed) {
                0 => None,
                nanos => Some(Duration::from_nanos(nanos)),
            },
            // Effective settings and serving provenance are configuration,
            // not counters; the runtime stamps them onto the snapshot after
            // the run.
            effective_watchdog: Duration::ZERO,
            effective_suspicion_timeout: Duration::ZERO,
            plan_cache_hit: false,
            admission_wait: Duration::ZERO,
            admitted_memory_bytes: 0,
            transport_peers: self
                .wire_peers
                .lock()
                .expect("wire peer map poisoned")
                .values()
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.add_task(false);
        reg.add_task(true);
        reg.add_shuffle_bytes(100, 160);
        reg.add_shuffle_edge(0, 2, 60, 100);
        reg.add_shuffle_edge(1, 2, 30, 30);
        reg.add_shuffle_edge(0, 2, 10, 30);
        reg.add_durable_bytes(50);
        reg.add_backup_bytes(25);
        reg.add_backup_raw_bytes(40);
        reg.add_lineage_bytes(12);
        reg.add_gcs_transaction();
        reg.add_failure();
        reg.add_output_rows(7);
        reg.add_recovery_planning(Duration::from_millis(3));
        reg.add_result_batch();
        reg.add_result_batch();

        let snap = reg.snapshot(Duration::from_secs(2));
        assert_eq!(snap.tasks_executed, 2);
        assert_eq!(snap.recovery_tasks, 1);
        assert_eq!(snap.shuffle_bytes, 100);
        assert_eq!(snap.shuffle_raw_bytes, 160);
        assert_eq!(
            snap.shuffle_edges,
            vec![
                ShuffleEdge { from_stage: 0, to_stage: 2, bytes: 70, raw_bytes: 130 },
                ShuffleEdge { from_stage: 1, to_stage: 2, bytes: 30, raw_bytes: 30 },
            ]
        );
        assert_eq!(snap.durable_bytes, 50);
        assert_eq!(snap.backup_bytes, 25);
        assert_eq!(snap.backup_raw_bytes, 40);
        assert_eq!(snap.lineage_bytes, 12);
        assert_eq!(snap.gcs_transactions, 1);
        assert_eq!(snap.failures, 1);
        assert_eq!(snap.output_rows, 7);
        assert_eq!(snap.recovery_planning, Duration::from_millis(3));
        assert_eq!(snap.runtime, Duration::from_secs(2));
        assert_eq!(snap.result_batches, 2);
        assert!(snap.time_to_first_batch.is_some());
    }

    #[test]
    fn wire_peer_stats_accumulate_and_merge() {
        let reg = MetricsRegistry::new();
        reg.add_wire_send(1, 100, 3);
        reg.add_wire_send(1, 50, 7);
        reg.add_wire_send(2, 10, 1);
        reg.add_wire_recv(1, 40);
        let snap = reg.snapshot(Duration::ZERO);
        assert_eq!(snap.transport_peers.len(), 2);
        let p1 = snap.transport_peers[0];
        assert_eq!(p1.peer, 1);
        assert_eq!(p1.frames_sent, 2);
        assert_eq!(p1.bytes_sent, 150);
        assert_eq!(p1.frames_received, 1);
        assert_eq!(p1.bytes_received, 40);
        assert_eq!(p1.send_queue_peak, 7);

        // Merging a remote process's counters sums totals and takes the max
        // of the queue peaks.
        let other = MetricsRegistry::new();
        other.merge_wire_peers(&snap.transport_peers);
        other.add_wire_send(1, 5, 9);
        let merged = other.snapshot(Duration::ZERO);
        assert_eq!(merged.transport_peers[0].frames_sent, 3);
        assert_eq!(merged.transport_peers[0].bytes_sent, 155);
        assert_eq!(merged.transport_peers[0].send_queue_peak, 9);
        // The in-process transport records nothing.
        let quiet = MetricsRegistry::new();
        assert!(quiet.snapshot(Duration::ZERO).transport_peers.is_empty());
    }

    #[test]
    fn first_batch_time_is_unset_without_emissions() {
        let reg = MetricsRegistry::new();
        reg.add_output_rows(3);
        let snap = reg.snapshot(Duration::from_secs(1));
        assert_eq!(snap.result_batches, 0);
        assert_eq!(snap.time_to_first_batch, None);
    }

    #[test]
    fn overhead_and_speedup_ratios() {
        let m = QueryMetrics { runtime: Duration::from_secs(3), ..Default::default() };
        assert!((m.overhead_vs(Duration::from_secs(2)) - 1.5).abs() < 1e-9);
        assert!((m.speedup_over(Duration::from_secs(6)) - 2.0).abs() < 1e-9);
        assert!(m.overhead_vs(Duration::ZERO).is_nan());
    }
}
