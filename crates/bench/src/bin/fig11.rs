//! Fig. 11: scalability to 32 workers.
//!
//! * Default mode (Fig. 11a): Quokka speedup vs the SparkSQL-like and
//!   Trino-like baselines on all 22 queries at 32 workers.
//! * `--recovery` (Fig. 11b): recovery overhead at 32 workers with a worker
//!   killed at 50%, plus Quokka's end-to-end speedup with the failure.

use quokka_bench::{geomean, print_header, print_row, queries_from_env, workers_from_env, Harness};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let workers = workers_from_env(&[32])[0];
    let recovery = std::env::args().any(|a| a == "--recovery");

    if recovery {
        let queries = queries_from_env(&quokka::tpch::REPRESENTATIVE);
        print_header(
            &format!("Fig. 11b — recovery overhead at {workers} workers (failure at 50%)"),
            &["quokka overhead", "spark overhead", "end-to-end speedup vs spark"],
        );
        let mut q_over = Vec::new();
        let mut s_over = Vec::new();
        for &q in &queries {
            let quokka_base = harness.run("quokka", q, &harness.quokka_config(workers))?;
            let spark_base = harness.run("spark", q, &harness.spark_config(workers))?;
            let quokka_fail =
                harness.run_with_failure("quokka", q, &harness.quokka_config(workers), 1, 0.5)?;
            let spark_fail =
                harness.run_with_failure("spark", q, &harness.spark_config(workers), 1, 0.5)?;
            let qo = quokka_fail.seconds / quokka_base.seconds.max(1e-9);
            let so = spark_fail.seconds / spark_base.seconds.max(1e-9);
            q_over.push(qo);
            s_over.push(so);
            print_row(q, &[qo, so, spark_fail.seconds / quokka_fail.seconds.max(1e-9)]);
        }
        println!(
            "paper shape: Quokka's recovery overhead degrades relative to Spark at 32 workers (pipeline-parallel recovery is bounded by stage count), while staying ahead end-to-end; measured geomeans {:.2}x vs {:.2}x",
            geomean(&q_over),
            geomean(&s_over)
        );
        return Ok(());
    }

    let queries = queries_from_env(&quokka::tpch::ALL_QUERIES);
    print_header(
        &format!("Fig. 11a — Quokka speedup at {workers} workers"),
        &["quokka (s)", "vs spark-like", "vs trino-like"],
    );
    let mut vs_spark = Vec::new();
    let mut vs_trino = Vec::new();
    for &q in &queries {
        let quokka = harness.run("quokka", q, &harness.quokka_config(workers))?;
        let spark = harness.run("spark", q, &harness.spark_config(workers))?;
        let trino = harness.run("trino", q, &harness.trino_config(workers))?;
        let s = spark.seconds / quokka.seconds.max(1e-9);
        let t = trino.seconds / quokka.seconds.max(1e-9);
        vs_spark.push(s);
        vs_trino.push(t);
        print_row(q, &[quokka.seconds, s, t]);
    }
    println!(
        "paper shape: ~1.9x vs SparkSQL and ~1.86x vs Trino at 32 workers; measured geomeans {:.2}x / {:.2}x",
        geomean(&vs_spark),
        geomean(&vs_trino)
    );
    Ok(())
}
