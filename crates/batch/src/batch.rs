//! [`Batch`]: the unit of data flowing between tasks.

use crate::column::Column;
use crate::datatype::ScalarValue;
use crate::schema::Schema;
use quokka_common::{QuokkaError, Result};
use serde::{Deserialize, Serialize};

/// An immutable bundle of equal-length columns with a schema.
///
/// A task's output "data partition" (paper terminology) is a sequence of
/// batches destined for one downstream channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Create a batch, validating that the columns match the schema.
    pub fn try_new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(QuokkaError::SchemaMismatch {
                expected: schema.to_string(),
                actual: format!("{} columns", columns.len()),
            });
        }
        let rows = columns.first().map(Column::len).unwrap_or(0);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.data_type != col.data_type() {
                return Err(QuokkaError::SchemaMismatch {
                    expected: schema.to_string(),
                    actual: format!("column '{}' has type {}", field.name, col.data_type()),
                });
            }
            if col.len() != rows {
                return Err(QuokkaError::SchemaMismatch {
                    expected: format!("{rows} rows"),
                    actual: format!("column '{}' has {} rows", field.name, col.len()),
                });
            }
        }
        Ok(Batch { schema, columns, rows })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::empty(f.data_type)).collect();
        Batch { schema, columns, rows: 0 }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The `Int64` column named `name` as a typed slice.
    ///
    /// Unlike indexing + pattern matching, the typed accessors return a
    /// `Result` for both failure modes (unknown name, wrong type), so test
    /// and application code never needs a panicking downcast path.
    pub fn as_i64s(&self, name: &str) -> Result<&[i64]> {
        self.column_by_name(name)?.as_i64()
    }

    /// The `Float64` column named `name` as a typed slice.
    pub fn as_f64s(&self, name: &str) -> Result<&[f64]> {
        self.column_by_name(name)?.as_f64()
    }

    /// The `Utf8` column named `name` as a typed slice.
    pub fn as_strs(&self, name: &str) -> Result<&[String]> {
        self.column_by_name(name)?.as_utf8()
    }

    /// The `Bool` column named `name` as a typed slice.
    pub fn as_bools(&self, name: &str) -> Result<&[bool]> {
        self.column_by_name(name)?.as_bool()
    }

    /// The `Date` column named `name` as a typed slice (days since epoch).
    pub fn as_dates(&self, name: &str) -> Result<&[i32]> {
        self.column_by_name(name)?.as_date()
    }

    /// The value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> ScalarValue {
        self.columns[col].get(row)
    }

    /// One full row as scalars (used by tests and the reference executor).
    pub fn row(&self, row: usize) -> Vec<ScalarValue> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Keep the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Batch> {
        if mask.len() != self.rows {
            return Err(QuokkaError::internal(format!(
                "filter mask has {} entries for {} rows",
                mask.len(),
                self.rows
            )));
        }
        let columns: Vec<Column> = self.columns.iter().map(|c| c.filter(mask)).collect();
        Batch::try_new(self.schema.clone(), columns)
    }

    /// Gather the rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<Batch> {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Batch::try_new(self.schema.clone(), columns)
    }

    /// Rows `[offset, offset+len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        Batch { schema: self.schema.clone(), columns, rows: len }
    }

    /// Project columns by index, producing a batch with the projected schema.
    pub fn project(&self, indices: &[usize]) -> Batch {
        let schema = self.schema.project(indices);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Batch { schema, columns, rows: self.rows }
    }

    /// Project this batch down to the columns of `target` (a subset of this
    /// batch's schema, matched by name). Scans narrowed by the optimizer's
    /// projection pruning use this to drop unreferenced table columns at
    /// read time; a batch already shaped like `target` moves through
    /// untouched (by value, so the unpruned fast path copies nothing).
    pub fn select_to(self, target: &Schema) -> Result<Batch> {
        if self.schema() == target {
            return Ok(self);
        }
        let indices = target
            .fields()
            .iter()
            .map(|f| self.schema.index_of(&f.name))
            .collect::<Result<Vec<_>>>()?;
        Ok(self.project(&indices))
    }

    /// Concatenate batches that share a schema. An empty slice produces an
    /// error (there is no schema to give the result).
    pub fn concat(batches: &[Batch]) -> Result<Batch> {
        let first =
            batches.first().ok_or_else(|| QuokkaError::internal("concat of zero batches"))?;
        let schema = first.schema().clone();
        let mut columns = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let cols: Vec<&Column> = batches.iter().map(|b| b.column(i)).collect();
            columns.push(Column::concat(&cols)?);
        }
        Batch::try_new(schema, columns)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Actual in-memory footprint of this batch's columns, compressed
    /// encodings included. At most [`byte_size`](Batch::byte_size); smaller
    /// whenever columns are dictionary-, bit-pack- or XOR-encoded.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }

    /// Split this batch into chunks of at most `chunk_rows` rows. Returns at
    /// least one (possibly empty) batch.
    pub fn chunks(&self, chunk_rows: usize) -> Vec<Batch> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        if self.rows == 0 {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(self.rows.div_ceil(chunk_rows));
        let mut offset = 0;
        while offset < self.rows {
            let len = chunk_rows.min(self.rows - offset);
            out.push(self.slice(offset, len));
            offset += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    fn sample() -> Batch {
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("name", DataType::Utf8)]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![1, 2, 3, 4]),
                Column::Utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_schema() {
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        assert!(Batch::try_new(schema.clone(), vec![Column::Utf8(vec![])]).is_err());
        assert!(Batch::try_new(schema.clone(), vec![]).is_err());
        let mismatched_len = Batch::try_new(
            Schema::from_pairs(&[("a", DataType::Int64), ("b", DataType::Int64)]),
            vec![Column::Int64(vec![1]), Column::Int64(vec![1, 2])],
        );
        assert!(mismatched_len.is_err());
        assert!(Batch::try_new(schema, vec![Column::Int64(vec![5])]).is_ok());
    }

    #[test]
    fn row_and_value_access() {
        let b = sample();
        assert_eq!(b.num_rows(), 4);
        assert_eq!(b.num_columns(), 2);
        assert_eq!(b.value(2, 0), ScalarValue::Int64(3));
        assert_eq!(b.row(1), vec![ScalarValue::Int64(2), ScalarValue::Utf8("b".into())]);
        assert_eq!(b.column_by_name("name").unwrap().len(), 4);
        assert!(b.column_by_name("missing").is_err());
    }

    #[test]
    fn typed_accessors_return_errors_not_panics() {
        let b = sample();
        assert_eq!(b.as_i64s("id").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(b.as_strs("name").unwrap()[0], "a");
        // Unknown name and wrong type are both plain errors.
        assert!(b.as_i64s("missing").is_err());
        assert!(b.as_f64s("id").is_err());
        assert!(b.as_bools("name").is_err());
        assert!(b.as_dates("id").is_err());
    }

    #[test]
    fn filter_take_slice_project() {
        let b = sample();
        let f = b.filter(&[true, false, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(1, 1), ScalarValue::Utf8("d".into()));

        let t = b.take(&[2, 2]).unwrap();
        assert_eq!(t.column(0), &Column::Int64(vec![3, 3]));

        let s = b.slice(1, 2);
        assert_eq!(s.column(0), &Column::Int64(vec![2, 3]));

        let p = b.project(&[1]);
        assert_eq!(p.schema().column_names(), vec!["name"]);
        assert_eq!(p.num_rows(), 4);

        assert!(b.filter(&[true]).is_err());
    }

    #[test]
    fn concat_and_chunks() {
        let b = sample();
        let joined = Batch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(joined.num_rows(), 8);

        let chunks = joined.chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(Batch::num_rows).sum::<usize>(), 8);
        assert_eq!(chunks[2].num_rows(), 2);

        let empty = Batch::empty(b.schema().clone());
        assert_eq!(empty.chunks(10).len(), 1);
        assert!(Batch::concat(&[]).is_err());
    }

    #[test]
    fn byte_size_sums_columns() {
        let b = sample();
        assert_eq!(b.byte_size(), 4 * 8 + 4 * (1 + 4));
    }
}
