/root/repo/target/release/deps/serde_derive-f9bb399f0be58835.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-f9bb399f0be58835.so: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
