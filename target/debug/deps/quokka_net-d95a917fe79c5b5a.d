/root/repo/target/debug/deps/quokka_net-d95a917fe79c5b5a.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/libquokka_net-d95a917fe79c5b5a.rmeta: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
