/root/repo/target/debug/libserde.rlib: /root/repo/crates/shims/serde/src/lib.rs /root/repo/crates/shims/serde_derive/src/lib.rs
