//! TPC-H queries 12 through 22.

use super::{customer, lineitem, nation, orders, part, partsupp, supplier};
use quokka_batch::datatype::ScalarValue;
use quokka_common::Result;
use quokka_plan::aggregate::{avg, count, count_distinct, sum};
use quokka_plan::expr::{col, date, lit, Expr};
use quokka_plan::logical::{JoinType, LogicalPlan};

fn revenue_expr() -> Expr {
    col("l_extendedprice").mul(lit(1.0f64).sub(col("l_discount")))
}

fn strings(values: &[&str]) -> Vec<ScalarValue> {
    values.iter().map(|s| ScalarValue::from(*s)).collect()
}

/// Q12: shipping modes and order priority.
pub fn q12() -> Result<LogicalPlan> {
    let urgent =
        col("o_orderpriority").eq(lit("1-URGENT")).or(col("o_orderpriority").eq(lit("2-HIGH")));
    orders()
        .join(
            lineitem().filter(
                col("l_shipmode")
                    .in_list(strings(&["MAIL", "SHIP"]))
                    .and(col("l_commitdate").lt(col("l_receiptdate")))
                    .and(col("l_shipdate").lt(col("l_commitdate")))
                    .and(col("l_receiptdate").gt_eq(date("1994-01-01")))
                    .and(col("l_receiptdate").lt(date("1995-01-01"))),
            ),
            vec![("o_orderkey", "l_orderkey")],
            JoinType::Inner,
        )
        .aggregate(
            vec![(col("l_shipmode"), "l_shipmode")],
            vec![
                sum(Expr::case_when(urgent.clone(), lit(1i64), lit(0i64)), "high_line_count"),
                sum(Expr::case_when(urgent, lit(0i64), lit(1i64)), "low_line_count"),
            ],
        )
        .sort(vec![("l_shipmode", true)])
        .build()
}

/// Q13: customer distribution.
///
/// The left join preserves every customer; unmatched customers get the
/// default order key 0, so "has an order" is expressed as `o_orderkey > 0`
/// (real order keys start at 1).
pub fn q13() -> Result<LogicalPlan> {
    orders()
        .filter(col("o_comment").not_like("%special%requests%"))
        .join(customer(), vec![("o_custkey", "c_custkey")], JoinType::Left)
        .project(vec![
            (col("c_custkey"), "c_custkey"),
            (Expr::case_when(col("o_orderkey").gt(lit(0i64)), lit(1i64), lit(0i64)), "has_order"),
        ])
        .aggregate(vec![(col("c_custkey"), "c_custkey")], vec![sum(col("has_order"), "c_count")])
        .aggregate(vec![(col("c_count"), "c_count")], vec![count(col("c_custkey"), "custdist")])
        .sort(vec![("custdist", false), ("c_count", false)])
        .build()
}

/// Q14: promotion effect.
pub fn q14() -> Result<LogicalPlan> {
    part()
        .join(
            lineitem().filter(
                col("l_shipdate")
                    .gt_eq(date("1995-09-01"))
                    .and(col("l_shipdate").lt(date("1995-10-01"))),
            ),
            vec![("p_partkey", "l_partkey")],
            JoinType::Inner,
        )
        .aggregate(
            vec![],
            vec![
                sum(
                    Expr::case_when(col("p_type").like("PROMO%"), revenue_expr(), lit(0.0f64)),
                    "promo_revenue_sum",
                ),
                sum(revenue_expr(), "total_revenue"),
            ],
        )
        .project(vec![(
            lit(100.0f64).mul(col("promo_revenue_sum")).div(col("total_revenue")),
            "promo_revenue",
        )])
        .build()
}

/// Q15: top supplier.
///
/// The specification computes `max(total_revenue)` in a scalar subquery and
/// selects the suppliers equal to it. Recomputing the revenue view twice
/// would compare floating-point sums produced by two different summation
/// orders, so this plan instead takes the top revenue row directly
/// (`ORDER BY total_revenue DESC LIMIT 1`); ties — which the TPC-H data
/// essentially never produces — would return one of the tied suppliers.
pub fn q15() -> Result<LogicalPlan> {
    let revenue_view = lineitem()
        .filter(
            col("l_shipdate")
                .gt_eq(date("1996-01-01"))
                .and(col("l_shipdate").lt(date("1996-04-01"))),
        )
        .aggregate(
            vec![(col("l_suppkey"), "supplier_no")],
            vec![sum(revenue_expr(), "total_revenue")],
        )
        .sort_limit(vec![("total_revenue", false)], 1);
    revenue_view
        .join(supplier(), vec![("supplier_no", "s_suppkey")], JoinType::Inner)
        .project(vec![
            (col("s_suppkey"), "s_suppkey"),
            (col("s_name"), "s_name"),
            (col("s_address"), "s_address"),
            (col("s_phone"), "s_phone"),
            (col("total_revenue"), "total_revenue"),
        ])
        .sort(vec![("s_suppkey", true)])
        .build()
}

/// Q16: parts/supplier relationship.
pub fn q16() -> Result<LogicalPlan> {
    let sizes: Vec<ScalarValue> =
        [49i64, 14, 23, 45, 19, 3, 36, 9].iter().map(|&v| ScalarValue::Int64(v)).collect();
    let candidate_parts = part().filter(
        col("p_brand")
            .not_eq(lit("Brand#45"))
            .and(col("p_type").not_like("MEDIUM POLISHED%"))
            .and(col("p_size").in_list(sizes)),
    );
    let part_suppliers =
        candidate_parts.join(partsupp(), vec![("p_partkey", "ps_partkey")], JoinType::Inner);
    // NOT IN (suppliers with complaints) -> anti join.
    supplier()
        .filter(col("s_comment").like("%Customer%Complaints%"))
        .join(part_suppliers, vec![("s_suppkey", "ps_suppkey")], JoinType::Anti)
        .aggregate(
            vec![(col("p_brand"), "p_brand"), (col("p_type"), "p_type"), (col("p_size"), "p_size")],
            vec![count_distinct(col("ps_suppkey"), "supplier_cnt")],
        )
        .sort(vec![("supplier_cnt", false), ("p_brand", true), ("p_type", true), ("p_size", true)])
        .build()
}

/// Q17: small-quantity-order revenue.
pub fn q17() -> Result<LogicalPlan> {
    let per_part_threshold = lineitem()
        .aggregate(vec![(col("l_partkey"), "ap_partkey")], vec![avg(col("l_quantity"), "avg_qty")])
        .project(vec![
            (col("ap_partkey"), "ap_partkey"),
            (lit(0.2f64).mul(col("avg_qty")), "qty_threshold"),
        ]);
    let brand_lines = part()
        .filter(col("p_brand").eq(lit("Brand#23")).and(col("p_container").eq(lit("MED BOX"))))
        .join(lineitem(), vec![("p_partkey", "l_partkey")], JoinType::Inner);
    per_part_threshold
        .join(brand_lines, vec![("ap_partkey", "l_partkey")], JoinType::Inner)
        .filter(col("l_quantity").lt(col("qty_threshold")))
        .aggregate(vec![], vec![sum(col("l_extendedprice"), "total_price")])
        .project(vec![(col("total_price").div(lit(7.0f64)), "avg_yearly")])
        .build()
}

/// Q18: large volume customer.
pub fn q18() -> Result<LogicalPlan> {
    let big_orders = lineitem()
        .aggregate(
            vec![(col("l_orderkey"), "big_orderkey")],
            vec![sum(col("l_quantity"), "total_qty")],
        )
        .filter(col("total_qty").gt(lit(300.0f64)))
        .project(vec![(col("big_orderkey"), "big_orderkey")]);
    let qualifying_orders =
        big_orders.join(orders(), vec![("big_orderkey", "o_orderkey")], JoinType::Semi);
    customer()
        .join(qualifying_orders, vec![("c_custkey", "o_custkey")], JoinType::Inner)
        .join(lineitem(), vec![("o_orderkey", "l_orderkey")], JoinType::Inner)
        .aggregate(
            vec![
                (col("c_name"), "c_name"),
                (col("c_custkey"), "c_custkey"),
                (col("o_orderkey"), "o_orderkey"),
                (col("o_orderdate"), "o_orderdate"),
                (col("o_totalprice"), "o_totalprice"),
            ],
            vec![sum(col("l_quantity"), "sum_qty")],
        )
        .sort_limit(vec![("o_totalprice", false), ("o_orderdate", true)], 100)
        .build()
}

/// Q19: discounted revenue.
///
/// The generator spells the air ship modes `"AIR"` and `"REG AIR"` (the
/// specification uses `"AIR"`/`"AIR REG"`); the plan matches the generator.
pub fn q19() -> Result<LogicalPlan> {
    let air = col("l_shipmode").in_list(strings(&["AIR", "REG AIR"]));
    let in_person = col("l_shipinstruct").eq(lit("DELIVER IN PERSON"));
    let branch1 = col("p_brand")
        .eq(lit("Brand#12"))
        .and(col("p_container").in_list(strings(&["SM CASE", "SM BOX", "SM PACK", "SM PKG"])))
        .and(col("l_quantity").gt_eq(lit(1.0f64)))
        .and(col("l_quantity").lt_eq(lit(11.0f64)))
        .and(col("p_size").between(ScalarValue::Int64(1), ScalarValue::Int64(5)));
    let branch2 = col("p_brand")
        .eq(lit("Brand#23"))
        .and(col("p_container").in_list(strings(&["MED BAG", "MED BOX", "MED PKG", "MED PACK"])))
        .and(col("l_quantity").gt_eq(lit(10.0f64)))
        .and(col("l_quantity").lt_eq(lit(20.0f64)))
        .and(col("p_size").between(ScalarValue::Int64(1), ScalarValue::Int64(10)));
    let branch3 = col("p_brand")
        .eq(lit("Brand#34"))
        .and(col("p_container").in_list(strings(&["LG CASE", "LG BOX", "LG PACK", "LG PKG"])))
        .and(col("l_quantity").gt_eq(lit(20.0f64)))
        .and(col("l_quantity").lt_eq(lit(30.0f64)))
        .and(col("p_size").between(ScalarValue::Int64(1), ScalarValue::Int64(15)));
    part()
        .join(lineitem(), vec![("p_partkey", "l_partkey")], JoinType::Inner)
        .filter(air.and(in_person).and(branch1.or(branch2).or(branch3)))
        .aggregate(vec![], vec![sum(revenue_expr(), "revenue")])
        .build()
}

/// Q20: potential part promotion.
pub fn q20() -> Result<LogicalPlan> {
    let shipped_1994 = lineitem()
        .filter(
            col("l_shipdate")
                .gt_eq(date("1994-01-01"))
                .and(col("l_shipdate").lt(date("1995-01-01"))),
        )
        .aggregate(
            vec![(col("l_partkey"), "sl_partkey"), (col("l_suppkey"), "sl_suppkey")],
            vec![sum(col("l_quantity"), "shipped_qty")],
        );
    let forest_partsupp = part()
        .filter(col("p_name").like("forest%"))
        .project(vec![(col("p_partkey"), "forest_partkey")])
        .join(partsupp(), vec![("forest_partkey", "ps_partkey")], JoinType::Semi);
    let overstocked = shipped_1994
        .join(
            forest_partsupp,
            vec![("sl_partkey", "ps_partkey"), ("sl_suppkey", "ps_suppkey")],
            JoinType::Inner,
        )
        .filter(
            col("ps_availqty")
                .cast(quokka_batch::DataType::Float64)
                .gt(lit(0.5f64).mul(col("shipped_qty"))),
        )
        .project(vec![(col("ps_suppkey"), "candidate_suppkey")]);
    overstocked
        .join(
            nation().filter(col("n_name").eq(lit("CANADA"))).join(
                supplier(),
                vec![("n_nationkey", "s_nationkey")],
                JoinType::Inner,
            ),
            vec![("candidate_suppkey", "s_suppkey")],
            JoinType::Semi,
        )
        .project(vec![(col("s_name"), "s_name"), (col("s_address"), "s_address")])
        .sort(vec![("s_name", true)])
        .build()
}

/// Q21: suppliers who kept orders waiting.
///
/// The correlated `EXISTS` / `NOT EXISTS` pair is decorrelated into
/// per-order supplier counts: "another supplier contributed to the order"
/// becomes `count(distinct suppkey) > 1`, and "no other supplier was late"
/// becomes `count(distinct late suppkey) = 1`.
pub fn q21() -> Result<LogicalPlan> {
    let all_suppliers_per_order = lineitem().aggregate(
        vec![(col("l_orderkey"), "all_orderkey")],
        vec![count_distinct(col("l_suppkey"), "all_supp_cnt")],
    );
    let late_suppliers_per_order =
        lineitem().filter(col("l_receiptdate").gt(col("l_commitdate"))).aggregate(
            vec![(col("l_orderkey"), "late_orderkey")],
            vec![count_distinct(col("l_suppkey"), "late_supp_cnt")],
        );
    let saudi_late_lines = nation()
        .filter(col("n_name").eq(lit("SAUDI ARABIA")))
        .join(supplier(), vec![("n_nationkey", "s_nationkey")], JoinType::Inner)
        .join(
            lineitem().filter(col("l_receiptdate").gt(col("l_commitdate"))),
            vec![("s_suppkey", "l_suppkey")],
            JoinType::Inner,
        );
    let with_orders = saudi_late_lines.join(
        orders().filter(col("o_orderstatus").eq(lit("F"))),
        vec![("l_orderkey", "o_orderkey")],
        JoinType::Inner,
    );
    all_suppliers_per_order
        .join(with_orders, vec![("all_orderkey", "o_orderkey")], JoinType::Inner)
        .filter(col("all_supp_cnt").gt(lit(1i64)))
        .join(
            late_suppliers_per_order,
            // This plan is the build side of the next join, so flip it: the
            // late-counts relation becomes the probe side.
            vec![("o_orderkey", "late_orderkey")],
            JoinType::Inner,
        )
        .filter(col("late_supp_cnt").eq(lit(1i64)))
        .aggregate(vec![(col("s_name"), "s_name")], vec![count(col("o_orderkey"), "numwait")])
        .sort_limit(vec![("numwait", false), ("s_name", true)], 100)
        .build()
}

/// Q22: global sales opportunity.
pub fn q22() -> Result<LogicalPlan> {
    let codes = strings(&["13", "31", "23", "29", "30", "18", "17"]);
    let candidates = customer()
        .project(vec![
            (col("c_phone").substr(1, 2), "cntrycode"),
            (col("c_acctbal"), "c_acctbal"),
            (col("c_custkey"), "c_custkey"),
        ])
        .filter(col("cntrycode").in_list(codes.clone()));
    // Decorrelated scalar subquery: average positive balance in the
    // candidate country codes, attached through a constant-key join.
    let average_balance = customer()
        .project(vec![
            (col("c_phone").substr(1, 2), "ab_cntrycode"),
            (col("c_acctbal"), "ab_acctbal"),
        ])
        .filter(col("ab_cntrycode").in_list(codes).and(col("ab_acctbal").gt(lit(0.0f64))))
        .aggregate(vec![], vec![avg(col("ab_acctbal"), "avg_bal")])
        .project(vec![(col("avg_bal"), "avg_bal"), (lit(1i64), "jk_build")]);
    let without_orders = orders()
        .project(vec![(col("o_custkey"), "oc_custkey")])
        .join(candidates, vec![("oc_custkey", "c_custkey")], JoinType::Anti)
        .project(vec![
            (col("cntrycode"), "cntrycode"),
            (col("c_acctbal"), "c_acctbal"),
            (lit(1i64), "jk_probe"),
        ]);
    average_balance
        .join(without_orders, vec![("jk_build", "jk_probe")], JoinType::Inner)
        .filter(col("c_acctbal").gt(col("avg_bal")))
        .aggregate(
            vec![(col("cntrycode"), "cntrycode")],
            vec![count(col("c_acctbal"), "numcust"), sum(col("c_acctbal"), "totacctbal")],
        )
        .sort(vec![("cntrycode", true)])
        .build()
}
