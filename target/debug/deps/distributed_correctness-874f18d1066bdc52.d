/root/repo/target/debug/deps/distributed_correctness-874f18d1066bdc52.d: tests/distributed_correctness.rs

/root/repo/target/debug/deps/distributed_correctness-874f18d1066bdc52: tests/distributed_correctness.rs

tests/distributed_correctness.rs:
