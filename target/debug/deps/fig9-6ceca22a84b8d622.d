/root/repo/target/debug/deps/fig9-6ceca22a84b8d622.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-6ceca22a84b8d622.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
