//! SQL frontend for the Quokka engine: parse → bind → [`LogicalPlan`].
//!
//! The frontend is self-contained: a hand-written [`lexer`], a
//! recursive-descent [`parser`] producing a typed AST ([`ast`]), and a
//! [`binder`] that resolves names against a [`Catalog`] and lowers the
//! statement to the same [`LogicalPlan`] nodes the hand-built TPC-H plans
//! use. Every error is a positioned [`SqlError`] with the 1-based line and
//! column of the offending token.
//!
//! # Supported grammar
//!
//! ```text
//! [EXPLAIN]
//! SELECT [DISTINCT] expr [AS alias], ... | *
//! FROM table_or_subquery [alias] [, table_or_subquery [alias]] ...
//! [[INNER] JOIN table_or_subquery [alias] ON on_condition
//!  | LEFT [OUTER] JOIN table_or_subquery [alias] ON on_condition
//!  | CROSS JOIN table_or_subquery [alias]] ...
//! [WHERE predicate]
//! [GROUP BY expr, ...] [HAVING predicate]
//! [ORDER BY output_column [ASC|DESC], ...] [LIMIT n]
//!
//! table_or_subquery := ident | '(' SELECT ... ')'   -- derived tables
//! on_condition      := col = col [AND ...] plus predicates on the joined table
//! ```
//!
//! WHERE and HAVING predicates may contain subqueries: `[NOT] EXISTS
//! (SELECT ...)`, `expr [NOT] IN (SELECT ...)`, and scalar aggregate
//! subqueries (`x < (SELECT 0.2 * avg(y) FROM ... WHERE inner = outer)`),
//! correlated through equality predicates whose outer references resolve
//! against the enclosing query's scope. The binder lowers them to
//! plan-level subquery expressions; the shared optimizer's decorrelation
//! pass rewrites them into semi/anti joins, constant-key joins, and
//! group-by + join — no subquery survives to execution. Self-joins work
//! through table aliases: a table whose columns would collide with the
//! scope is renamed apart at its scan (`alias.column` addresses the flat
//! column `alias_column`).
//!
//! The binder deliberately emits *naive* plans — `WHERE` above the join
//! tree, scans carrying every table column, comma-FROM lists as cross joins
//! — and leaves placement to the shared rule-based optimizer
//! ([`quokka_plan::optimizer`]), which both frontends flow through. An
//! `EXPLAIN` prefix marks the statement so the session can print the plan
//! before and after optimization instead of executing it.
//!
//! Expressions cover the engine's full operator set: arithmetic,
//! comparisons, `AND`/`OR`/`NOT`, `[NOT] LIKE`, `[NOT] IN (literals)`,
//! `[NOT] BETWEEN`, searched `CASE ... ELSE ... END`, `EXTRACT(YEAR FROM
//! d)`, `SUBSTRING(s FROM i FOR n)`, `CAST(x AS type)`, `DATE 'YYYY-MM-DD'`
//! literals, and the aggregates `SUM` / `AVG` / `MIN` / `MAX` / `COUNT` /
//! `COUNT(DISTINCT ...)` (including arithmetic over aggregates such as
//! `sum(a) / sum(b)`).
//!
//! Known gaps (reported as positioned errors, never panics): `RIGHT` /
//! `FULL OUTER` joins, `NULL` (the engine default-fills instead),
//! subqueries outside WHERE/HAVING, and non-equality correlation.
//!
//! # Example
//!
//! ```
//! use quokka_plan::catalog::MemoryCatalog;
//! use quokka_batch::{Batch, Column, DataType, Schema};
//!
//! let catalog = MemoryCatalog::new();
//! let schema = Schema::from_pairs(&[("id", DataType::Int64), ("price", DataType::Float64)]);
//! catalog.register(
//!     "items",
//!     schema.clone(),
//!     vec![Batch::try_new(
//!         schema,
//!         vec![Column::Int64(vec![1, 2]), Column::Float64(vec![10.0, 20.0])],
//!     )
//!     .unwrap()],
//! );
//!
//! let plan = quokka_sql::plan_query("SELECT sum(price) AS total FROM items", &catalog).unwrap();
//! assert_eq!(plan.schema().unwrap().column_names(), vec!["total"]);
//!
//! let err = quokka_sql::plan_query("SELECT prize FROM items", &catalog).unwrap_err();
//! assert!(err.to_string().contains("did you mean 'price'"));
//! ```

pub mod ast;
pub mod binder;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod resolve;

pub use ast::SelectStatement;
pub use error::{Pos, SqlError, SqlErrorKind};
pub use normalize::{normalize, LiteralValue, NormalizedSql};
pub use resolve::suggest;

use quokka_plan::catalog::Catalog;
use quokka_plan::logical::LogicalPlan;

/// Parse one SELECT statement (no name resolution).
pub fn parse(sql: &str) -> Result<SelectStatement, SqlError> {
    parser::parse(sql)
}

/// Parse `sql` and bind it against `catalog`, producing an executable
/// logical plan. An `EXPLAIN`-prefixed statement is an error here — this
/// entry point promises an executable plan; use [`plan_statement`] (or
/// `QuokkaSession::sql`) to handle EXPLAIN.
pub fn plan_query(sql: &str, catalog: &dyn Catalog) -> Result<LogicalPlan, SqlError> {
    let statement = parser::parse(sql)?;
    if statement.explain {
        return Err(SqlError::bind(
            Pos::new(1, 1),
            "EXPLAIN statements render a plan instead of executing; \
             use plan_statement or QuokkaSession::sql",
        ));
    }
    binder::bind_statement(&statement, catalog)
}

/// Like [`plan_query`], additionally reporting whether the statement carried
/// an `EXPLAIN` prefix (callers print the plan instead of executing it).
pub fn plan_statement(sql: &str, catalog: &dyn Catalog) -> Result<(bool, LogicalPlan), SqlError> {
    let statement = parser::parse(sql)?;
    let plan = binder::bind_statement(&statement, catalog)?;
    Ok((statement.explain, plan))
}
