/root/repo/target/debug/deps/quokka_common-071e8f318f640afd.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_common-071e8f318f640afd.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/metrics.rs:
crates/common/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
