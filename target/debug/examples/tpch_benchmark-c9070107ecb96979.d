/root/repo/target/debug/examples/tpch_benchmark-c9070107ecb96979.d: examples/tpch_benchmark.rs

/root/repo/target/debug/examples/tpch_benchmark-c9070107ecb96979: examples/tpch_benchmark.rs

examples/tpch_benchmark.rs:
