/root/repo/target/release/libbytes.rlib: /root/repo/crates/shims/bytes/src/lib.rs
