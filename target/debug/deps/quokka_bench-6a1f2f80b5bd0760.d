/root/repo/target/debug/deps/quokka_bench-6a1f2f80b5bd0760.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquokka_bench-6a1f2f80b5bd0760.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquokka_bench-6a1f2f80b5bd0760.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
