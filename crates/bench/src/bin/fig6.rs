//! Fig. 6: Quokka speedup vs SparkSQL-like and Trino-like baselines on the
//! TPC-H queries, on 4- and 16-worker clusters.

use quokka_bench::{
    geomean, print_geomean, print_header, print_row, queries_from_env, workers_from_env, Harness,
};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let queries = queries_from_env(&quokka::tpch::ALL_QUERIES);
    let workers = workers_from_env(&[4, 16]);

    for &w in &workers {
        print_header(
            &format!("Fig. 6 — Quokka speedup on {w} workers"),
            &["quokka (s)", "spark-like (s)", "trino-like (s)", "vs spark", "vs trino"],
        );
        let mut vs_spark = Vec::new();
        let mut vs_trino = Vec::new();
        for &q in &queries {
            let quokka = harness.run("quokka", q, &harness.quokka_config(w))?;
            let spark = harness.run("spark", q, &harness.spark_config(w))?;
            let trino = harness.run("trino", q, &harness.trino_config(w))?;
            let s_spark = spark.seconds / quokka.seconds.max(1e-9);
            let s_trino = trino.seconds / quokka.seconds.max(1e-9);
            vs_spark.push(s_spark);
            vs_trino.push(s_trino);
            print_row(q, &[quokka.seconds, spark.seconds, trino.seconds, s_spark, s_trino]);
        }
        print_geomean("geomean", &[vec![], vec![], vec![], vs_spark.clone(), vs_trino.clone()]);
        println!(
            "paper shape: Quokka ~2x faster than SparkSQL, 1.25-1.7x faster than Trino; measured geomean {:.2}x / {:.2}x",
            geomean(&vs_spark),
            geomean(&vs_trino)
        );
    }
    Ok(())
}
