/root/repo/target/debug/deps/quokka_bench-44cd8b22d4a55c07.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquokka_bench-44cd8b22d4a55c07.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquokka_bench-44cd8b22d4a55c07.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
