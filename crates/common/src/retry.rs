//! Bounded retries with exponential backoff and deterministic jitter.
//!
//! The worker loops (task polling, result publication, replay requests) all
//! need to wait-and-retry on transient conditions. Fixed sleeps either burn
//! CPU (too short) or add latency cliffs (too long); this module replaces
//! them with exponential backoff whose jitter comes from [`DetRng`], so two
//! runs with the same seed sleep the same schedule.

use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Retry/backoff policy. Part of `EngineConfig`, so tests and benchmarks can
/// tighten or loosen every retry loop in one place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts for *bounded* operations (replay re-queues and other
    /// give-uppable retries). `Backoff` built via [`RetryPolicy::backoff`]
    /// yields `None` once exhausted. Unbounded loops (result publication,
    /// idle polling) use [`RetryPolicy::backoff_unbounded`] and ignore this.
    pub max_attempts: u32,
    /// First delay.
    pub base_delay: Duration,
    /// Delay ceiling.
    pub max_delay: Duration,
    /// Growth factor per attempt (>= 1.0).
    pub multiplier: f64,
    /// Fraction of each delay that is randomized (0.0 = none, 0.5 = the
    /// delay lands uniformly in [0.5·d, 1.0·d + 0.5·d)). Jitter decorrelates
    /// workers hammering the same contended GCS key.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Engine defaults: generous enough that transient faults (worker
    /// failure windows, dropped pushes, CAS aborts) clear, tight enough
    /// that a genuinely fatal condition surfaces quickly.
    pub fn engine_default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(5),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }

    /// A bounded backoff iterator seeded deterministically.
    pub fn backoff(&self, seed: u64) -> Backoff {
        Backoff { policy: *self, bounded: true, attempt: 0, rng: DetRng::derive(seed, 0xBAC0_FF5E) }
    }

    /// An unbounded backoff iterator (never yields `None`); used where
    /// giving up is not an option and progress is guarded externally (the
    /// publish loop re-checks channel ownership; the watchdog bounds the
    /// whole query).
    pub fn backoff_unbounded(&self, seed: u64) -> Backoff {
        Backoff { bounded: false, ..self.backoff(seed) }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::engine_default()
    }
}

/// Stateful backoff: each call to [`Backoff::next_delay`] returns the next
/// jittered delay, or `None` when a bounded policy is exhausted.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    bounded: bool,
    attempt: u32,
    rng: DetRng,
}

impl Backoff {
    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay to sleep before retrying, or `None` if the bounded
    /// attempt budget is spent.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.bounded && self.attempt >= self.policy.max_attempts {
            return None;
        }
        let exp = self.policy.multiplier.powi(self.attempt.min(30) as i32);
        let raw = self.policy.base_delay.as_secs_f64() * exp;
        let capped = raw.min(self.policy.max_delay.as_secs_f64());
        let jitter = self.policy.jitter.clamp(0.0, 1.0);
        let jittered = capped * (1.0 - jitter) + capped * jitter * self.rng.next_f64() * 2.0;
        self.attempt = self.attempt.saturating_add(1);
        Some(Duration::from_secs_f64(jittered.min(self.policy.max_delay.as_secs_f64() * 2.0)))
    }

    /// Sleep for the next delay. Returns `false` when the budget is spent
    /// (and does not sleep).
    pub fn sleep(&mut self) -> bool {
        match self.next_delay() {
            Some(d) => {
                std::thread::sleep(d);
                true
            }
            None => false,
        }
    }

    /// Forget accumulated attempts (the operation made progress).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_backoff_exhausts_after_max_attempts() {
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::engine_default() };
        let mut b = policy.backoff(42);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert_eq!(b.next_delay(), None);
        assert_eq!(b.attempts(), 3);
        b.reset();
        assert!(b.next_delay().is_some());
    }

    #[test]
    fn unbounded_backoff_never_exhausts_and_caps_delay() {
        let policy = RetryPolicy::engine_default();
        let mut b = policy.backoff_unbounded(7);
        for _ in 0..100 {
            let d = b.next_delay().expect("unbounded");
            assert!(d <= policy.max_delay * 2, "delay {d:?} exceeds cap");
        }
    }

    #[test]
    fn delays_grow_and_jitter_is_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.0,
        };
        let mut b = policy.backoff(0);
        let d0 = b.next_delay().unwrap();
        let d3 = {
            b.next_delay();
            b.next_delay();
            b.next_delay().unwrap()
        };
        assert!(d3 > d0 * 4, "exponential growth expected: {d0:?} -> {d3:?}");

        let jittery = RetryPolicy { jitter: 0.5, ..policy };
        let seq_a: Vec<_> = (0..5).map_while(|_| jittery.backoff(9).next_delay()).collect();
        let mut x = jittery.backoff(9);
        let mut y = jittery.backoff(9);
        for _ in 0..5 {
            assert_eq!(x.next_delay(), y.next_delay(), "same seed, same schedule");
        }
        assert!(!seq_a.is_empty());
    }

    #[test]
    fn zero_attempt_policy_gives_up_immediately() {
        let policy = RetryPolicy { max_attempts: 0, ..RetryPolicy::engine_default() };
        let mut b = policy.backoff(1);
        assert_eq!(b.next_delay(), None);
        assert!(!b.sleep());
    }
}
