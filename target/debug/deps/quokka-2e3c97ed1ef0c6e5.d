/root/repo/target/debug/deps/quokka-2e3c97ed1ef0c6e5.d: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/libquokka-2e3c97ed1ef0c6e5.rlib: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/libquokka-2e3c97ed1ef0c6e5.rmeta: crates/quokka/src/lib.rs

crates/quokka/src/lib.rs:
