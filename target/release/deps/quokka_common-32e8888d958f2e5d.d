/root/repo/target/release/deps/quokka_common-32e8888d958f2e5d.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs

/root/repo/target/release/deps/libquokka_common-32e8888d958f2e5d.rlib: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs

/root/repo/target/release/deps/libquokka_common-32e8888d958f2e5d.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/metrics.rs:
crates/common/src/rng.rs:
