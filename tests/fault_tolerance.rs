//! Integration tests: failure injection. A worker is killed at various
//! points of the query and the result must still be exactly the reference
//! result, with the engine's invariants intact.

use quokka::{same_result, EngineConfig, FailureSpec, FaultStrategy, QuokkaSession};

fn session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).expect("generate TPC-H data")
}

#[test]
fn wal_recovers_a_join_query_from_a_midway_failure() {
    let session = session();
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert_eq!(outcome.metrics.failures, 1);
    assert!(outcome.metrics.recovery_tasks > 0, "recovery must replay or rewind tasks");
}

#[test]
fn wal_recovers_at_every_failure_point() {
    // The Fig. 10b case-study shape: kill a worker at several progress
    // fractions; the answer never changes.
    let session = session();
    let plan = quokka::tpch::query(10).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    for fraction in [0.2, 0.5, 0.8] {
        let config = EngineConfig::quokka(3).with_failure(FailureSpec::new(2, fraction));
        let outcome = session.run_with(&plan, &config).unwrap();
        assert!(same_result(&expected, &outcome.batch), "diverged when failing at {fraction}");
        assert_eq!(outcome.metrics.failures, 1);
    }
}

#[test]
fn wal_recovers_every_worker_identity() {
    let session = session();
    let plan = quokka::tpch::query(5).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    for worker in 0..3 {
        let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(worker));
        let outcome = session.run_with(&plan, &config).unwrap();
        assert!(same_result(&expected, &outcome.batch), "diverged when killing worker {worker}");
    }
}

#[test]
fn wal_recovers_a_multi_join_pipeline() {
    let session = session();
    let plan = quokka::tpch::query(9).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let config = EngineConfig::quokka(3).with_failure(FailureSpec::new(0, 0.6));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&expected, &outcome.batch));
}

#[test]
fn stagewise_mode_also_recovers() {
    let session = session();
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let config = EngineConfig::sparklike(3).with_failure(FailureSpec::halfway(1));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&expected, &outcome.batch));
}

#[test]
fn restart_baseline_reruns_and_still_answers_correctly() {
    let session = session();
    let plan = quokka::tpch::query(6).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let config = EngineConfig::quokka(3)
        .with_fault(FaultStrategy::None)
        .with_failure(FailureSpec::new(1, 0.4));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert_eq!(outcome.metrics.failures, 1);
}

#[test]
fn aggregation_only_queries_survive_failures() {
    let session = session();
    for q in [1usize, 6] {
        let plan = quokka::tpch::query(q).unwrap();
        let expected = session.run_reference(&plan).unwrap();
        let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(0));
        let outcome = session.run_with(&plan, &config).unwrap();
        assert!(same_result(&expected, &outcome.batch), "Q{q} diverged after failure");
    }
}

#[test]
fn two_sequential_failures_are_survived() {
    let session = session();
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let config = EngineConfig::quokka(4)
        .with_failure(FailureSpec::new(1, 0.3))
        .with_failure(FailureSpec::new(2, 0.7));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert_eq!(outcome.metrics.failures, 2);
}

#[test]
fn wal_normal_execution_writes_no_durable_shuffle_data() {
    let session = session();
    let plan = quokka::tpch::query(12).unwrap();
    let outcome = session.run(&plan).unwrap();
    assert_eq!(outcome.metrics.durable_bytes, 0);
    assert!(outcome.metrics.backup_bytes > 0);
    assert!(outcome.metrics.lineage_bytes > 0);
    // The KB-vs-MB claim of the paper: lineage is orders of magnitude
    // smaller than the shuffled/backed-up data it describes (measured in
    // plain column bytes — backups themselves ship compressed encodings).
    assert!(outcome.metrics.lineage_bytes * 10 < outcome.metrics.backup_raw_bytes);
    assert!(
        outcome.metrics.backup_bytes < outcome.metrics.backup_raw_bytes,
        "column encodings should shrink backups: {} encoded vs {} raw",
        outcome.metrics.backup_bytes,
        outcome.metrics.backup_raw_bytes
    );
}
