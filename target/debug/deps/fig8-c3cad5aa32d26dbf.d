/root/repo/target/debug/deps/fig8-c3cad5aa32d26dbf.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c3cad5aa32d26dbf: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
