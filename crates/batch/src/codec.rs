//! Compact binary encoding of batches.
//!
//! Upstream backup, spooling and checkpointing all serialise batches to
//! bytes; the storage layer charges its cost model per byte written, so this
//! codec determines the byte volumes the experiments in Fig. 9 depend on.
//! The format is a simple length-prefixed layout; it round-trips exactly and
//! is stable across runs (important because a replayed partition must be
//! byte-identical to the original).

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::DataType;
use crate::schema::{Field, Schema};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use quokka_common::{QuokkaError, Result};

const MAGIC: u32 = 0x514B_4241; // "QKBA"

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(QuokkaError::Storage(format!("bad data type tag {other}"))),
    })
}

/// Encode a batch to bytes.
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(batch.byte_size() + 64);
    buf.put_u32(MAGIC);
    buf.put_u32(batch.num_columns() as u32);
    buf.put_u64(batch.num_rows() as u64);
    for field in batch.schema().fields() {
        buf.put_u8(dtype_tag(field.data_type));
        let name = field.name.as_bytes();
        buf.put_u16(name.len() as u16);
        buf.put_slice(name);
    }
    for col in batch.columns() {
        encode_column(&mut buf, col);
    }
    buf.freeze()
}

fn encode_column(buf: &mut BytesMut, col: &Column) {
    match col {
        Column::Int64(v) => {
            for x in v {
                buf.put_i64(*x);
            }
        }
        Column::Float64(v) => {
            for x in v {
                buf.put_f64(*x);
            }
        }
        Column::Date(v) => {
            for x in v {
                buf.put_i32(*x);
            }
        }
        Column::Bool(v) => {
            for x in v {
                buf.put_u8(*x as u8);
            }
        }
        Column::Utf8(v) => {
            for s in v {
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

/// Decode a batch previously produced by [`encode_batch`].
pub fn decode_batch(mut data: &[u8]) -> Result<Batch> {
    if data.remaining() < 16 {
        return Err(QuokkaError::Storage("batch payload truncated".into()));
    }
    let magic = data.get_u32();
    if magic != MAGIC {
        return Err(QuokkaError::Storage(format!("bad batch magic {magic:#x}")));
    }
    let cols = data.get_u32() as usize;
    let rows = data.get_u64() as usize;
    let mut fields = Vec::with_capacity(cols);
    for _ in 0..cols {
        let dt = tag_dtype(data.get_u8())?;
        let name_len = data.get_u16() as usize;
        if data.remaining() < name_len {
            return Err(QuokkaError::Storage("batch payload truncated in schema".into()));
        }
        let name = String::from_utf8(data[..name_len].to_vec())
            .map_err(|e| QuokkaError::Storage(format!("invalid column name: {e}")))?;
        data.advance(name_len);
        fields.push(Field::new(name, dt));
    }
    let schema = Schema::new(fields);
    let mut columns = Vec::with_capacity(cols);
    for field in schema.fields() {
        columns.push(decode_column(&mut data, field.data_type, rows)?);
    }
    Batch::try_new(schema, columns)
}

fn decode_column(data: &mut &[u8], dt: DataType, rows: usize) -> Result<Column> {
    let need = |data: &&[u8], n: usize| -> Result<()> {
        if data.remaining() < n {
            Err(QuokkaError::Storage("batch payload truncated in column data".into()))
        } else {
            Ok(())
        }
    };
    Ok(match dt {
        DataType::Int64 => {
            need(data, rows * 8)?;
            Column::Int64((0..rows).map(|_| data.get_i64()).collect())
        }
        DataType::Float64 => {
            need(data, rows * 8)?;
            Column::Float64((0..rows).map(|_| data.get_f64()).collect())
        }
        DataType::Date => {
            need(data, rows * 4)?;
            Column::Date((0..rows).map(|_| data.get_i32()).collect())
        }
        DataType::Bool => {
            need(data, rows)?;
            Column::Bool((0..rows).map(|_| data.get_u8() != 0).collect())
        }
        DataType::Utf8 => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                need(data, 4)?;
                let len = data.get_u32() as usize;
                need(data, len)?;
                let s = String::from_utf8(data[..len].to_vec())
                    .map_err(|e| QuokkaError::Storage(format!("invalid utf8 value: {e}")))?;
                data.advance(len);
                out.push(s);
            }
            Column::Utf8(out)
        }
    })
}

/// Encode several batches (one data partition) into a single payload.
pub fn encode_partition(batches: &[Batch]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32(batches.len() as u32);
    for b in batches {
        let encoded = encode_batch(b);
        buf.put_u32(encoded.len() as u32);
        buf.put_slice(&encoded);
    }
    buf.freeze()
}

/// Decode a payload produced by [`encode_partition`].
pub fn decode_partition(mut data: &[u8]) -> Result<Vec<Batch>> {
    if data.remaining() < 4 {
        return Err(QuokkaError::Storage("partition payload truncated".into()));
    }
    let count = data.get_u32() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(QuokkaError::Storage("partition payload truncated".into()));
        }
        let len = data.get_u32() as usize;
        if data.remaining() < len {
            return Err(QuokkaError::Storage("partition payload truncated".into()));
        }
        out.push(decode_batch(&data[..len])?);
        data.advance(len);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::ScalarValue;

    fn sample() -> Batch {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("price", DataType::Float64),
            ("flag", DataType::Bool),
            ("ship", DataType::Date),
            ("comment", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![1, -5, 300]),
                Column::Float64(vec![0.5, 2.25, -9.0]),
                Column::Bool(vec![true, false, true]),
                Column::Date(vec![100, 0, -30]),
                Column::Utf8(vec!["hello".into(), "".into(), "unicode ✓".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_batch() {
        let b = sample();
        let encoded = encode_batch(&b);
        let decoded = decode_batch(&encoded).unwrap();
        assert_eq!(b, decoded);
        assert_eq!(decoded.value(2, 4), ScalarValue::Utf8("unicode ✓".into()));
    }

    #[test]
    fn roundtrip_empty_batch() {
        let b = Batch::empty(sample().schema().clone());
        let decoded = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(decoded.num_rows(), 0);
        assert_eq!(decoded.schema(), b.schema());
    }

    #[test]
    fn roundtrip_partition() {
        let b = sample();
        let payload = encode_partition(&[b.clone(), b.slice(0, 1)]);
        let decoded = decode_partition(&payload).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], b);
        assert_eq!(decoded[1].num_rows(), 1);
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let b = sample();
        let encoded = encode_batch(&b);
        assert!(decode_batch(&encoded[..10]).is_err());
        let mut tampered = encoded.to_vec();
        tampered[0] ^= 0xFF;
        assert!(decode_batch(&tampered).is_err());
        assert!(decode_partition(&[1, 2]).is_err());
        assert!(decode_batch(&[]).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let b = sample();
        assert_eq!(encode_batch(&b), encode_batch(&b));
        assert_eq!(encode_partition(std::slice::from_ref(&b)), encode_partition(&[b]));
    }
}
