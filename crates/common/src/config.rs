//! Configuration for the cluster simulation, the execution engine and the
//! fault-tolerance strategies.
//!
//! Every experiment in the paper is a point in this configuration space:
//!
//! * Fig. 6 / 11a compare `ExecutionMode::Pipelined + FaultStrategy::WriteAheadLineage`
//!   ("Quokka") against `ExecutionMode::Stagewise` ("SparkSQL-like") and
//!   `ExecutionMode::Pipelined + FaultStrategy::Spooling` ("Trino-like").
//! * Fig. 7 toggles [`ExecutionMode`].
//! * Fig. 8 toggles [`SchedulePolicy`].
//! * Fig. 9 toggles [`FaultStrategy`].
//! * Fig. 10 / 11b add a [`FailureSpec`].

use crate::chaos::ChaosPlan;
use crate::error::{QuokkaError, Result};
use crate::ids::WorkerId;
use crate::retry::RetryPolicy;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How stages are driven relative to one another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// All stages execute concurrently; a task's outputs can be consumed by
    /// downstream tasks as soon as their lineage is committed. This is the
    /// execution model the paper targets (§II-A).
    Pipelined,
    /// One stage runs to completion before the next starts, mimicking
    /// SparkSQL's bulk-synchronous model. Used as the "SparkSQL" comparator
    /// and in the Fig. 7 ablation.
    Stagewise,
}

/// How a task decides how many upstream outputs to consume (§II-A, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Dynamic task dependencies: each task greedily consumes every upstream
    /// output that is currently available (up to `max_inputs_per_task`),
    /// which is the simple strategy the paper evaluates.
    Dynamic {
        /// Upper bound on inputs bundled into a single task. The paper's
        /// strategy is effectively unbounded; the bound exists so a single
        /// task cannot starve the pipeline.
        max_inputs_per_task: u32,
    },
    /// Static lineage: every task consumes exactly `batch` upstream outputs
    /// (the last task of a channel may take fewer). Fig. 8 evaluates batch
    /// sizes 8 and 128.
    StaticBatch { batch: u32 },
}

impl SchedulePolicy {
    /// The paper's default dynamic strategy.
    pub const fn dynamic() -> Self {
        SchedulePolicy::Dynamic { max_inputs_per_task: 64 }
    }
}

/// Intra-query fault-tolerance strategy (Table I / §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultStrategy {
    /// No intra-query fault tolerance: a worker failure aborts the query and
    /// it is restarted from scratch on the surviving workers (the paper's
    /// "restart baseline", ~1.5x overhead for a failure at 50%).
    None,
    /// The paper's contribution: lineage is committed to the GCS before an
    /// output may be consumed; outputs are backed up (unreliably) on the
    /// producer's local disk; recovery is pipeline-parallel lineage replay.
    WriteAheadLineage,
    /// Trino-style spooling: every shuffle partition is durably written to
    /// the object store before downstream consumption. State variables are
    /// *not* persisted, so a failed stateful channel restarts from scratch
    /// (paper Fig. 2).
    Spooling,
    /// Periodic durable checkpoints of operator state in addition to
    /// spooling, as in Flink/Kafka-Streams. Included for the §V-C remarks.
    Checkpointing {
        /// Checkpoint every `interval_tasks` tasks per channel.
        interval_tasks: u32,
    },
}

impl FaultStrategy {
    /// Whether this strategy persists lineage (Table I row "Lineage").
    pub fn tracks_lineage(&self) -> bool {
        !matches!(self, FaultStrategy::None)
    }

    /// Whether shuffle partitions are durably spooled (Table I row "Spooling").
    pub fn spools(&self) -> bool {
        matches!(self, FaultStrategy::Spooling | FaultStrategy::Checkpointing { .. })
    }

    /// Whether operator state is checkpointed (Table I row "State Checkpoint").
    pub fn checkpoints_state(&self) -> bool {
        matches!(self, FaultStrategy::Checkpointing { .. })
    }

    /// Whether task outputs are backed up on the producer's local disk.
    pub fn upstream_backup(&self) -> bool {
        matches!(self, FaultStrategy::WriteAheadLineage)
    }

    /// Whether intra-query recovery is supported at all.
    pub fn supports_intra_query_recovery(&self) -> bool {
        !matches!(self, FaultStrategy::None)
    }
}

/// Bandwidth/latency model for the simulated data paths.
///
/// All costs are charged as real (scaled) sleeps by `quokka-storage` and
/// `quokka-net`, so differences in *bytes moved* between fault-tolerance
/// strategies translate into differences in wall-clock runtime with the same
/// shape the paper observes on a real cluster. Setting `time_scale` to zero
/// disables all simulated delays (useful in unit tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModelConfig {
    /// Network bandwidth per worker for shuffle pushes, bytes/second.
    pub network_bandwidth: f64,
    /// Fixed latency per network push.
    pub network_latency: Duration,
    /// Local instance-attached disk bandwidth (upstream backup), bytes/second.
    pub local_disk_bandwidth: f64,
    /// Fixed latency per local disk write.
    pub local_disk_latency: Duration,
    /// Durable object store (S3/HDFS stand-in) bandwidth, bytes/second.
    pub durable_bandwidth: f64,
    /// Fixed latency per durable PUT/GET request.
    pub durable_latency: Duration,
    /// Latency of one GCS operation (the head-node Redis round trip).
    pub gcs_latency: Duration,
    /// Multiplier applied to every simulated delay. `0.0` disables delays,
    /// `1.0` charges them at face value.
    pub time_scale: f64,
}

impl CostModelConfig {
    /// Cost model loosely calibrated to the paper's r6id instances:
    /// ~1.2 GB/s NVMe, ~10 Gb/s network, ~100 MB/s effective per-worker
    /// durable-store throughput with multi-millisecond request latency, and
    /// sub-millisecond GCS round trips.
    pub fn realistic() -> Self {
        CostModelConfig {
            network_bandwidth: 1.25e9,
            network_latency: Duration::from_micros(300),
            local_disk_bandwidth: 1.2e9,
            local_disk_latency: Duration::from_micros(80),
            durable_bandwidth: 100.0e6,
            durable_latency: Duration::from_millis(4),
            gcs_latency: Duration::from_micros(150),
            time_scale: 1.0,
        }
    }

    /// No simulated delays at all; used by unit tests and by callers that
    /// only care about correctness.
    pub fn zero() -> Self {
        CostModelConfig { time_scale: 0.0, ..Self::realistic() }
    }

    /// The realistic model with every delay scaled by `scale`. Benchmarks use
    /// small scales so a full TPC-H run completes quickly while preserving
    /// the *relative* cost of each data path.
    pub fn scaled(scale: f64) -> Self {
        CostModelConfig { time_scale: scale, ..Self::realistic() }
    }
}

impl Default for CostModelConfig {
    fn default() -> Self {
        Self::zero()
    }
}

/// Shape of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker machines. The paper evaluates 4, 16 and 32.
    pub workers: u32,
    /// Number of channels per data-parallel stage. The paper assigns one
    /// channel of every stage to each TaskManager, so this defaults to the
    /// worker count.
    pub channels_per_stage: u32,
    /// How often a TaskManager polls the GCS for work when idle.
    pub poll_interval: Duration,
    /// How often the coordinator checks worker heartbeats.
    pub heartbeat_interval: Duration,
    /// How long a worker's heartbeat may stall before the failure detector
    /// *suspects* it and reconciles its channels onto other workers without
    /// killing it. Workers heartbeat every scheduling-loop iteration
    /// (sub-millisecond to a few ms), so one second is a very conservative
    /// default; chaos tests shrink it to exercise the suspicion path.
    pub suspicion_timeout: Duration,
}

impl ClusterConfig {
    /// A cluster with `workers` workers and one channel per worker per stage.
    pub fn with_workers(workers: u32) -> Self {
        ClusterConfig {
            workers,
            channels_per_stage: workers,
            poll_interval: Duration::from_micros(200),
            heartbeat_interval: Duration::from_millis(2),
            suspicion_timeout: Duration::from_secs(1),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::with_workers(4)
    }
}

/// A failure to inject during a run (paper §V-D: "a worker machine is killed
/// halfway through the query").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Which worker dies.
    pub worker: WorkerId,
    /// Kill the worker once this fraction of the query's source splits have
    /// been consumed (0.0 .. 1.0). Progress by input consumption is used
    /// instead of wall-clock time so experiments are reproducible.
    pub at_progress: f64,
}

impl FailureSpec {
    pub fn new(worker: WorkerId, at_progress: f64) -> Self {
        FailureSpec { worker, at_progress }
    }

    /// The paper's standard experiment: kill a worker at 50% progress.
    pub fn halfway(worker: WorkerId) -> Self {
        Self::new(worker, 0.5)
    }
}

/// Admission control for concurrent serving: how many queries may execute
/// at once, how many may wait, and how much memory the admitted set may
/// claim. The controller enforcing this lives in `quokka-engine`; a session
/// shares one controller across all of its clones, so the limits are
/// per-serving-process, not per-query.
///
/// The state machine per query is: **admit** (slots and memory available,
/// nobody queued ahead) → run; **queue** (FIFO, bounded by `max_queued`) →
/// admit when capacity frees up; **reject** (queue full) with a typed
/// [`QuokkaError::Overloaded`](crate::QuokkaError) — overload
/// degrades into fast, explicit rejection instead of unbounded queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum queries executing concurrently; `None` = unlimited (the
    /// default — admission becomes a no-op).
    pub max_concurrent: Option<u32>,
    /// Maximum queries waiting for admission once `max_concurrent` is
    /// saturated. An arrival finding the queue full is rejected.
    pub max_queued: u32,
    /// Total memory budget (bytes) across all admitted queries, compared
    /// against per-query estimates derived from catalog statistics; `None`
    /// = unlimited. A query whose estimate alone exceeds the budget is
    /// still admitted when nothing else runs (work-conserving), so a big
    /// query degrades to serial execution instead of starving forever.
    pub memory_budget_bytes: Option<u64>,
}

impl AdmissionConfig {
    /// No limits: every query is admitted immediately.
    pub const fn unlimited() -> Self {
        AdmissionConfig { max_concurrent: None, max_queued: 16, memory_budget_bytes: None }
    }

    /// Bound concurrent execution at `max_concurrent` with a wait queue of
    /// `max_queued`.
    pub const fn bounded(max_concurrent: u32, max_queued: u32) -> Self {
        AdmissionConfig {
            max_concurrent: Some(max_concurrent),
            max_queued,
            memory_budget_bytes: None,
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Plan-cache sizing. The cache itself lives in the `quokka` facade (it
/// keys on normalized SQL text); this only configures it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheConfig {
    /// Whether `QuokkaSession::sql` consults the cache at all.
    pub enabled: bool,
    /// Maximum number of cached statement templates (LRU-evicted). Each
    /// template additionally holds a small bounded set of literal variants.
    pub capacity: usize,
}

impl PlanCacheConfig {
    pub const fn disabled() -> Self {
        PlanCacheConfig { enabled: false, capacity: 0 }
    }
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig { enabled: true, capacity: 64 }
    }
}

/// Which wire carries shuffle pushes between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// Deliver pushes by calling straight into the destination worker's
    /// in-process inbox (the default; zero-copy, no sockets).
    Inproc,
    /// Ship pushes over real TCP sockets: batches are encoded into pooled
    /// byte slabs and sent by one dedicated thread per peer through a
    /// bounded queue, so a slow consumer back-pressures its producers.
    Tcp,
}

/// Transport data-plane tuning. Only read when [`TransportKind::Tcp`] is
/// selected; the in-process backend has no queues or slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportConfig {
    pub kind: TransportKind,
    /// Per-peer bounded send-queue capacity in frames. A producer pushing
    /// into a full queue blocks until the send thread drains it — this is
    /// the end-to-end backpressure bound.
    pub send_queue_frames: usize,
    /// Initial byte capacity of each pooled send slab.
    pub slab_bytes: usize,
    /// Maximum idle slabs retained in the pool (excess slabs are freed).
    pub max_pooled_slabs: usize,
}

impl TransportConfig {
    /// The default in-process transport.
    pub const fn inproc() -> Self {
        TransportConfig {
            kind: TransportKind::Inproc,
            send_queue_frames: 32,
            slab_bytes: 64 * 1024,
            max_pooled_slabs: 128,
        }
    }

    /// The TCP transport with default queue/slab sizing.
    pub const fn tcp() -> Self {
        TransportConfig { kind: TransportKind::Tcp, ..Self::inproc() }
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self::inproc()
    }
}

/// Top-level engine configuration: one value of this type fully describes a
/// run of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    pub cluster: ClusterConfig,
    pub mode: ExecutionMode,
    pub schedule: SchedulePolicy,
    pub fault: FaultStrategy,
    pub cost: CostModelConfig,
    /// Failures to inject (empty for normal-execution experiments).
    /// Folded into the chaos plan at run time; kept for API compatibility
    /// with the single-kill experiments of the paper.
    pub failures: Vec<FailureSpec>,
    /// Generalized fault schedule (kills, suspicions, lost backups, dropped
    /// or delayed pushes, stragglers). See [`ChaosPlan`].
    pub chaos: ChaosPlan,
    /// Stall watchdog: if no task commits for this long the coordinator
    /// aborts the run with a diagnostic dump. The `QUOKKA_WATCHDOG_SECS`
    /// environment variable *overrides* this value (see
    /// [`EngineConfig::resolve_env`]); a malformed value is a hard
    /// configuration error, not a silent fallback.
    pub watchdog: Duration,
    /// Optional per-query deadline. When the query runs longer than this,
    /// the coordinator cancels it and the stream yields a typed
    /// [`QuokkaError::Timeout`].
    pub query_timeout: Option<Duration>,
    /// Backoff policy for every retry loop in the engine (task polling,
    /// result publication, replay requests).
    pub retry: RetryPolicy,
    /// Target number of rows per batch produced by input readers.
    pub batch_rows: usize,
    /// Seed for any randomised decision (worker placement during recovery).
    pub seed: u64,
    /// Whether the rule-based logical optimizer rewrites plans before stage
    /// compilation (on by default; disable to execute plans exactly as
    /// written, e.g. for optimized-vs-naive parity and shuffle-volume
    /// comparisons).
    pub optimize: bool,
    /// Admission control limits for concurrent serving (unlimited by
    /// default, so single-query workloads are unaffected).
    pub admission: AdmissionConfig,
    /// Plan-cache sizing for `QuokkaSession::sql` (enabled by default).
    pub plan_cache: PlanCacheConfig,
    /// Which transport carries shuffle pushes, and its queue/slab sizing.
    /// The `QUOKKA_TRANSPORT` environment variable (`inproc` | `tcp`)
    /// overrides the kind (see [`EngineConfig::resolve_env`]).
    pub transport: TransportConfig,
}

impl EngineConfig {
    /// Quokka's defaults: pipelined execution, dynamic task dependencies,
    /// write-ahead lineage, no simulated delays, no injected failures.
    pub fn quokka(workers: u32) -> Self {
        EngineConfig {
            cluster: ClusterConfig::with_workers(workers),
            mode: ExecutionMode::Pipelined,
            schedule: SchedulePolicy::dynamic(),
            fault: FaultStrategy::WriteAheadLineage,
            cost: CostModelConfig::zero(),
            failures: Vec::new(),
            chaos: ChaosPlan::new(),
            watchdog: Duration::from_secs(120),
            query_timeout: None,
            retry: RetryPolicy::engine_default(),
            batch_rows: 8192,
            seed: 0x5eed,
            optimize: true,
            admission: AdmissionConfig::default(),
            plan_cache: PlanCacheConfig::default(),
            transport: TransportConfig::default(),
        }
    }

    /// The SparkSQL-like comparator: stagewise execution with upstream
    /// backup and data-parallel recovery.
    pub fn sparklike(workers: u32) -> Self {
        EngineConfig {
            mode: ExecutionMode::Stagewise,
            fault: FaultStrategy::WriteAheadLineage,
            ..Self::quokka(workers)
        }
    }

    /// The Trino-like comparator: pipelined execution with durable spooling
    /// of shuffle partitions and static task dependencies.
    pub fn trinolike(workers: u32) -> Self {
        EngineConfig {
            mode: ExecutionMode::Pipelined,
            schedule: SchedulePolicy::StaticBatch { batch: 16 },
            fault: FaultStrategy::Spooling,
            ..Self::quokka(workers)
        }
    }

    /// Builder-style helpers.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }
    pub fn with_fault(mut self, fault: FaultStrategy) -> Self {
        self.fault = fault;
        self
    }
    pub fn with_cost(mut self, cost: CostModelConfig) -> Self {
        self.cost = cost;
        self
    }
    pub fn with_failure(mut self, failure: FailureSpec) -> Self {
        self.failures.push(failure);
        self
    }
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows;
        self
    }
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    pub fn with_channels_per_stage(mut self, channels: u32) -> Self {
        self.cluster.channels_per_stage = channels;
        self
    }
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }
    pub fn with_query_timeout(mut self, timeout: Duration) -> Self {
        self.query_timeout = Some(timeout);
        self
    }
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
    pub fn with_suspicion_timeout(mut self, timeout: Duration) -> Self {
        self.cluster.suspicion_timeout = timeout;
        self
    }
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }
    pub fn with_plan_cache(mut self, plan_cache: PlanCacheConfig) -> Self {
        self.plan_cache = plan_cache;
        self
    }
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Fingerprint of the configuration fields that influence how a SQL
    /// statement is *planned* (as opposed to how the plan is executed).
    /// Two configurations with equal fingerprints produce identical lowered
    /// logical plans for the same statement and catalog, so a plan cached
    /// under one may be reused under the other. Today the only such field
    /// is [`optimize`](EngineConfig::optimize): everything else (cluster
    /// shape, fault strategy, chaos, cost model) affects stage layout and
    /// runtime behaviour, which are derived per-execution from the logical
    /// plan. Catalog contents are covered separately by the catalog
    /// generation in the cache key.
    pub fn planning_fingerprint(&self) -> u64 {
        self.optimize as u64
    }

    /// Apply environment overrides, rejecting malformed values loudly.
    ///
    /// `QUOKKA_WATCHDOG_SECS` overrides [`EngineConfig::watchdog`]. Before
    /// this existed the variable was parsed with `.ok()` deep inside the
    /// coordinator, so `QUOKKA_WATCHDOG_SECS=five` silently fell back to
    /// the default — the one failure mode a watchdog must not have. The
    /// runtime calls this once per query, before any worker is spawned, so
    /// a bad override fails the query with [`QuokkaError::Config`] instead
    /// of being ignored.
    pub fn resolve_env(&mut self) -> Result<()> {
        if let Ok(raw) = std::env::var("QUOKKA_WATCHDOG_SECS") {
            let secs: u64 = raw.parse().map_err(|_| {
                QuokkaError::config(format!(
                    "QUOKKA_WATCHDOG_SECS must be a whole number of seconds, got {raw:?}"
                ))
            })?;
            if secs == 0 {
                return Err(QuokkaError::config(
                    "QUOKKA_WATCHDOG_SECS must be positive (unset it to use the default)",
                ));
            }
            self.watchdog = Duration::from_secs(secs);
        }
        if let Ok(raw) = std::env::var("QUOKKA_TRANSPORT") {
            self.transport.kind = match raw.as_str() {
                "inproc" => TransportKind::Inproc,
                "tcp" => TransportKind::Tcp,
                other => {
                    return Err(QuokkaError::config(format!(
                        "QUOKKA_TRANSPORT must be 'inproc' or 'tcp', got {other:?}"
                    )))
                }
            };
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::quokka(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_strategy_capability_matrix_matches_table1() {
        // Table I of the paper, restricted to the strategies we implement.
        let wal = FaultStrategy::WriteAheadLineage;
        assert!(wal.tracks_lineage());
        assert!(!wal.spools());
        assert!(!wal.checkpoints_state());
        assert!(wal.upstream_backup());

        let spool = FaultStrategy::Spooling;
        assert!(spool.tracks_lineage());
        assert!(spool.spools());
        assert!(!spool.checkpoints_state());

        let ckpt = FaultStrategy::Checkpointing { interval_tasks: 8 };
        assert!(ckpt.spools());
        assert!(ckpt.checkpoints_state());

        let none = FaultStrategy::None;
        assert!(!none.supports_intra_query_recovery());
    }

    #[test]
    fn default_configs_are_consistent() {
        let q = EngineConfig::quokka(16);
        assert_eq!(q.cluster.workers, 16);
        assert_eq!(q.cluster.channels_per_stage, 16);
        assert_eq!(q.mode, ExecutionMode::Pipelined);
        assert_eq!(q.fault, FaultStrategy::WriteAheadLineage);

        let s = EngineConfig::sparklike(4);
        assert_eq!(s.mode, ExecutionMode::Stagewise);

        let t = EngineConfig::trinolike(4);
        assert_eq!(t.fault, FaultStrategy::Spooling);
    }

    #[test]
    fn cost_model_zero_disables_delays() {
        let z = CostModelConfig::zero();
        assert_eq!(z.time_scale, 0.0);
        let r = CostModelConfig::realistic();
        assert!(r.durable_bandwidth < r.local_disk_bandwidth);
        assert!(r.durable_latency > r.local_disk_latency);
    }

    #[test]
    fn builder_helpers_compose() {
        let cfg = EngineConfig::quokka(4)
            .with_mode(ExecutionMode::Stagewise)
            .with_schedule(SchedulePolicy::StaticBatch { batch: 8 })
            .with_fault(FaultStrategy::None)
            .with_failure(FailureSpec::halfway(2))
            .with_batch_rows(1024)
            .with_seed(7);
        assert_eq!(cfg.mode, ExecutionMode::Stagewise);
        assert_eq!(cfg.schedule, SchedulePolicy::StaticBatch { batch: 8 });
        assert_eq!(cfg.fault, FaultStrategy::None);
        assert_eq!(cfg.failures.len(), 1);
        assert_eq!(cfg.batch_rows, 1024);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn robustness_builders_compose() {
        let cfg = EngineConfig::quokka(4)
            .with_chaos(ChaosPlan::kill_at_commits(1, 5))
            .with_watchdog(Duration::from_secs(30))
            .with_query_timeout(Duration::from_secs(10))
            .with_suspicion_timeout(Duration::from_millis(250))
            .with_retry(RetryPolicy { max_attempts: 3, ..RetryPolicy::engine_default() });
        assert_eq!(cfg.chaos.injections.len(), 1);
        assert_eq!(cfg.watchdog, Duration::from_secs(30));
        assert_eq!(cfg.query_timeout, Some(Duration::from_secs(10)));
        assert_eq!(cfg.cluster.suspicion_timeout, Duration::from_millis(250));
        assert_eq!(cfg.retry.max_attempts, 3);
        // Defaults: no deadline, 120s watchdog, conservative suspicion.
        let d = EngineConfig::quokka(2);
        assert_eq!(d.query_timeout, None);
        assert_eq!(d.watchdog, Duration::from_secs(120));
        assert!(d.chaos.is_empty());
    }

    #[test]
    fn serving_config_defaults_and_builders() {
        let d = EngineConfig::quokka(4);
        assert_eq!(d.admission, AdmissionConfig::unlimited());
        assert!(d.plan_cache.enabled);
        assert!(d.plan_cache.capacity > 0);

        let cfg = EngineConfig::quokka(4)
            .with_admission(AdmissionConfig::bounded(2, 8))
            .with_plan_cache(PlanCacheConfig::disabled());
        assert_eq!(cfg.admission.max_concurrent, Some(2));
        assert_eq!(cfg.admission.max_queued, 8);
        assert!(!cfg.plan_cache.enabled);

        // The planning fingerprint tracks exactly the fields that change
        // the lowered logical plan: `optimize` today, nothing else.
        let base = EngineConfig::quokka(4);
        assert_eq!(base.planning_fingerprint(), base.clone().with_seed(9).planning_fingerprint());
        assert_eq!(base.planning_fingerprint(), EngineConfig::trinolike(16).planning_fingerprint());
        assert_ne!(
            base.planning_fingerprint(),
            base.clone().with_optimize(false).planning_fingerprint()
        );
    }

    #[test]
    fn transport_config_defaults_and_env_override() {
        let d = EngineConfig::quokka(4);
        assert_eq!(d.transport.kind, TransportKind::Inproc);
        assert!(d.transport.send_queue_frames > 0);

        let cfg = EngineConfig::quokka(4).with_transport(TransportConfig::tcp());
        assert_eq!(cfg.transport.kind, TransportKind::Tcp);
        assert_eq!(cfg.transport.slab_bytes, TransportConfig::inproc().slab_bytes);

        // Env override: valid values switch the kind, garbage is rejected
        // loudly. One test covers set/invalid/unset so the process-global
        // variable is never observed mid-change by a sibling test.
        let mut cfg = EngineConfig::quokka(2);
        std::env::set_var("QUOKKA_TRANSPORT", "tcp");
        cfg.resolve_env().expect("valid override");
        assert_eq!(cfg.transport.kind, TransportKind::Tcp);

        std::env::set_var("QUOKKA_TRANSPORT", "inproc");
        cfg.resolve_env().expect("valid override");
        assert_eq!(cfg.transport.kind, TransportKind::Inproc);

        std::env::set_var("QUOKKA_TRANSPORT", "carrier-pigeon");
        let err = cfg.resolve_env().expect_err("malformed override must be rejected");
        assert!(matches!(err, QuokkaError::Config(_)), "got {err}");
        assert!(err.to_string().contains("QUOKKA_TRANSPORT"));

        std::env::remove_var("QUOKKA_TRANSPORT");
        let mut fresh = EngineConfig::quokka(2);
        fresh.resolve_env().expect("no override");
        assert_eq!(fresh.transport.kind, TransportKind::Inproc);
    }

    #[test]
    fn watchdog_env_override_is_validated_loudly() {
        // One test covers set/invalid/unset so the process-global variable
        // is never observed mid-change by a sibling test.
        let mut cfg = EngineConfig::quokka(2);
        std::env::set_var("QUOKKA_WATCHDOG_SECS", "45");
        cfg.resolve_env().expect("valid override");
        assert_eq!(cfg.watchdog, Duration::from_secs(45));

        std::env::set_var("QUOKKA_WATCHDOG_SECS", "five");
        let err = cfg.resolve_env().expect_err("malformed override must be rejected");
        assert!(matches!(err, QuokkaError::Config(_)), "got {err}");
        assert!(err.to_string().contains("QUOKKA_WATCHDOG_SECS"));

        std::env::set_var("QUOKKA_WATCHDOG_SECS", "0");
        assert!(cfg.resolve_env().is_err(), "zero disables the watchdog; reject it");

        std::env::remove_var("QUOKKA_WATCHDOG_SECS");
        let mut fresh = EngineConfig::quokka(2);
        fresh.resolve_env().expect("no override");
        assert_eq!(fresh.watchdog, Duration::from_secs(120));
    }
}
