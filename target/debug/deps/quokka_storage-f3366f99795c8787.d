/root/repo/target/debug/deps/quokka_storage-f3366f99795c8787.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_storage-f3366f99795c8787.rmeta: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
