/root/repo/target/debug/deps/serde_derive-45d3ad887bbf8c51.d: crates/shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-45d3ad887bbf8c51.so: crates/shims/serde_derive/src/lib.rs Cargo.toml

crates/shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
