/root/repo/target/debug/examples/strategy_comparison-f03d673381229c14.d: examples/strategy_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libstrategy_comparison-f03d673381229c14.rmeta: examples/strategy_comparison.rs Cargo.toml

examples/strategy_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
