/root/repo/target/debug/deps/serde_derive-0011fc274ffe1a2f.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-0011fc274ffe1a2f.so: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
