/root/repo/target/debug/deps/fig10-56e8c4de31bf576c.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-56e8c4de31bf576c.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
