//! Shared foundations for the Quokka write-ahead-lineage query engine.
//!
//! This crate contains the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`ids`] — the `(stage, channel, sequence-number)` naming scheme the
//!   paper uses for tasks and their output partitions (§III-A of the paper),
//!   plus worker identifiers.
//! * [`error`] — the unified [`QuokkaError`] type and
//!   `Result` alias.
//! * [`config`] — cluster, engine, cost-model and failure-injection
//!   configuration.
//! * [`chaos`] — deterministic chaos plans: reproducible schedules of
//!   kills, suspicions, lost backups, dropped/delayed pushes and
//!   stragglers, generalising the single-kill `FailureSpec`.
//! * [`retry`] — bounded exponential backoff with deterministic jitter,
//!   shared by every retry loop in the engine.
//! * [`metrics`] — counters collected during query execution (bytes spooled,
//!   bytes backed up, GCS transactions, recovery time, ...).
//! * [`rng`] — small deterministic pseudo-random-number helpers so every
//!   experiment and test is reproducible from a seed.
//!
//! Nothing in this crate knows about batches, plans or the distributed
//! runtime; it exists so the substrate crates (`quokka-batch`, `quokka-gcs`,
//! `quokka-storage`, `quokka-net`) do not depend on each other.

pub mod chaos;
pub mod config;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod retry;
pub mod rng;

pub use chaos::{ChaosEvent, ChaosInjection, ChaosPlan, ChaosTrigger};
pub use config::{
    AdmissionConfig, ClusterConfig, CostModelConfig, EngineConfig, ExecutionMode, FailureSpec,
    FaultStrategy, PlanCacheConfig, SchedulePolicy, TransportConfig, TransportKind,
};
pub use error::{QuokkaError, Result};
pub use ids::{ChannelAddr, ChannelId, PartitionName, SeqNo, StageId, TaskName, WorkerId};
pub use metrics::{MetricsRegistry, PeerWireStats, QueryMetrics};
pub use retry::{Backoff, RetryPolicy};
