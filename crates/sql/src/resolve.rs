//! Shared name-resolution helpers.
//!
//! These started life inside the SQL binder but are frontend-agnostic: the
//! lazy DataFrame API resolves table and column names against the same
//! catalog/schema machinery and wants the same "did you mean" ergonomics in
//! its build-time errors. Both frontends call into this module so error
//! quality cannot drift between them.

/// `(did you mean 'x'?)` when a close match exists, else empty.
///
/// "Close" means a Levenshtein distance of at most 2 — enough to catch
/// dropped/transposed characters (`oders` → `orders`) without suggesting
/// unrelated names.
pub fn suggest(name: &str, candidates: Vec<&str>) -> String {
    let best = candidates
        .into_iter()
        .map(|c| (levenshtein(name, c), c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d);
    match best {
        Some((_, c)) => format!(" (did you mean '{c}'?)"),
        None => String::new(),
    }
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggests_close_matches_only() {
        assert_eq!(suggest("oders", vec!["orders", "lineitem"]), " (did you mean 'orders'?)");
        assert_eq!(suggest("zzz", vec!["orders", "lineitem"]), "");
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }
}
