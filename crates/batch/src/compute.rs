//! Compute kernels over [`Column`]s and [`Batch`]es.
//!
//! These are the "single-node kernels" the paper's implementation borrows
//! from DuckDB/Polars: element-wise arithmetic and comparisons, boolean
//! logic, LIKE matching, row hashing, hash partitioning (the basis of every
//! shuffle) and multi-key sorting.

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::{DataType, ScalarValue};
use quokka_common::{QuokkaError, Result};
use std::cmp::Ordering;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// Element-wise arithmetic between two columns of equal length.
///
/// Integer inputs stay integer for `+ - *`; division and any float input
/// produce `Float64`.
pub fn arith(op: ArithOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(QuokkaError::internal(format!(
            "arith length mismatch: {} vs {}",
            left.len(),
            right.len()
        )));
    }
    match (left, right, op) {
        (Column::Int64(a), Column::Int64(b), ArithOp::Add) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x + y).collect()))
        }
        (Column::Int64(a), Column::Int64(b), ArithOp::Sub) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x - y).collect()))
        }
        (Column::Int64(a), Column::Int64(b), ArithOp::Mul) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x * y).collect()))
        }
        _ => {
            let a = left.to_f64_vec()?;
            let b = right.to_f64_vec()?;
            let out: Vec<f64> = a
                .iter()
                .zip(&b)
                .map(|(x, y)| match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                })
                .collect();
            Ok(Column::Float64(out))
        }
    }
}

/// Element-wise comparison between two columns of equal length, producing a
/// boolean mask. Numeric types (Int64/Float64/Date) are coerced to f64;
/// strings and booleans compare directly.
pub fn compare(op: CmpOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(QuokkaError::internal(format!(
            "compare length mismatch: {} vs {}",
            left.len(),
            right.len()
        )));
    }
    let mask: Vec<bool> = match (left, right) {
        (Column::Utf8(a), Column::Utf8(b)) => {
            a.iter().zip(b).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        (Column::Bool(a), Column::Bool(b)) => {
            a.iter().zip(b).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        _ => {
            let a = left.to_f64_vec()?;
            let b = right.to_f64_vec()?;
            a.iter().zip(&b).map(|(x, y)| apply_ord(op, x.total_cmp(y))).collect()
        }
    };
    Ok(Column::Bool(mask))
}

fn apply_ord(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::NotEq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::LtEq => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::GtEq => ord != Ordering::Less,
    }
}

/// Broadcast a scalar to a column of length `len`.
pub fn broadcast(value: &ScalarValue, len: usize) -> Column {
    match value {
        ScalarValue::Int64(v) => Column::Int64(vec![*v; len]),
        ScalarValue::Float64(v) => Column::Float64(vec![*v; len]),
        ScalarValue::Utf8(v) => Column::Utf8(vec![v.clone(); len]),
        ScalarValue::Bool(v) => Column::Bool(vec![*v; len]),
        ScalarValue::Date(v) => Column::Date(vec![*v; len]),
    }
}

/// Element-wise logical AND.
pub fn and(left: &Column, right: &Column) -> Result<Column> {
    let a = left.as_bool()?;
    let b = right.as_bool()?;
    Ok(Column::Bool(a.iter().zip(b).map(|(x, y)| *x && *y).collect()))
}

/// Element-wise logical OR.
pub fn or(left: &Column, right: &Column) -> Result<Column> {
    let a = left.as_bool()?;
    let b = right.as_bool()?;
    Ok(Column::Bool(a.iter().zip(b).map(|(x, y)| *x || *y).collect()))
}

/// Element-wise logical NOT.
pub fn not(col: &Column) -> Result<Column> {
    Ok(Column::Bool(col.as_bool()?.iter().map(|x| !x).collect()))
}

/// SQL `LIKE` with `%` (any substring) and `_` (any single char) wildcards.
pub fn like(col: &Column, pattern: &str) -> Result<Column> {
    let values = col.as_utf8()?;
    Ok(Column::Bool(values.iter().map(|v| like_match(v, pattern)).collect()))
}

/// Whether `value` matches the SQL LIKE `pattern`.
///
/// Iterative two-pointer algorithm: on a mismatch after a `%`, restart the
/// value one character past the position where the `%` last matched, instead
/// of recursing over every split point. Linear-ish in practice and immune to
/// the exponential backtracking the old recursive matcher exhibited on
/// patterns like `%a%a%a%b` against long non-matching strings.
pub fn like_match(value: &str, pattern: &str) -> bool {
    let v = value.as_bytes();
    let p = pattern.as_bytes();
    let (mut vi, mut pi) = (0usize, 0usize);
    // Position of the last `%` seen, and the value index its match resumed at.
    let mut star: Option<usize> = None;
    let mut star_vi = 0usize;
    while vi < v.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == v[vi]) {
            vi += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some(pi);
            star_vi = vi;
            pi += 1;
        } else if let Some(star_pi) = star {
            // Mismatch: let the last `%` swallow one more character.
            pi = star_pi + 1;
            star_vi += 1;
            vi = star_vi;
        } else {
            return false;
        }
    }
    // Value exhausted: remaining pattern must be all `%`.
    p[pi..].iter().all(|&c| c == b'%')
}

/// `value IN (list)` membership test.
///
/// The list is folded into a typed `HashSet` once, so the per-row cost is a
/// single hash probe instead of a `total_cmp` scan of the whole list.
/// Int64/Float64 list items coerce against numeric columns through the same
/// [`crate::rowkey::canonical_i64`] rule the hash operators use, and items of a
/// non-coercible type simply never match. (Like the key encoding, integers
/// beyond 2^53 compare exactly rather than through `total_cmp`'s lossy
/// f64 coercion.)
pub fn in_list(col: &Column, list: &[ScalarValue]) -> Result<Column> {
    use std::collections::HashSet;

    // Integral list items (Int64, or Float64 holding an exact integer) as
    // i64; used by Int64 columns and by integral values of Float64 columns.
    let int_items = || -> HashSet<i64> {
        list.iter()
            .filter_map(|item| match item {
                ScalarValue::Int64(x) => Some(*x),
                ScalarValue::Float64(x) => crate::rowkey::canonical_i64(*x),
                _ => None,
            })
            .collect()
    };

    let mask: Vec<bool> = match col {
        Column::Utf8(values) => {
            let set: HashSet<&str> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Utf8(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            values.iter().map(|v| set.contains(v.as_str())).collect()
        }
        Column::Int64(values) => {
            let set = int_items();
            values.iter().map(|v| set.contains(v)).collect()
        }
        Column::Date(values) => {
            let set: HashSet<i32> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Date(d) => Some(*d),
                    _ => None,
                })
                .collect();
            values.iter().map(|v| set.contains(v)).collect()
        }
        Column::Float64(values) => {
            // Split the list into exact-integer items (compared after the
            // same canonicalization) and everything else by bit pattern;
            // total_cmp equality on floats is bit equality.
            let ints = int_items();
            let bits: HashSet<u64> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Float64(x) => Some(x.to_bits()),
                    _ => None,
                })
                .collect();
            values
                .iter()
                .map(|v| {
                    let as_int = crate::rowkey::canonical_i64(*v);
                    as_int.is_some_and(|i| ints.contains(&i)) || bits.contains(&v.to_bits())
                })
                .collect()
        }
        Column::Bool(values) => {
            let set: HashSet<bool> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Bool(b) => Some(*b),
                    _ => None,
                })
                .collect();
            values.iter().map(|v| set.contains(v)).collect()
        }
    };
    Ok(Column::Bool(mask))
}

/// Row-wise hash of the key columns at `key_indices`.
pub fn hash_rows(batch: &Batch, key_indices: &[usize]) -> Vec<u64> {
    let mut hashes = vec![0xA5A5_5A5A_DEAD_BEEFu64; batch.num_rows()];
    for &k in key_indices {
        batch.column(k).hash_into(&mut hashes);
    }
    hashes
}

/// Partition a batch into `partitions` output batches by hashing the key
/// columns. Every input row lands in exactly one output batch; rows keep
/// their relative order within a partition (important for determinism of
/// lineage replay).
///
/// Single-pass: each column is scattered directly into per-partition typed
/// builders sized from a count pass over the hashes, instead of building
/// per-partition row-index lists and `take`-ing each partition separately.
pub fn hash_partition(
    batch: &Batch,
    key_indices: &[usize],
    partitions: usize,
) -> Result<Vec<Batch>> {
    assert!(partitions > 0);
    if partitions == 1 {
        return Ok(vec![batch.clone()]);
    }
    let hashes = hash_rows(batch, key_indices);
    let part_of: Vec<u32> = hashes.iter().map(|h| (h % partitions as u64) as u32).collect();
    let mut counts = vec![0usize; partitions];
    for &p in &part_of {
        counts[p as usize] += 1;
    }

    fn scatter<T: Clone>(values: &[T], part_of: &[u32], counts: &[usize]) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (value, &p) in values.iter().zip(part_of) {
            out[p as usize].push(value.clone());
        }
        out
    }

    let mut columns_per_part: Vec<Vec<Column>> =
        (0..partitions).map(|_| Vec::with_capacity(batch.num_columns())).collect();
    for col in batch.columns() {
        let scattered: Vec<Column> = match col {
            Column::Int64(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Int64).collect()
            }
            Column::Float64(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Float64).collect()
            }
            Column::Utf8(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Utf8).collect()
            }
            Column::Bool(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Bool).collect()
            }
            Column::Date(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Date).collect()
            }
        };
        for (part, piece) in columns_per_part.iter_mut().zip(scattered) {
            part.push(piece);
        }
    }
    columns_per_part
        .into_iter()
        .map(|columns| Batch::try_new(batch.schema().clone(), columns))
        .collect()
}

/// A sort key: column index plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(column: usize) -> Self {
        SortKey { column, ascending: true }
    }
    pub fn desc(column: usize) -> Self {
        SortKey { column, ascending: false }
    }
}

/// Compare `left[a]` with `right[b]` directly on the typed column storage —
/// no `ScalarValue` is materialized (the old path cloned strings on every
/// comparison). The ordering mirrors [`ScalarValue::total_cmp`], including
/// the Int64/Float64 coercion and the type-rank fallback for non-coercible
/// type pairs.
pub fn cmp_values(left: &Column, a: usize, right: &Column, b: usize) -> Ordering {
    fn rank(col: &Column) -> u8 {
        match col {
            Column::Bool(_) => 0,
            Column::Int64(_) => 1,
            Column::Float64(_) => 2,
            Column::Date(_) => 3,
            Column::Utf8(_) => 4,
        }
    }
    match (left, right) {
        (Column::Int64(x), Column::Int64(y)) => x[a].cmp(&y[b]),
        (Column::Float64(x), Column::Float64(y)) => x[a].total_cmp(&y[b]),
        (Column::Utf8(x), Column::Utf8(y)) => x[a].cmp(&y[b]),
        (Column::Bool(x), Column::Bool(y)) => x[a].cmp(&y[b]),
        (Column::Date(x), Column::Date(y)) => x[a].cmp(&y[b]),
        (Column::Int64(x), Column::Float64(y)) => (x[a] as f64).total_cmp(&y[b]),
        (Column::Float64(x), Column::Int64(y)) => x[a].total_cmp(&(y[b] as f64)),
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

/// Stable argsort of a batch by the given sort keys. Comparisons read the
/// typed column slices directly; no per-comparison allocation.
pub fn sort_indices(batch: &Batch, keys: &[SortKey]) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    let key_columns: Vec<(&Column, bool)> =
        keys.iter().map(|k| (batch.column(k.column), k.ascending)).collect();
    indices.sort_by(|&a, &b| {
        for &(col, ascending) in &key_columns {
            let ord = cmp_values(col, a, col, b);
            let ord = if ascending { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    indices
}

/// Compare row `a` of `left` with row `b` of `right` under `keys` (the
/// column indices refer to both batches, which must share a schema).
pub fn compare_rows(left: &Batch, a: usize, right: &Batch, b: usize, keys: &[SortKey]) -> Ordering {
    for key in keys {
        let ord = cmp_values(left.column(key.column), a, right.column(key.column), b);
        let ord = if key.ascending { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a batch by the given keys.
pub fn sort_batch(batch: &Batch, keys: &[SortKey]) -> Result<Batch> {
    let idx = sort_indices(batch, keys);
    batch.take(&idx)
}

/// Cast a column to another data type. Supports the numeric/date coercions
/// the TPC-H plans need.
pub fn cast(col: &Column, to: DataType) -> Result<Column> {
    if col.data_type() == to {
        return Ok(col.clone());
    }
    match (col, to) {
        (Column::Int64(v), DataType::Float64) => {
            Ok(Column::Float64(v.iter().map(|&x| x as f64).collect()))
        }
        (Column::Float64(v), DataType::Int64) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        (Column::Date(v), DataType::Int64) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        (Column::Int64(v), DataType::Date) => {
            Ok(Column::Date(v.iter().map(|&x| x as i32).collect()))
        }
        (from, to) => {
            Err(QuokkaError::TypeError(format!("unsupported cast {} -> {}", from.data_type(), to)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn batch() -> Batch {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int64),
            ("v", DataType::Float64),
            ("s", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![3, 1, 2, 1]),
                Column::Float64(vec![1.0, 4.0, 2.0, 3.0]),
                Column::Utf8(vec!["c".into(), "a".into(), "b".into(), "a".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_integer_and_float() {
        let a = Column::Int64(vec![4, 9]);
        let b = Column::Int64(vec![2, 3]);
        assert_eq!(arith(ArithOp::Add, &a, &b).unwrap(), Column::Int64(vec![6, 12]));
        assert_eq!(arith(ArithOp::Mul, &a, &b).unwrap(), Column::Int64(vec![8, 27]));
        assert_eq!(arith(ArithOp::Div, &a, &b).unwrap(), Column::Float64(vec![2.0, 3.0]));
        let f = Column::Float64(vec![0.5, 0.5]);
        assert_eq!(arith(ArithOp::Sub, &a, &f).unwrap(), Column::Float64(vec![3.5, 8.5]));
        assert!(arith(ArithOp::Add, &a, &Column::Int64(vec![1])).is_err());
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let a = Column::Int64(vec![1, 2, 3]);
        let b = Column::Float64(vec![2.0, 2.0, 2.0]);
        assert_eq!(compare(CmpOp::Lt, &a, &b).unwrap(), Column::Bool(vec![true, false, false]));
        assert_eq!(compare(CmpOp::GtEq, &a, &b).unwrap(), Column::Bool(vec![false, true, true]));
        let s1 = Column::Utf8(vec!["x".into(), "y".into()]);
        let s2 = Column::Utf8(vec!["x".into(), "z".into()]);
        assert_eq!(compare(CmpOp::Eq, &s1, &s2).unwrap(), Column::Bool(vec![true, false]));

        let t = Column::Bool(vec![true, false]);
        let f = Column::Bool(vec![true, true]);
        assert_eq!(and(&t, &f).unwrap(), Column::Bool(vec![true, false]));
        assert_eq!(or(&t, &f).unwrap(), Column::Bool(vec![true, true]));
        assert_eq!(not(&t).unwrap(), Column::Bool(vec![false, true]));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO BRUSHED STEEL", "PROMO%"));
        assert!(like_match("small shiny gold", "%shiny%"));
        assert!(!like_match("ECONOMY ANODIZED", "PROMO%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(like_match("anything at all", "%"));
        let col = Column::Utf8(vec!["MEDIUM POLISHED".into(), "SMALL PLATED".into()]);
        assert_eq!(like(&col, "MEDIUM%").unwrap(), Column::Bool(vec![true, false]));
        // Multi-wildcard patterns where later literals force re-matching.
        assert!(like_match("xayazb", "%a%b"));
        assert!(!like_match("xayaz", "%a%b"));
        assert!(like_match("aab", "a%b"));
        assert!(like_match("ab", "a%%b"));
        assert!(!like_match("a", "a_"));
        assert!(like_match("abc", "%c"));
        assert!(!like_match("abc", "%d"));
    }

    #[test]
    fn like_pathological_pattern_completes_instantly() {
        // The old recursive matcher was exponential in the number of `%`s on
        // non-matching inputs: each `%` tried every split point. The
        // two-pointer matcher must dispatch this in well under a second.
        let value = "a".repeat(2000);
        let pattern = "%a%a%a%a%a%b";
        let start = std::time::Instant::now();
        assert!(!like_match(&value, pattern));
        assert!(like_match(&format!("{value}b"), pattern));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "pathological LIKE pattern took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn in_list_membership() {
        let col = Column::Utf8(vec!["MAIL".into(), "SHIP".into(), "AIR".into()]);
        let list = vec![ScalarValue::from("MAIL"), ScalarValue::from("SHIP")];
        assert_eq!(in_list(&col, &list).unwrap(), Column::Bool(vec![true, true, false]));
        let nums = Column::Int64(vec![1, 5, 9]);
        let list = vec![ScalarValue::Int64(5)];
        assert_eq!(in_list(&nums, &list).unwrap(), Column::Bool(vec![false, true, false]));
    }

    #[test]
    fn in_list_coerces_numerics_like_total_cmp() {
        // Int64 column against Float64 list items: integral floats match,
        // fractional ones never do.
        let ints = Column::Int64(vec![2, 3, 4]);
        let list = vec![ScalarValue::Float64(2.0), ScalarValue::Float64(3.5)];
        assert_eq!(in_list(&ints, &list).unwrap(), Column::Bool(vec![true, false, false]));

        // Float64 column against mixed Int64/Float64 items.
        let floats = Column::Float64(vec![2.0, 2.5, -0.0, 7.25]);
        let list = vec![ScalarValue::Int64(2), ScalarValue::Int64(0), ScalarValue::Float64(7.25)];
        // -0.0 != Int64(0) under total_cmp; 2.0 == Int64(2); 7.25 matches by bits.
        assert_eq!(in_list(&floats, &list).unwrap(), Column::Bool(vec![true, false, false, true]));

        // Dates only match Date items, never numerically-equal Int64s.
        let dates = Column::Date(vec![10, 20]);
        let list = vec![ScalarValue::Int64(10), ScalarValue::Date(20)];
        assert_eq!(in_list(&dates, &list).unwrap(), Column::Bool(vec![false, true]));

        // A string column ignores non-string items entirely.
        let tags = Column::Utf8(vec!["5".into()]);
        assert_eq!(in_list(&tags, &[ScalarValue::Int64(5)]).unwrap(), Column::Bool(vec![false]));
    }

    #[test]
    fn in_list_scales_past_linear_scans() {
        // 20k rows against a 1k-item string list; the per-row HashSet probe
        // keeps this far under a second even in debug builds.
        let items: Vec<ScalarValue> =
            (0..1000).map(|i| ScalarValue::from(format!("tag-{i}"))).collect();
        let col = Column::Utf8((0..20_000).map(|i| format!("tag-{}", i % 2000)).collect());
        let start = std::time::Instant::now();
        let mask = in_list(&col, &items).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        let hits = mask.as_bool().unwrap().iter().filter(|&&b| b).count();
        assert_eq!(hits, 10_000);
    }

    #[test]
    fn hash_partition_is_complete_and_disjoint() {
        let b = batch();
        let parts = hash_partition(&b, &[0], 3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, b.num_rows());
        // Equal keys land in the same partition.
        let key_part: Vec<Option<usize>> = (0..4)
            .map(|row| {
                let key = b.value(row, 0);
                parts.iter().position(|p| {
                    (0..p.num_rows())
                        .any(|r| p.value(r, 0) == key && p.value(r, 2) == b.value(row, 2))
                })
            })
            .collect();
        assert_eq!(key_part[1], key_part[3], "rows with key=1 must co-locate");
    }

    #[test]
    fn single_partition_shortcut() {
        let b = batch();
        let parts = hash_partition(&b, &[0], 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], b);
    }

    #[test]
    fn sorting_multi_key() {
        let b = batch();
        let sorted = sort_batch(&b, &[SortKey::asc(0), SortKey::desc(1)]).unwrap();
        assert_eq!(sorted.column(0), &Column::Int64(vec![1, 1, 2, 3]));
        assert_eq!(sorted.column(1), &Column::Float64(vec![4.0, 3.0, 2.0, 1.0]));
        let idx = sort_indices(&b, &[SortKey::desc(2)]);
        assert_eq!(idx[0], 0); // "c" first
    }

    #[test]
    fn cast_kernels() {
        assert_eq!(
            cast(&Column::Int64(vec![1, 2]), DataType::Float64).unwrap(),
            Column::Float64(vec![1.0, 2.0])
        );
        assert_eq!(
            cast(&Column::Float64(vec![1.9]), DataType::Int64).unwrap(),
            Column::Int64(vec![1])
        );
        assert_eq!(cast(&Column::Date(vec![3]), DataType::Int64).unwrap(), Column::Int64(vec![3]));
        assert!(cast(&Column::Utf8(vec![]), DataType::Int64).is_err());
        // identity cast
        assert_eq!(
            cast(&Column::Bool(vec![true]), DataType::Bool).unwrap(),
            Column::Bool(vec![true])
        );
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast(&ScalarValue::Int64(7), 3), Column::Int64(vec![7, 7, 7]));
        assert_eq!(broadcast(&ScalarValue::from("x"), 2).len(), 2);
    }
}
