/root/repo/target/debug/deps/quokka_bench-d6721b2ffec1f1f9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquokka_bench-d6721b2ffec1f1f9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
