/root/repo/target/release/deps/fig7-b49937ffabb3fda9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-b49937ffabb3fda9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
