//! Integration tests: the distributed engine must produce exactly the same
//! results as the single-threaded reference executor on the TPC-H workload,
//! under every execution mode.

use quokka::{same_result, EngineConfig, ExecutionMode, QuokkaSession};

fn session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).expect("generate TPC-H data")
}

fn check(session: &QuokkaSession, query: usize, config: &EngineConfig) {
    let plan = quokka::tpch::query(query).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let outcome = session.run_with(&plan, config).unwrap();
    assert!(
        same_result(&expected, &outcome.batch),
        "Q{query} diverged under {config:?}: expected {} rows, got {} rows",
        expected.num_rows(),
        outcome.batch.num_rows()
    );
}

#[test]
fn representative_queries_match_reference_pipelined() {
    let session = session();
    for &q in &quokka::tpch::REPRESENTATIVE {
        check(&session, q, &EngineConfig::quokka(3));
    }
}

#[test]
fn representative_queries_match_reference_stagewise() {
    let session = session();
    for &q in &quokka::tpch::REPRESENTATIVE {
        check(&session, q, &EngineConfig::sparklike(3));
    }
}

#[test]
fn join_heavy_queries_match_reference_with_spooling() {
    let session = session();
    for q in [3usize, 5, 10, 12] {
        check(&session, q, &EngineConfig::trinolike(3));
    }
}

#[test]
fn subquery_and_semi_anti_join_queries_match_reference() {
    let session = session();
    for q in [4usize, 11, 13, 14, 16, 22] {
        check(&session, q, &EngineConfig::quokka(3));
    }
}

#[test]
fn remaining_queries_match_reference() {
    let session = session();
    for q in [2usize, 15, 17, 18, 19, 20, 21] {
        check(&session, q, &EngineConfig::quokka(2));
    }
}

#[test]
fn results_are_stable_across_cluster_sizes() {
    let session = session();
    let plan = quokka::tpch::query(3).unwrap();
    let small = session.run_with(&plan, &EngineConfig::quokka(2)).unwrap();
    let large = session.run_with(&plan, &EngineConfig::quokka(5)).unwrap();
    assert!(same_result(&small.batch, &large.batch));
    assert_eq!(small.metrics.failures, 0);
}

#[test]
fn pipelined_and_stagewise_agree_on_every_mode_pair() {
    let session = session();
    let plan = quokka::tpch::query(10).unwrap();
    let pipelined = session
        .run_with(&plan, &EngineConfig::quokka(3).with_mode(ExecutionMode::Pipelined))
        .unwrap();
    let stagewise = session
        .run_with(&plan, &EngineConfig::quokka(3).with_mode(ExecutionMode::Stagewise))
        .unwrap();
    assert!(same_result(&pipelined.batch, &stagewise.batch));
}
