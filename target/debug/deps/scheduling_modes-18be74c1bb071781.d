/root/repo/target/debug/deps/scheduling_modes-18be74c1bb071781.d: tests/scheduling_modes.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling_modes-18be74c1bb071781.rmeta: tests/scheduling_modes.rs Cargo.toml

tests/scheduling_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
