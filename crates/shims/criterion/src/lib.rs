//! Offline stand-in for `criterion`, covering the API subset the `micro`
//! bench uses. Each benchmark is warmed up briefly, then timed for a fixed
//! number of iterations; mean wall-clock time per iteration is printed in a
//! criterion-like one-line format. No statistics beyond the mean are
//! computed — the goal is a runnable `cargo bench` without crates.io access.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MIN_MEASURE_TIME: Duration = Duration::from_millis(300);

/// Throughput annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MIN_MEASURE_TIME {
            std::hint::black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Kelem/s", n as f64 / per_iter / 1000.0)
        }
        None => String::new(),
    };
    println!("{name:<40} time: {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), throughput: None }
    }
}

/// Benchmark group with an optional throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name.as_ref()), &bencher, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
