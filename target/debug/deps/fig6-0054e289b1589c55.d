/root/repo/target/debug/deps/fig6-0054e289b1589c55.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-0054e289b1589c55.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
