//! `quokka-workerd`: one worker-process daemon of a multi-process cluster.
//!
//! Spawned by the driver harness
//! ([`quokka_engine::cluster::run_process_query`]); hosts a contiguous range
//! of workers, reaches the driver's GCS/durable-store/sink over the control
//! connection, and shuffles batches with its peer processes over TCP. The
//! plan is not shipped: the daemon regenerates the seeded TPC-H catalog and
//! recompiles the query locally, which yields the exact stage graph the
//! driver compiled ([`quokka::process::tpch_process_inputs`]).
//!
//! ```text
//! quokka-workerd --query 3 --sf 0.01 --workers 4 --channels 4 \
//!     --suspicion-ms 250 --driver 127.0.0.1:45123 --process 1 --ranges 0-2,2-4
//! ```

use quokka::engine::cluster::{parse_ranges, run_workerd, WorkerdOpts};
use quokka::process::tpch_process_inputs;
use quokka::{EngineConfig, TransportConfig};
use std::time::Duration;

struct Args {
    query: usize,
    sf: f64,
    workers: u32,
    channels: u32,
    suspicion_ms: Option<u64>,
    driver: std::net::SocketAddr,
    process: usize,
    ranges: String,
}

fn parse_args() -> Result<Args, String> {
    let mut query = None;
    let mut sf = None;
    let mut workers = None;
    let mut channels = None;
    let mut suspicion_ms = None;
    let mut driver = None;
    let mut process = None;
    let mut ranges = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("missing value for {what}"));
        match flag.as_str() {
            "--query" => query = Some(value("--query")?),
            "--sf" => sf = Some(value("--sf")?),
            "--workers" => workers = Some(value("--workers")?),
            "--channels" => channels = Some(value("--channels")?),
            "--suspicion-ms" => suspicion_ms = Some(value("--suspicion-ms")?),
            "--driver" => driver = Some(value("--driver")?),
            "--process" => process = Some(value("--process")?),
            "--ranges" => ranges = Some(value("--ranges")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let req = |name: &str, v: Option<String>| v.ok_or_else(|| format!("missing {name}"));
    let parse = |name: &str, v: String| -> Result<u64, String> {
        v.parse().map_err(|_| format!("bad value for {name}: {v:?}"))
    };
    let query = parse("--query", req("--query", query)?)? as usize;
    let sf: f64 = {
        let v = req("--sf", sf)?;
        v.parse().map_err(|_| format!("bad value for --sf: {v:?}"))?
    };
    let workers = parse("--workers", req("--workers", workers)?)? as u32;
    let channels = match channels {
        Some(v) => parse("--channels", v)? as u32,
        None => workers,
    };
    let suspicion_ms = suspicion_ms.map(|v| parse("--suspicion-ms", v)).transpose()?;
    let driver = {
        let v = req("--driver", driver)?;
        v.parse().map_err(|_| format!("bad value for --driver: {v:?}"))?
    };
    let process = parse("--process", req("--process", process)?)? as usize;
    let ranges = req("--ranges", ranges)?;
    Ok(Args { query, sf, workers, channels, suspicion_ms, driver, process, ranges })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("quokka-workerd: {e}");
            std::process::exit(2);
        }
    };

    // This config must match the driver's: the layout (channel-to-worker
    // and split-to-channel assignment) is derived from it in every process.
    let mut config = EngineConfig::quokka(args.workers).with_transport(TransportConfig::tcp());
    config.cluster.channels_per_stage = args.channels;
    if let Some(ms) = args.suspicion_ms {
        config.cluster.suspicion_timeout = Duration::from_millis(ms);
    }

    let inputs = match tpch_process_inputs(args.query, args.sf, &config) {
        Ok(inputs) => inputs,
        Err(e) => {
            eprintln!("quokka-workerd: planning query {} failed: {e}", args.query);
            std::process::exit(1);
        }
    };
    let ranges = match parse_ranges(&args.ranges) {
        Ok(ranges) => ranges,
        Err(e) => {
            eprintln!("quokka-workerd: {e}");
            std::process::exit(2);
        }
    };

    let outcome = run_workerd(WorkerdOpts {
        driver: args.driver,
        process: args.process,
        ranges,
        config,
        graph: inputs.graph,
        table_splits: inputs.table_splits,
    });
    if let Err(e) = outcome {
        eprintln!("quokka-workerd: process {} failed: {e}", args.process);
        std::process::exit(1);
    }
}
