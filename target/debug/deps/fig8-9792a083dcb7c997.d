/root/repo/target/debug/deps/fig8-9792a083dcb7c997.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-9792a083dcb7c997.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
