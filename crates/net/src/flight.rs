//! One worker's flight server (push inbox).

use parking_lot::RwLock;
use quokka_batch::Batch;
use quokka_common::ids::{ChannelAddr, PartitionName, WorkerId};
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Key of one pushed slice: which channel it is for, and which task produced
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SliceKey {
    pub consumer: ChannelAddr,
    pub producer: PartitionName,
}

/// A worker's inbox of pushed partition slices.
///
/// The slices live here until the consuming task takes them; when the worker
/// is killed the inbox is dropped, so any slice that had not been consumed
/// (or that the consumer will need again after being rewound) has to be
/// replayed from the producer's local backup or regenerated.
#[derive(Debug)]
pub struct FlightServer {
    worker: WorkerId,
    inbox: RwLock<BTreeMap<SliceKey, Vec<Batch>>>,
    failed: AtomicBool,
}

impl FlightServer {
    pub fn new(worker: WorkerId) -> Self {
        FlightServer { worker, inbox: RwLock::new(BTreeMap::new()), failed: AtomicBool::new(false) }
    }

    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Accept a pushed slice. Fails if this worker has been killed.
    pub fn push(
        &self,
        consumer: ChannelAddr,
        producer: PartitionName,
        batches: Vec<Batch>,
    ) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(QuokkaError::WorkerFailed(self.worker));
        }
        self.inbox.write().insert(SliceKey { consumer, producer }, batches);
        Ok(())
    }

    /// Whether a slice from `producer` for `consumer` is waiting in the inbox.
    pub fn has_slice(&self, consumer: ChannelAddr, producer: PartitionName) -> bool {
        !self.failed.load(Ordering::SeqCst)
            && self.inbox.read().contains_key(&SliceKey { consumer, producer })
    }

    /// Producer tasks from `upstream` whose slices for `consumer` are
    /// currently available, restricted to sequence numbers `>= start_seq`,
    /// in sequence order. This is the set `A ∩ B` of Algorithm 1 before the
    /// committed-lineage filter is applied.
    pub fn available_from(
        &self,
        consumer: ChannelAddr,
        upstream: ChannelAddr,
        start_seq: u32,
    ) -> Vec<PartitionName> {
        if self.failed.load(Ordering::SeqCst) {
            return Vec::new();
        }
        let inbox = self.inbox.read();
        let mut found: Vec<PartitionName> = inbox
            .keys()
            .filter(|k| {
                k.consumer == consumer
                    && k.producer.stage == upstream.stage
                    && k.producer.channel == upstream.channel
                    && k.producer.seq >= start_seq
            })
            .map(|k| k.producer)
            .collect();
        found.sort();
        found
    }

    /// Remove and return a slice (the consuming task takes ownership).
    pub fn take(&self, consumer: ChannelAddr, producer: PartitionName) -> Result<Vec<Batch>> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(QuokkaError::WorkerFailed(self.worker));
        }
        self.inbox
            .write()
            .remove(&SliceKey { consumer, producer })
            .ok_or_else(|| QuokkaError::NotFound(format!("slice {producer} for {consumer}")))
    }

    /// Read a slice without removing it.
    pub fn peek(&self, consumer: ChannelAddr, producer: PartitionName) -> Option<Vec<Batch>> {
        if self.failed.load(Ordering::SeqCst) {
            return None;
        }
        self.inbox.read().get(&SliceKey { consumer, producer }).cloned()
    }

    /// Drop every slice destined for `consumer` (used when a channel is
    /// rewound: stale pushed slices must not be double-consumed; the rewound
    /// producer will re-push them).
    pub fn clear_consumer(&self, consumer: ChannelAddr) {
        self.inbox.write().retain(|k, _| k.consumer != consumer);
    }

    /// Number of slices waiting.
    pub fn len(&self) -> usize {
        self.inbox.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inbox.read().is_empty()
    }

    /// Simulate the worker being killed: the inbox is lost and future pushes
    /// are rejected.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
        self.inbox.write().clear();
    }

    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType, Schema};
    use quokka_common::ids::TaskName;

    fn batch(v: Vec<i64>) -> Batch {
        Batch::try_new(Schema::from_pairs(&[("x", DataType::Int64)]), vec![Column::Int64(v)])
            .unwrap()
    }

    #[test]
    fn push_take_peek() {
        let fs = FlightServer::new(0);
        let consumer = ChannelAddr::new(1, 0);
        let producer = TaskName::new(0, 0, 0);
        fs.push(consumer, producer, vec![batch(vec![1, 2])]).unwrap();
        assert!(fs.has_slice(consumer, producer));
        assert_eq!(fs.peek(consumer, producer).unwrap()[0].num_rows(), 2);
        let taken = fs.take(consumer, producer).unwrap();
        assert_eq!(taken.len(), 1);
        assert!(!fs.has_slice(consumer, producer));
        assert!(fs.take(consumer, producer).is_err());
    }

    #[test]
    fn available_from_orders_and_filters() {
        let fs = FlightServer::new(0);
        let consumer = ChannelAddr::new(2, 0);
        let upstream = ChannelAddr::new(1, 3);
        for seq in [4u32, 1, 2, 7] {
            fs.push(consumer, upstream.task(seq), vec![batch(vec![seq as i64])]).unwrap();
        }
        // A slice from a different upstream channel must not appear.
        fs.push(consumer, ChannelAddr::new(1, 1).task(1), vec![]).unwrap();
        // A slice for a different consumer must not appear.
        fs.push(ChannelAddr::new(2, 1), upstream.task(3), vec![]).unwrap();

        let avail = fs.available_from(consumer, upstream, 2);
        assert_eq!(avail, vec![upstream.task(2), upstream.task(4), upstream.task(7)]);
        assert_eq!(fs.available_from(consumer, upstream, 8), vec![]);
    }

    #[test]
    fn clear_consumer_only_affects_that_channel() {
        let fs = FlightServer::new(0);
        let a = ChannelAddr::new(1, 0);
        let b = ChannelAddr::new(1, 1);
        fs.push(a, TaskName::new(0, 0, 0), vec![]).unwrap();
        fs.push(b, TaskName::new(0, 0, 0), vec![]).unwrap();
        fs.clear_consumer(a);
        assert!(!fs.has_slice(a, TaskName::new(0, 0, 0)));
        assert!(fs.has_slice(b, TaskName::new(0, 0, 0)));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn failure_drops_inbox_and_rejects_pushes() {
        let fs = FlightServer::new(5);
        let consumer = ChannelAddr::new(1, 0);
        fs.push(consumer, TaskName::new(0, 0, 0), vec![batch(vec![1])]).unwrap();
        fs.fail();
        assert!(fs.is_failed());
        assert!(fs.is_empty());
        assert!(matches!(
            fs.push(consumer, TaskName::new(0, 0, 1), vec![]),
            Err(QuokkaError::WorkerFailed(5))
        ));
        assert!(fs.peek(consumer, TaskName::new(0, 0, 0)).is_none());
        assert!(fs.available_from(consumer, ChannelAddr::new(0, 0), 0).is_empty());
    }
}
