/root/repo/target/debug/deps/serde-e5f9344fd468e2df.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e5f9344fd468e2df.rmeta: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
