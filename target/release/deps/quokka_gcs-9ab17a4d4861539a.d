/root/repo/target/release/deps/quokka_gcs-9ab17a4d4861539a.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/release/deps/libquokka_gcs-9ab17a4d4861539a.rlib: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/release/deps/libquokka_gcs-9ab17a4d4861539a.rmeta: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
