/root/repo/target/debug/deps/kernels-fa80d6b9a3160658.d: crates/bench/src/bin/kernels.rs

/root/repo/target/debug/deps/libkernels-fa80d6b9a3160658.rmeta: crates/bench/src/bin/kernels.rs

crates/bench/src/bin/kernels.rs:
