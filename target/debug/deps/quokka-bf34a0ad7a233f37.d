/root/repo/target/debug/deps/quokka-bf34a0ad7a233f37.d: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/libquokka-bf34a0ad7a233f37.rmeta: crates/quokka/src/lib.rs

crates/quokka/src/lib.rs:
