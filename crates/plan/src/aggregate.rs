//! Aggregate functions and their accumulators.

use crate::expr::Expr;
use quokka_batch::datatype::{DataType, ScalarValue};
use quokka_batch::Schema;
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeSet;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Avg,
    Min,
    Max,
    Count,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
}

/// One aggregate in an `Aggregate` plan node: a function applied to an input
/// expression, with an output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub expr: Expr,
    pub alias: String,
}

impl AggExpr {
    pub fn new(func: AggFunc, expr: Expr, alias: impl Into<String>) -> Self {
        AggExpr { func, expr, alias: alias.into() }
    }

    /// Output data type of this aggregate given the input schema.
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        Ok(match self.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int64,
            AggFunc::Sum => {
                let t = self.expr.data_type(input)?;
                if t == DataType::Int64 {
                    DataType::Int64
                } else {
                    DataType::Float64
                }
            }
            AggFunc::Avg => DataType::Float64,
            AggFunc::Min | AggFunc::Max => self.expr.data_type(input)?,
        })
    }
}

/// Convenience constructors mirroring SQL.
pub fn sum(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Sum, expr, alias)
}
pub fn avg(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Avg, expr, alias)
}
pub fn min(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Min, expr, alias)
}
pub fn max(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Max, expr, alias)
}
pub fn count(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Count, expr, alias)
}
pub fn count_distinct(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::CountDistinct, expr, alias)
}

/// Running state of one aggregate for one group.
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    Sum { total: f64, integer: bool, seen: bool },
    Avg { total: f64, count: u64 },
    Min(Option<ScalarValue>),
    Max(Option<ScalarValue>),
    Count(u64),
    CountDistinct(BTreeSet<String>),
}

impl Accumulator {
    pub fn new(func: AggFunc, input_type: DataType) -> Self {
        match func {
            AggFunc::Sum => {
                Accumulator::Sum { total: 0.0, integer: input_type == DataType::Int64, seen: false }
            }
            AggFunc::Avg => Accumulator::Avg { total: 0.0, count: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::CountDistinct => Accumulator::CountDistinct(BTreeSet::new()),
        }
    }

    /// Fold one value into the accumulator.
    pub fn update(&mut self, value: &ScalarValue) -> Result<()> {
        match self {
            Accumulator::Sum { total, seen, .. } => {
                *total += value.as_f64()?;
                *seen = true;
            }
            Accumulator::Avg { total, count } => {
                *total += value.as_f64()?;
                *count += 1;
            }
            Accumulator::Min(current) => {
                let replace = match current {
                    Some(c) => value.total_cmp(c) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *current = Some(value.clone());
                }
            }
            Accumulator::Max(current) => {
                let replace = match current {
                    Some(c) => value.total_cmp(c) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *current = Some(value.clone());
                }
            }
            Accumulator::Count(n) => *n += 1,
            Accumulator::CountDistinct(set) => {
                set.insert(value.to_string());
            }
        }
        Ok(())
    }

    /// Merge another accumulator of the same kind (partial aggregation).
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        match (self, other) {
            (Accumulator::Sum { total, seen, .. }, Accumulator::Sum { total: t2, seen: s2, .. }) => {
                *total += t2;
                *seen = *seen || *s2;
            }
            (Accumulator::Avg { total, count }, Accumulator::Avg { total: t2, count: c2 }) => {
                *total += t2;
                *count += c2;
            }
            (Accumulator::Min(a), Accumulator::Min(Some(b))) => {
                let replace = match a {
                    Some(c) => b.total_cmp(c) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *a = Some(b.clone());
                }
            }
            (Accumulator::Min(_), Accumulator::Min(None)) => {}
            (Accumulator::Max(a), Accumulator::Max(Some(b))) => {
                let replace = match a {
                    Some(c) => b.total_cmp(c) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *a = Some(b.clone());
                }
            }
            (Accumulator::Max(_), Accumulator::Max(None)) => {}
            (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (Accumulator::CountDistinct(a), Accumulator::CountDistinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (a, b) => {
                return Err(QuokkaError::internal(format!(
                    "cannot merge accumulators {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the final value.
    pub fn finalize(&self) -> ScalarValue {
        match self {
            Accumulator::Sum { total, integer, .. } => {
                if *integer {
                    ScalarValue::Int64(*total as i64)
                } else {
                    ScalarValue::Float64(*total)
                }
            }
            Accumulator::Avg { total, count } => {
                if *count == 0 {
                    ScalarValue::Float64(0.0)
                } else {
                    ScalarValue::Float64(total / *count as f64)
                }
            }
            Accumulator::Min(v) => v.clone().unwrap_or(ScalarValue::Float64(f64::NAN)),
            Accumulator::Max(v) => v.clone().unwrap_or(ScalarValue::Float64(f64::NAN)),
            Accumulator::Count(n) => ScalarValue::Int64(*n as i64),
            Accumulator::CountDistinct(set) => ScalarValue::Int64(set.len() as i64),
        }
    }

    /// Approximate in-memory footprint, used to size state checkpoints.
    pub fn state_bytes(&self) -> usize {
        match self {
            Accumulator::Sum { .. } => 16,
            Accumulator::Avg { .. } => 16,
            Accumulator::Min(v) | Accumulator::Max(v) => {
                16 + v.as_ref().map(|s| s.to_string().len()).unwrap_or(0)
            }
            Accumulator::Count(_) => 8,
            Accumulator::CountDistinct(set) => {
                16 + set.iter().map(|s| s.len() + 8).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    #[test]
    fn sum_int_and_float() {
        let mut int_sum = Accumulator::new(AggFunc::Sum, DataType::Int64);
        int_sum.update(&ScalarValue::Int64(3)).unwrap();
        int_sum.update(&ScalarValue::Int64(4)).unwrap();
        assert_eq!(int_sum.finalize(), ScalarValue::Int64(7));

        let mut float_sum = Accumulator::new(AggFunc::Sum, DataType::Float64);
        float_sum.update(&ScalarValue::Float64(1.5)).unwrap();
        float_sum.update(&ScalarValue::Float64(2.5)).unwrap();
        assert_eq!(float_sum.finalize(), ScalarValue::Float64(4.0));
    }

    #[test]
    fn avg_min_max_count() {
        let mut a = Accumulator::new(AggFunc::Avg, DataType::Float64);
        for v in [2.0, 4.0, 6.0] {
            a.update(&ScalarValue::Float64(v)).unwrap();
        }
        assert_eq!(a.finalize(), ScalarValue::Float64(4.0));

        let mut mn = Accumulator::new(AggFunc::Min, DataType::Utf8);
        let mut mx = Accumulator::new(AggFunc::Max, DataType::Utf8);
        for s in ["banana", "apple", "cherry"] {
            mn.update(&ScalarValue::from(s)).unwrap();
            mx.update(&ScalarValue::from(s)).unwrap();
        }
        assert_eq!(mn.finalize(), ScalarValue::from("apple"));
        assert_eq!(mx.finalize(), ScalarValue::from("cherry"));

        let mut c = Accumulator::new(AggFunc::Count, DataType::Int64);
        c.update(&ScalarValue::Int64(9)).unwrap();
        c.update(&ScalarValue::Int64(9)).unwrap();
        assert_eq!(c.finalize(), ScalarValue::Int64(2));
    }

    #[test]
    fn count_distinct_dedups() {
        let mut c = Accumulator::new(AggFunc::CountDistinct, DataType::Utf8);
        for s in ["a", "b", "a", "c", "b"] {
            c.update(&ScalarValue::from(s)).unwrap();
        }
        assert_eq!(c.finalize(), ScalarValue::Int64(3));
        assert!(c.state_bytes() > 16);
    }

    #[test]
    fn merge_partials() {
        let mut a = Accumulator::new(AggFunc::Avg, DataType::Float64);
        a.update(&ScalarValue::Float64(1.0)).unwrap();
        let mut b = Accumulator::new(AggFunc::Avg, DataType::Float64);
        b.update(&ScalarValue::Float64(3.0)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finalize(), ScalarValue::Float64(2.0));

        let mut m = Accumulator::new(AggFunc::Min, DataType::Int64);
        m.merge(&Accumulator::Min(Some(ScalarValue::Int64(5)))).unwrap();
        m.merge(&Accumulator::Min(None)).unwrap();
        assert_eq!(m.finalize(), ScalarValue::Int64(5));

        let mut bad = Accumulator::new(AggFunc::Count, DataType::Int64);
        assert!(bad.merge(&Accumulator::Min(None)).is_err());
    }

    #[test]
    fn agg_expr_output_types() {
        let schema = Schema::from_pairs(&[
            ("qty", DataType::Int64),
            ("price", DataType::Float64),
            ("name", DataType::Utf8),
        ]);
        assert_eq!(sum(col("qty"), "s").data_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(sum(col("price"), "s").data_type(&schema).unwrap(), DataType::Float64);
        assert_eq!(avg(col("qty"), "a").data_type(&schema).unwrap(), DataType::Float64);
        assert_eq!(count(col("name"), "c").data_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(min(col("name"), "m").data_type(&schema).unwrap(), DataType::Utf8);
        assert_eq!(max(col("qty"), "m").data_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(
            count_distinct(col("name"), "cd").data_type(&schema).unwrap(),
            DataType::Int64
        );
    }

    #[test]
    fn empty_group_finalizers() {
        assert_eq!(
            Accumulator::new(AggFunc::Count, DataType::Int64).finalize(),
            ScalarValue::Int64(0)
        );
        assert_eq!(
            Accumulator::new(AggFunc::Avg, DataType::Float64).finalize(),
            ScalarValue::Float64(0.0)
        );
        assert_eq!(
            Accumulator::new(AggFunc::Sum, DataType::Int64).finalize(),
            ScalarValue::Int64(0)
        );
    }
}
