/root/repo/target/debug/deps/quokka_bench-0b0b0b93a8cb22e9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/quokka_bench-0b0b0b93a8cb22e9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
