//! TPC-H queries 1 through 11.

use super::{customer, lineitem, nation, orders, part, partsupp, region, supplier};
use quokka_common::Result;
use quokka_plan::aggregate::{avg, count, min, sum};
use quokka_plan::expr::{col, date, lit, Expr};
use quokka_plan::logical::{JoinType, LogicalPlan, PlanBuilder};

/// `l_extendedprice * (1 - l_discount)` — the revenue expression used by
/// most queries.
fn revenue_expr() -> Expr {
    col("l_extendedprice").mul(lit(1.0f64).sub(col("l_discount")))
}

/// Q1: pricing summary report.
pub fn q1() -> Result<LogicalPlan> {
    lineitem()
        .filter(col("l_shipdate").lt_eq(date("1998-09-02")))
        .aggregate(
            vec![(col("l_returnflag"), "l_returnflag"), (col("l_linestatus"), "l_linestatus")],
            vec![
                sum(col("l_quantity"), "sum_qty"),
                sum(col("l_extendedprice"), "sum_base_price"),
                sum(revenue_expr(), "sum_disc_price"),
                sum(revenue_expr().mul(lit(1.0f64).add(col("l_tax"))), "sum_charge"),
                avg(col("l_quantity"), "avg_qty"),
                avg(col("l_extendedprice"), "avg_price"),
                avg(col("l_discount"), "avg_disc"),
                count(col("l_orderkey"), "count_order"),
            ],
        )
        .sort(vec![("l_returnflag", true), ("l_linestatus", true)])
        .build()
}

/// The supplier → nation → region chain restricted to one region, keeping
/// supplier and nation columns.
fn suppliers_in_region(region_name: &str) -> PlanBuilder {
    region()
        .filter(col("r_name").eq(lit(region_name)))
        .join(nation(), vec![("r_regionkey", "n_regionkey")], JoinType::Inner)
        .join(supplier(), vec![("n_nationkey", "s_nationkey")], JoinType::Inner)
}

/// Q2: minimum cost supplier.
pub fn q2() -> Result<LogicalPlan> {
    // Cost of every (part, European supplier) pair.
    let europe_costs = suppliers_in_region("EUROPE").join(
        partsupp(),
        vec![("s_suppkey", "ps_suppkey")],
        JoinType::Inner,
    );
    // Decorrelated scalar subquery: the minimum cost per part.
    let min_costs = europe_costs.clone().aggregate(
        vec![(col("ps_partkey"), "mc_partkey")],
        vec![min(col("ps_supplycost"), "min_cost")],
    );
    // Candidate parts.
    let parts = part().filter(col("p_size").eq(lit(15i64)).and(col("p_type").like("%BRASS")));
    let candidates = parts.join(europe_costs, vec![("p_partkey", "ps_partkey")], JoinType::Inner);
    min_costs
        .join(
            candidates,
            vec![("mc_partkey", "p_partkey"), ("min_cost", "ps_supplycost")],
            JoinType::Inner,
        )
        .project(vec![
            (col("s_acctbal"), "s_acctbal"),
            (col("s_name"), "s_name"),
            (col("n_name"), "n_name"),
            (col("p_partkey"), "p_partkey"),
            (col("p_mfgr"), "p_mfgr"),
            (col("s_address"), "s_address"),
            (col("s_phone"), "s_phone"),
            (col("s_comment"), "s_comment"),
        ])
        .sort_limit(
            vec![("s_acctbal", false), ("n_name", true), ("s_name", true), ("p_partkey", true)],
            100,
        )
        .build()
}

/// Q3: shipping priority.
pub fn q3() -> Result<LogicalPlan> {
    customer()
        .filter(col("c_mktsegment").eq(lit("BUILDING")))
        .join(
            orders().filter(col("o_orderdate").lt(date("1995-03-15"))),
            vec![("c_custkey", "o_custkey")],
            JoinType::Inner,
        )
        .join(
            lineitem().filter(col("l_shipdate").gt(date("1995-03-15"))),
            vec![("o_orderkey", "l_orderkey")],
            JoinType::Inner,
        )
        .aggregate(
            vec![
                (col("l_orderkey"), "l_orderkey"),
                (col("o_orderdate"), "o_orderdate"),
                (col("o_shippriority"), "o_shippriority"),
            ],
            vec![sum(revenue_expr(), "revenue")],
        )
        .sort_limit(vec![("revenue", false), ("o_orderdate", true)], 10)
        .build()
}

/// Q4: order priority checking.
pub fn q4() -> Result<LogicalPlan> {
    let late_lines = lineitem().filter(col("l_commitdate").lt(col("l_receiptdate")));
    let dated_orders = orders().filter(
        col("o_orderdate").gt_eq(date("1993-07-01")).and(col("o_orderdate").lt(date("1993-10-01"))),
    );
    late_lines
        .join(dated_orders, vec![("l_orderkey", "o_orderkey")], JoinType::Semi)
        .aggregate(
            vec![(col("o_orderpriority"), "o_orderpriority")],
            vec![count(col("o_orderkey"), "order_count")],
        )
        .sort(vec![("o_orderpriority", true)])
        .build()
}

/// Q5: local supplier volume.
pub fn q5() -> Result<LogicalPlan> {
    let asia_customers = region()
        .filter(col("r_name").eq(lit("ASIA")))
        .join(nation(), vec![("r_regionkey", "n_regionkey")], JoinType::Inner)
        .join(customer(), vec![("n_nationkey", "c_nationkey")], JoinType::Inner);
    let with_orders = asia_customers.join(
        orders().filter(
            col("o_orderdate")
                .gt_eq(date("1994-01-01"))
                .and(col("o_orderdate").lt(date("1995-01-01"))),
        ),
        vec![("c_custkey", "o_custkey")],
        JoinType::Inner,
    );
    let with_lines =
        with_orders.join(lineitem(), vec![("o_orderkey", "l_orderkey")], JoinType::Inner);
    supplier()
        .join(with_lines, vec![("s_suppkey", "l_suppkey")], JoinType::Inner)
        // The "local supplier" condition: supplier and customer share a nation.
        .filter(col("s_nationkey").eq(col("c_nationkey")))
        .aggregate(vec![(col("n_name"), "n_name")], vec![sum(revenue_expr(), "revenue")])
        .sort(vec![("revenue", false)])
        .build()
}

/// Q6: forecasting revenue change.
pub fn q6() -> Result<LogicalPlan> {
    lineitem()
        .filter(
            col("l_shipdate")
                .gt_eq(date("1994-01-01"))
                .and(col("l_shipdate").lt(date("1995-01-01")))
                .and(col("l_discount").gt_eq(lit(0.05f64)))
                .and(col("l_discount").lt_eq(lit(0.07f64)))
                .and(col("l_quantity").lt(lit(24.0f64))),
        )
        .aggregate(vec![], vec![sum(col("l_extendedprice").mul(col("l_discount")), "revenue")])
        .build()
}

/// Q7: volume shipping between two nations.
pub fn q7() -> Result<LogicalPlan> {
    let supplier_nations = nation()
        .project(vec![(col("n_nationkey"), "supp_nationkey"), (col("n_name"), "supp_nation")])
        .join(supplier(), vec![("supp_nationkey", "s_nationkey")], JoinType::Inner);
    let customer_nations = nation()
        .project(vec![(col("n_nationkey"), "cust_nationkey"), (col("n_name"), "cust_nation")])
        .join(customer(), vec![("cust_nationkey", "c_nationkey")], JoinType::Inner);
    let customer_orders =
        customer_nations.join(orders(), vec![("c_custkey", "o_custkey")], JoinType::Inner);
    let shipped_lines = lineitem().filter(
        col("l_shipdate")
            .gt_eq(date("1995-01-01"))
            .and(col("l_shipdate").lt_eq(date("1996-12-31"))),
    );
    let supplier_lines =
        supplier_nations.join(shipped_lines, vec![("s_suppkey", "l_suppkey")], JoinType::Inner);
    customer_orders
        .join(supplier_lines, vec![("o_orderkey", "l_orderkey")], JoinType::Inner)
        .filter(
            col("supp_nation").eq(lit("FRANCE")).and(col("cust_nation").eq(lit("GERMANY"))).or(
                col("supp_nation").eq(lit("GERMANY")).and(col("cust_nation").eq(lit("FRANCE"))),
            ),
        )
        .project(vec![
            (col("supp_nation"), "supp_nation"),
            (col("cust_nation"), "cust_nation"),
            (col("l_shipdate").year(), "l_year"),
            (revenue_expr(), "volume"),
        ])
        .aggregate(
            vec![
                (col("supp_nation"), "supp_nation"),
                (col("cust_nation"), "cust_nation"),
                (col("l_year"), "l_year"),
            ],
            vec![sum(col("volume"), "revenue")],
        )
        .sort(vec![("supp_nation", true), ("cust_nation", true), ("l_year", true)])
        .build()
}

/// Q8: national market share.
pub fn q8() -> Result<LogicalPlan> {
    // Customers in AMERICA with their orders in 1995-1996.
    let american_customers = region()
        .filter(col("r_name").eq(lit("AMERICA")))
        .join(nation(), vec![("r_regionkey", "n_regionkey")], JoinType::Inner)
        .project(vec![(col("n_nationkey"), "cust_nationkey")])
        .join(customer(), vec![("cust_nationkey", "c_nationkey")], JoinType::Inner);
    let american_orders = american_customers.join(
        orders().filter(
            col("o_orderdate")
                .gt_eq(date("1995-01-01"))
                .and(col("o_orderdate").lt_eq(date("1996-12-31"))),
        ),
        vec![("c_custkey", "o_custkey")],
        JoinType::Inner,
    );
    // Lines for the selected part type, with the supplier's nation attached.
    let part_lines = part().filter(col("p_type").eq(lit("ECONOMY ANODIZED STEEL"))).join(
        lineitem(),
        vec![("p_partkey", "l_partkey")],
        JoinType::Inner,
    );
    let supplier_nation_lines = nation()
        .project(vec![(col("n_nationkey"), "supp_nationkey"), (col("n_name"), "supp_nation")])
        .join(supplier(), vec![("supp_nationkey", "s_nationkey")], JoinType::Inner)
        .join(part_lines, vec![("s_suppkey", "l_suppkey")], JoinType::Inner);
    american_orders
        .join(supplier_nation_lines, vec![("o_orderkey", "l_orderkey")], JoinType::Inner)
        .project(vec![
            (col("o_orderdate").year(), "o_year"),
            (revenue_expr(), "volume"),
            (col("supp_nation"), "supp_nation"),
        ])
        .aggregate(
            vec![(col("o_year"), "o_year")],
            vec![
                sum(
                    Expr::case_when(
                        col("supp_nation").eq(lit("BRAZIL")),
                        col("volume"),
                        lit(0.0f64),
                    ),
                    "brazil_volume",
                ),
                sum(col("volume"), "total_volume"),
            ],
        )
        .project(vec![
            (col("o_year"), "o_year"),
            (col("brazil_volume").div(col("total_volume")), "mkt_share"),
        ])
        .sort(vec![("o_year", true)])
        .build()
}

/// Q9: product type profit measure.
pub fn q9() -> Result<LogicalPlan> {
    let green_part_lines = part().filter(col("p_name").like("%green%")).join(
        lineitem(),
        vec![("p_partkey", "l_partkey")],
        JoinType::Inner,
    );
    let with_partsupp = partsupp().join(
        green_part_lines,
        vec![("ps_partkey", "l_partkey"), ("ps_suppkey", "l_suppkey")],
        JoinType::Inner,
    );
    let with_supplier = nation()
        .join(supplier(), vec![("n_nationkey", "s_nationkey")], JoinType::Inner)
        .join(with_partsupp, vec![("s_suppkey", "l_suppkey")], JoinType::Inner);
    with_supplier
        .join(orders(), vec![("l_orderkey", "o_orderkey")], JoinType::Inner)
        .project(vec![
            (col("n_name"), "nation"),
            (col("o_orderdate").year(), "o_year"),
            (revenue_expr().sub(col("ps_supplycost").mul(col("l_quantity"))), "amount"),
        ])
        .aggregate(
            vec![(col("nation"), "nation"), (col("o_year"), "o_year")],
            vec![sum(col("amount"), "sum_profit")],
        )
        .sort(vec![("nation", true), ("o_year", false)])
        .build()
}

/// Q10: returned item reporting.
pub fn q10() -> Result<LogicalPlan> {
    nation()
        .join(customer(), vec![("n_nationkey", "c_nationkey")], JoinType::Inner)
        .join(
            orders().filter(
                col("o_orderdate")
                    .gt_eq(date("1993-10-01"))
                    .and(col("o_orderdate").lt(date("1994-01-01"))),
            ),
            vec![("c_custkey", "o_custkey")],
            JoinType::Inner,
        )
        .join(
            lineitem().filter(col("l_returnflag").eq(lit("R"))),
            vec![("o_orderkey", "l_orderkey")],
            JoinType::Inner,
        )
        .aggregate(
            vec![
                (col("c_custkey"), "c_custkey"),
                (col("c_name"), "c_name"),
                (col("c_acctbal"), "c_acctbal"),
                (col("c_phone"), "c_phone"),
                (col("n_name"), "n_name"),
                (col("c_address"), "c_address"),
                (col("c_comment"), "c_comment"),
            ],
            vec![sum(revenue_expr(), "revenue")],
        )
        .sort_limit(vec![("revenue", false)], 20)
        .build()
}

/// Q11: important stock identification.
pub fn q11() -> Result<LogicalPlan> {
    let german_stock = nation()
        .filter(col("n_name").eq(lit("GERMANY")))
        .join(supplier(), vec![("n_nationkey", "s_nationkey")], JoinType::Inner)
        .join(partsupp(), vec![("s_suppkey", "ps_suppkey")], JoinType::Inner);
    let per_part = german_stock
        .clone()
        .aggregate(
            vec![(col("ps_partkey"), "ps_partkey")],
            vec![sum(col("ps_supplycost").mul(col("ps_availqty")), "value")],
        )
        .project(vec![
            (col("ps_partkey"), "ps_partkey"),
            (col("value"), "value"),
            (lit(1i64), "jk_probe"),
        ]);
    // Decorrelated scalar subquery: the global threshold, attached to every
    // per-part row through a constant-key join.
    let threshold = german_stock
        .aggregate(vec![], vec![sum(col("ps_supplycost").mul(col("ps_availqty")), "total_value")])
        .project(vec![
            (col("total_value").mul(lit(0.0001f64)), "threshold"),
            (lit(1i64), "jk_build"),
        ]);
    threshold
        .join(per_part, vec![("jk_build", "jk_probe")], JoinType::Inner)
        .filter(col("value").gt(col("threshold")))
        .project(vec![(col("ps_partkey"), "ps_partkey"), (col("value"), "value")])
        .sort(vec![("value", false)])
        .build()
}
