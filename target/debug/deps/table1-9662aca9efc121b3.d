/root/repo/target/debug/deps/table1-9662aca9efc121b3.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-9662aca9efc121b3.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
