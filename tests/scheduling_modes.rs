//! Integration tests: scheduling-policy and execution-mode ablations (the
//! Fig. 7 / Fig. 8 axes) must never change query answers, only performance.

use quokka::{same_result, EngineConfig, QuokkaSession, SchedulePolicy};

fn session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).expect("generate TPC-H data")
}

#[test]
fn dynamic_and_static_batching_agree() {
    let session = session();
    for &q in &[3usize, 5, 12] {
        let plan = quokka::tpch::query(q).unwrap();
        let reference = session.run_reference(&plan).unwrap();
        for policy in [
            SchedulePolicy::dynamic(),
            SchedulePolicy::StaticBatch { batch: 2 },
            SchedulePolicy::StaticBatch { batch: 8 },
        ] {
            let config = EngineConfig::quokka(3).with_schedule(policy);
            let outcome = session.run_with(&plan, &config).unwrap();
            assert!(
                same_result(&reference, &outcome.batch),
                "Q{q} diverged under policy {policy:?}"
            );
        }
    }
}

#[test]
fn static_batching_still_processes_every_partition() {
    let session = session();
    let plan = quokka::tpch::query(6).unwrap();
    let reference = session.run_reference(&plan).unwrap();
    let config = EngineConfig::quokka(2).with_schedule(SchedulePolicy::StaticBatch { batch: 128 });
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&reference, &outcome.batch));
}

#[test]
fn batch_rows_do_not_change_answers() {
    let session = session();
    let plan = quokka::tpch::query(14).unwrap();
    let a = session.run_with(&plan, &EngineConfig::quokka(3).with_batch_rows(512)).unwrap();
    let b = session.run_with(&plan, &EngineConfig::quokka(3).with_batch_rows(8192)).unwrap();
    assert!(same_result(&a.batch, &b.batch));
}

#[test]
fn more_channels_than_workers_is_supported() {
    let session = session();
    let plan = quokka::tpch::query(4).unwrap();
    let reference = session.run_reference(&plan).unwrap();
    let config = EngineConfig::quokka(2).with_channels_per_stage(5);
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&reference, &outcome.batch));
}

#[test]
fn single_worker_cluster_works() {
    let session = session();
    let plan = quokka::tpch::query(1).unwrap();
    let reference = session.run_reference(&plan).unwrap();
    let outcome = session.run_with(&plan, &EngineConfig::quokka(1)).unwrap();
    assert!(same_result(&reference, &outcome.batch));
}
