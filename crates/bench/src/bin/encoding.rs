//! Encoding harness: encoded-column execution vs a decode-first baseline.
//!
//! The generator ships TPC-H tables with dictionary, bit-packed and
//! XOR-compressed columns. This harness measures (a) how much smaller each
//! column gets, per table, and (b) how much faster the hot operators run
//! when they consume the encoded representation directly instead of
//! decoding every batch to plain columns first — the strategy a
//! non-encoding-aware engine would be forced into.
//!
//! Three kernels are timed over the same batches, encoded vs decode-first:
//!
//! * `dict_group_by` — hash aggregation grouped on a dictionary string
//!   column (the per-Arc code->group LUT vs per-row string hashing).
//! * `dict_filter` — `l_shipmode = 'TRUCK'` (one comparison per dictionary
//!   entry vs one per row).
//! * `packed_join` — orders x lineitem on bit-packed integer keys.
//!
//! Results go to `BENCH_encoding.json`. The run **fails** (non-zero exit)
//! if grouping on the dictionary representation is not at least 2x faster
//! than the decode-first baseline — that speedup is the core claim of the
//! encoding-aware execution path.
//!
//! Run with: `cargo run --release -p quokka-bench --bin encoding`
//!
//! Environment knobs: `QUOKKA_SF` (default 0.01), `QUOKKA_BENCH_OUT`
//! (default `BENCH_encoding.json`).

use quokka::batch::compute::{self, CmpOp};
use quokka::batch::{Batch, Column, ScalarValue, Schema};
use quokka::plan::physical::{CoreOp, OperatorSpec};
use quokka::plan::{AggExpr, AggFunc, Catalog, Expr, JoinType};
use quokka::QuokkaSession;
use std::time::Instant;

/// Repetitions per kernel; the best (minimum) time is reported.
const REPS: usize = 5;

struct Kernel {
    name: &'static str,
    encoded_ms: f64,
    decode_first_ms: f64,
    rows: usize,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        if self.encoded_ms == 0.0 {
            f64::INFINITY
        } else {
            self.decode_first_ms / self.encoded_ms
        }
    }
}

struct ColumnStat {
    table: String,
    column: String,
    encoding: &'static str,
    plain_bytes: u64,
    encoded_bytes: u64,
}

impl ColumnStat {
    fn ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            1.0
        } else {
            self.plain_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Decode every column of every batch to its plain representation.
fn decode_all(batches: &[Batch]) -> Vec<Batch> {
    batches
        .iter()
        .map(|b| {
            Batch::try_new(
                b.schema().clone(),
                b.columns().iter().map(|c| c.decoded().into_owned()).collect(),
            )
            .expect("decoding preserves shape")
        })
        .collect()
}

/// Best-of-REPS wall time of `f`, in milliseconds.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Drive a fresh instance of `spec` over `inputs` (one `Vec<Batch>` per
/// operator input) and return the total output rows, so the optimizer
/// cannot discard the work.
fn drive(spec: &OperatorSpec, inputs: &[Vec<Batch>]) -> usize {
    let mut op = spec.instantiate().expect("instantiate operator");
    let mut rows = 0;
    for (input, batches) in inputs.iter().enumerate() {
        for batch in batches {
            rows += op
                .push(input, batch)
                .expect("push batch")
                .iter()
                .map(Batch::num_rows)
                .sum::<usize>();
        }
        rows += op
            .finish_input(input)
            .expect("finish input")
            .iter()
            .map(Batch::num_rows)
            .sum::<usize>();
    }
    rows + op.finish().expect("finish").iter().map(Batch::num_rows).sum::<usize>()
}

/// Project the named columns out of each batch.
fn project(batches: &[Batch], names: &[&str]) -> (Schema, Vec<Batch>) {
    let schema = batches[0].schema();
    let indices: Vec<usize> =
        names.iter().map(|n| schema.index_of(n).expect("known column")).collect();
    let projected: Vec<Batch> = batches.iter().map(|b| b.project(&indices)).collect();
    (projected[0].schema().clone(), projected)
}

fn main() {
    let scale_factor = env_f64("QUOKKA_SF", 0.01);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_encoding.json".to_string());

    eprintln!("[encoding] generating TPC-H data at SF {scale_factor} ...");
    let session = QuokkaSession::tpch(scale_factor, 4).expect("generate TPC-H data");
    let catalog = session.catalog();

    // ---- per-column compression ratios --------------------------------
    let mut stats = Vec::new();
    for table in catalog.table_names() {
        let batches = catalog.table_batches(&table).expect("table batches");
        if batches.is_empty() {
            continue;
        }
        let schema = batches[0].schema().clone();
        for (i, field) in schema.fields().iter().enumerate() {
            let plain: u64 = batches.iter().map(|b| b.column(i).byte_size() as u64).sum();
            let encoded: u64 = batches.iter().map(|b| b.column(i).memory_bytes() as u64).sum();
            stats.push(ColumnStat {
                table: table.clone(),
                column: field.name.clone(),
                encoding: batches[0].column(i).encoding_name(),
                plain_bytes: plain,
                encoded_bytes: encoded,
            });
        }
    }
    stats.sort_by(|a, b| b.ratio().partial_cmp(&a.ratio()).unwrap());
    eprintln!("[encoding] top compressed columns:");
    for s in stats.iter().filter(|s| s.ratio() > 1.01).take(12) {
        eprintln!(
            "  {:<10} {:<16} {:<8} {:>10} -> {:>9} B  ({:.2}x)",
            s.table,
            s.column,
            s.encoding,
            s.plain_bytes,
            s.encoded_bytes,
            s.ratio()
        );
    }

    // ---- kernel: dictionary group-by ----------------------------------
    let lineitem = catalog.table_batches("lineitem").expect("lineitem");
    let rows: usize = lineitem.iter().map(Batch::num_rows).sum();
    let (agg_schema, agg_encoded) = project(&lineitem, &["l_shipmode", "l_extendedprice"]);
    let agg_plain = decode_all(&agg_encoded);
    assert!(
        matches!(agg_encoded[0].column(0), Column::Dict(_)),
        "l_shipmode must arrive dictionary-encoded"
    );
    let agg_spec = OperatorSpec::new(CoreOp::HashAggregate {
        input_schema: agg_schema,
        group_by: vec![(Expr::Column("l_shipmode".into()), "l_shipmode".into())],
        aggregates: vec![AggExpr::new(
            AggFunc::Sum,
            Expr::Column("l_extendedprice".into()),
            "revenue",
        )],
    });
    let expected = drive(&agg_spec, std::slice::from_ref(&agg_plain));
    assert_eq!(
        expected,
        drive(&agg_spec, std::slice::from_ref(&agg_encoded)),
        "group-by results diverged"
    );
    let mut kernels = vec![Kernel {
        name: "dict_group_by",
        encoded_ms: time_ms(|| {
            drive(&agg_spec, std::slice::from_ref(&agg_encoded));
        }),
        decode_first_ms: time_ms(|| {
            drive(&agg_spec, &[decode_all(&agg_encoded)]);
        }),
        rows,
    }];

    // ---- kernel: dictionary filter ------------------------------------
    let truck = ScalarValue::Utf8("TRUCK".into());
    let dict_cols: Vec<&Column> = agg_encoded.iter().map(|b| b.column(0)).collect();
    let count_true = |col: &Column| match compute::compare_scalar(CmpOp::Eq, col, &truck) {
        Ok(Column::Bool(mask)) => mask.iter().filter(|&&m| m).count(),
        other => panic!("comparison produced {other:?}"),
    };
    let expected: usize = dict_cols.iter().map(|c| count_true(c)).sum();
    kernels.push(Kernel {
        name: "dict_filter",
        encoded_ms: time_ms(|| {
            let n: usize = dict_cols.iter().map(|c| count_true(c)).sum();
            assert_eq!(n, expected);
        }),
        decode_first_ms: time_ms(|| {
            let n: usize = dict_cols.iter().map(|c| count_true(c.decoded().as_ref())).sum();
            assert_eq!(n, expected);
        }),
        rows,
    });

    // ---- kernel: join on bit-packed keys ------------------------------
    let orders = catalog.table_batches("orders").expect("orders");
    let (build_schema, build_encoded) = project(&orders, &["o_orderkey", "o_orderpriority"]);
    let (probe_schema, probe_encoded) = project(&lineitem, &["l_orderkey", "l_extendedprice"]);
    assert!(
        matches!(build_encoded[0].column(0), Column::Packed(_)),
        "o_orderkey must arrive bit-packed"
    );
    let join_spec = OperatorSpec::new(CoreOp::HashJoin {
        build_schema,
        probe_schema,
        build_keys: vec![0],
        probe_keys: vec![0],
        join_type: JoinType::Inner,
    });
    let join_inputs = [build_encoded, probe_encoded];
    let join_plain = [decode_all(&join_inputs[0]), decode_all(&join_inputs[1])];
    let expected = drive(&join_spec, &join_plain);
    assert_eq!(expected, drive(&join_spec, &join_inputs), "join results diverged");
    kernels.push(Kernel {
        name: "packed_join",
        encoded_ms: time_ms(|| {
            drive(&join_spec, &join_inputs);
        }),
        decode_first_ms: time_ms(|| {
            drive(&join_spec, &[decode_all(&join_inputs[0]), decode_all(&join_inputs[1])]);
        }),
        rows,
    });

    for k in &kernels {
        eprintln!(
            "{:<14} encoded {:>8.3} ms   decode-first {:>8.3} ms   ({:.2}x)",
            k.name,
            k.encoded_ms,
            k.decode_first_ms,
            k.speedup()
        );
    }

    // ---- JSON output --------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale_factor\": {scale_factor},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"encoded_ms\": {:.3}, \
             \"decode_first_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            k.name,
            k.rows,
            k.encoded_ms,
            k.decode_first_ms,
            k.speedup(),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"columns\": [\n");
    let compressed: Vec<&ColumnStat> = stats.iter().filter(|s| s.ratio() > 1.01).collect();
    for (i, s) in compressed.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"table\": \"{}\", \"column\": \"{}\", \"encoding\": \"{}\", \
             \"plain_bytes\": {}, \"encoded_bytes\": {}, \"ratio\": {:.2}}}{}\n",
            s.table,
            s.column,
            s.encoding,
            s.plain_bytes,
            s.encoded_bytes,
            s.ratio(),
            if i + 1 < compressed.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    // Regression gate: grouping on dictionary codes must beat the
    // decode-first baseline by at least 2x.
    let group_by = kernels.iter().find(|k| k.name == "dict_group_by").expect("gated kernel ran");
    assert!(
        group_by.speedup() >= 2.0,
        "dict_group_by speedup {:.2}x is below the 2x gate \
         ({:.3} ms encoded vs {:.3} ms decode-first)",
        group_by.speedup(),
        group_by.encoded_ms,
        group_by.decode_first_ms
    );
    eprintln!("[encoding] gate passed: dict group-by >=2x over decode-first");
}
