/root/repo/target/debug/deps/quokka_gcs-6475ec3fd015eab1.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/libquokka_gcs-6475ec3fd015eab1.rlib: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/libquokka_gcs-6475ec3fd015eab1.rmeta: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
