/root/repo/target/debug/deps/quokka_engine-906d2472f6a2d016.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/quokka_engine-906d2472f6a2d016: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
