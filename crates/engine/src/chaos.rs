//! The chaos engine: applies a [`ChaosPlan`] to a running query.
//!
//! The coordinator polls [`ChaosEngine::poll`] once per heartbeat. Each
//! pending injection's trigger is evaluated against the engine's monotone
//! counters (input progress, committed tasks, recovery tasks), so a plan
//! fires at the same logical points on every run regardless of thread
//! scheduling. Side-effect events (suspicion, lost backups, dropped or
//! delayed pushes, stragglers) are applied directly to the shared
//! [`Services`]; kill events are returned to the coordinator, which owns the
//! recovery protocol.

use crate::worker::Services;
use quokka_common::chaos::{ChaosEvent, ChaosInjection, ChaosPlan, ChaosTrigger};
use quokka_common::ids::WorkerId;
use std::time::Duration;

/// Injects the faults of a chaos plan at their trigger points.
pub struct ChaosEngine {
    pending: Vec<ChaosInjection>,
}

impl ChaosEngine {
    /// Build the engine from a query's configuration: the legacy
    /// `FailureSpec` list is folded into chaos injections so the engine has
    /// exactly one injection path, then the configured [`ChaosPlan`] is
    /// appended.
    pub fn new(services: &Services) -> Self {
        let mut plan = ChaosPlan::from_failures(&services.config.failures);
        plan.injections.extend(services.config.chaos.injections.iter().copied());
        ChaosEngine { pending: plan.injections }
    }

    /// Whether every injection has fired.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Evaluate every pending trigger against the current counters. Events
    /// that only degrade the run are applied immediately; the workers whose
    /// kill events fired are returned for the coordinator to kill and
    /// recover (in plan order).
    pub fn poll(&mut self, services: &Services, progress: f64) -> Vec<WorkerId> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let snap = services.metrics.snapshot(Duration::ZERO);
        let mut kills = Vec::new();
        let mut remaining = Vec::with_capacity(self.pending.len());
        for injection in self.pending.drain(..) {
            let fired = match injection.at {
                ChaosTrigger::Progress(fraction) => progress >= fraction,
                ChaosTrigger::TaskCommits(n) => snap.tasks_executed >= n,
                ChaosTrigger::RecoveryTasks(n) => snap.recovery_tasks >= n,
            };
            if !fired {
                remaining.push(injection);
                continue;
            }
            services.metrics.add_chaos_event();
            match injection.event {
                ChaosEvent::KillWorker { worker } => {
                    if worker < services.layout.workers() && !services.is_killed(worker) {
                        kills.push(worker);
                    }
                }
                ChaosEvent::SuspectWorker { worker } => {
                    if worker < services.layout.workers() && !services.is_killed(worker) {
                        services.suppress_heartbeats(worker, true);
                    }
                }
                ChaosEvent::LoseBackups { worker } => {
                    if worker < services.layout.workers() && !services.is_killed(worker) {
                        services.backups[worker as usize].lose_contents();
                    }
                }
                ChaosEvent::DropPushes { destination, count } => {
                    services.plane.inject_drop_pushes(destination, count);
                }
                ChaosEvent::DelayPushes { destination, count, delay } => {
                    services.plane.inject_delay_pushes(destination, count, delay);
                }
                ChaosEvent::Straggler { worker, count, delay } => {
                    if worker < services.layout.workers() && !services.is_killed(worker) {
                        services.set_straggler(worker, count, delay);
                    }
                }
            }
        }
        self.pending = remaining;
        kills
    }
}
