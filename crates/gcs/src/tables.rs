//! Typed views over the GCS key space.
//!
//! The paper's GCS (§IV-B) is "the single source of truth for the execution
//! state of the entire system". The key spaces used here mirror what the
//! paper describes:
//!
//! | prefix       | contents                                                        |
//! |--------------|-----------------------------------------------------------------|
//! | `lineage/`   | committed lineage records, `G.L` in Algorithms 1 and 2           |
//! | `task/`      | outstanding tasks (one per channel), `G.T`                        |
//! | `chan/`      | channel registry: worker placement, watermarks, completion       |
//! | `part/`      | partition directory: which outputs exist on which machines       |
//! | `replay/`    | replay requests created by the recovery coordinator               |
//! | `ctrl/`      | control flags: pause barrier, failed workers, query completion    |
//!
//! Values are encoded as compact ASCII strings (the store is Redis-like, and
//! keeping the encoding printable makes the GCS easy to dump when debugging
//! a recovery). The encoded size of the lineage records is what the
//! `lineage_bytes` metric measures — the paper's point is that this stays in
//! the KB range for an entire query.

use crate::kv::KvStore;
use bytes::Bytes;
use quokka_common::ids::{ChannelAddr, SeqNo, TaskName, WorkerId};
use quokka_common::{QuokkaError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What a task consumed — the lineage proper (§III-A).
///
/// Thanks to the naming scheme, a consumer task's lineage is just "the next
/// `count` outputs of upstream channel `(stage, channel)` starting at
/// `start_seq`", and an input-reader task's lineage is the list of input
/// splits it read. Either fits in a few bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageSource {
    /// Consumed `count` outputs of `upstream`, beginning at `start_seq`.
    Upstream { upstream: ChannelAddr, start_seq: SeqNo, count: u32 },
    /// Read these input splits of the source table.
    InputSplits { splits: Vec<u64> },
    /// A finalize task that consumed nothing new (e.g. an aggregation
    /// emitting its state once every upstream channel finished).
    Finalize,
}

/// A committed lineage record for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageRecord {
    pub task: TaskName,
    pub source: LineageSource,
    /// Operator input indices whose end-of-stream notification fired during
    /// this task. Recording this makes replay deterministic: a rewound
    /// channel fires the notifications at exactly the same task boundaries
    /// as the original execution, so re-generated output partitions are
    /// identical to the originals.
    pub finished_inputs: Vec<u32>,
    /// Whether this task finalized the channel (emitted the operator's final
    /// output and marked the channel done).
    pub finalize: bool,
    /// Rows in the task's output partition (diagnostics only).
    pub output_rows: u64,
    /// Encoded bytes of the task's output partition (diagnostics only).
    pub output_bytes: u64,
}

impl LineageRecord {
    fn encode(&self) -> String {
        let src = match &self.source {
            LineageSource::Upstream { upstream, start_seq, count } => {
                format!("U {} {} {} {}", upstream.stage, upstream.channel, start_seq, count)
            }
            LineageSource::InputSplits { splits } => {
                let list: Vec<String> = splits.iter().map(u64::to_string).collect();
                format!("I {}", list.join(","))
            }
            LineageSource::Finalize => "F".to_string(),
        };
        let finished: Vec<String> = self.finished_inputs.iter().map(u32::to_string).collect();
        format!(
            "{};{};{};{};{}",
            src,
            finished.join(","),
            self.finalize as u8,
            self.output_rows,
            self.output_bytes
        )
    }

    fn decode(task: TaskName, data: &str) -> Result<Self> {
        let parts: Vec<&str> = data.split(';').collect();
        if parts.len() != 5 {
            return Err(QuokkaError::Storage(format!("malformed lineage record: {data}")));
        }
        let src_tokens: Vec<&str> = parts[0].split(' ').collect();
        let source = match src_tokens[0] {
            "U" => {
                if src_tokens.len() != 5 {
                    return Err(QuokkaError::Storage(format!("malformed lineage source: {data}")));
                }
                LineageSource::Upstream {
                    upstream: ChannelAddr::new(parse(src_tokens[1])?, parse(src_tokens[2])?),
                    start_seq: parse(src_tokens[3])?,
                    count: parse(src_tokens[4])?,
                }
            }
            "I" => {
                let splits = if src_tokens.len() < 2 || src_tokens[1].is_empty() {
                    Vec::new()
                } else {
                    src_tokens[1]
                        .split(',')
                        .map(|s| s.parse::<u64>().map_err(|_| bad_num(s)))
                        .collect::<Result<Vec<u64>>>()?
                };
                LineageSource::InputSplits { splits }
            }
            "F" => LineageSource::Finalize,
            other => return Err(QuokkaError::Storage(format!("unknown lineage tag {other}"))),
        };
        let finished_inputs: Vec<u32> = if parts[1].is_empty() {
            Vec::new()
        } else {
            parts[1]
                .split(',')
                .map(|s| s.parse::<u32>().map_err(|_| bad_num(s)))
                .collect::<Result<_>>()?
        };
        Ok(LineageRecord {
            task,
            source,
            finished_inputs,
            finalize: parts[2] == "1",
            output_rows: parts[3].parse().map_err(|_| bad_num(parts[3]))?,
            output_bytes: parts[4].parse().map_err(|_| bad_num(parts[4]))?,
        })
    }
}

fn bad_num(s: &str) -> QuokkaError {
    QuokkaError::Storage(format!("malformed number '{s}' in GCS record"))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T> {
    s.parse::<T>().map_err(|_| bad_num(s))
}

/// Registry entry for one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelState {
    pub addr: ChannelAddr,
    /// Worker currently hosting this channel.
    pub worker: WorkerId,
    /// Sequence number of the last committed task, or `None` if no task of
    /// this channel has committed yet.
    pub committed_seq: Option<SeqNo>,
    /// For every upstream channel (in the order given by the stage graph),
    /// how many of its outputs this channel has consumed — the watermark
    /// vector of §III-A.
    pub consumed: Vec<u32>,
    /// For input-reader channels: how many of its assigned splits have been
    /// consumed.
    pub splits_consumed: u32,
    /// Set once the channel has produced its final output.
    pub done: bool,
    /// When `Some(upto)`, the channel is being rewound by the recovery
    /// coordinator: tasks with `seq <= upto` must follow the logged lineage
    /// exactly instead of choosing inputs dynamically.
    pub rewind_until: Option<SeqNo>,
}

impl ChannelState {
    /// A fresh channel hosted on `worker` with `upstream_count` upstream
    /// channels feeding it.
    pub fn new(addr: ChannelAddr, worker: WorkerId, upstream_count: usize) -> Self {
        ChannelState {
            addr,
            worker,
            committed_seq: None,
            consumed: vec![0; upstream_count],
            splits_consumed: 0,
            done: false,
            rewind_until: None,
        }
    }

    /// Sequence number of the next task to run in this channel.
    pub fn next_seq(&self) -> SeqNo {
        self.committed_seq.map(|s| s + 1).unwrap_or(0)
    }

    /// Number of output partitions this channel has produced so far.
    pub fn outputs_produced(&self) -> u32 {
        self.committed_seq.map(|s| s + 1).unwrap_or(0)
    }

    fn encode(&self) -> String {
        let consumed: Vec<String> = self.consumed.iter().map(u32::to_string).collect();
        format!(
            "{} {} {} {} {} {} {}",
            self.worker,
            self.committed_seq.map(|s| s as i64).unwrap_or(-1),
            consumed.join(","),
            self.splits_consumed,
            self.done as u8,
            self.rewind_until.map(|s| s as i64).unwrap_or(-1),
            self.consumed.len(),
        )
    }

    fn decode(addr: ChannelAddr, data: &str) -> Result<Self> {
        let t: Vec<&str> = data.split(' ').collect();
        if t.len() != 7 {
            return Err(QuokkaError::Storage(format!("malformed channel state: {data}")));
        }
        let committed: i64 = parse(t[1])?;
        let upstreams: usize = parse(t[6])?;
        let consumed: Vec<u32> = if upstreams == 0 || t[2].is_empty() {
            vec![0; upstreams]
        } else {
            t[2].split(',')
                .map(|s| s.parse::<u32>().map_err(|_| bad_num(s)))
                .collect::<Result<_>>()?
        };
        let rewind: i64 = parse(t[5])?;
        Ok(ChannelState {
            addr,
            worker: parse(t[0])?,
            committed_seq: if committed < 0 { None } else { Some(committed as SeqNo) },
            consumed,
            splits_consumed: parse(t[3])?,
            done: t[4] == "1",
            rewind_until: if rewind < 0 { None } else { Some(rewind as SeqNo) },
        })
    }
}

/// An outstanding task (`G.T`). There is at most one per channel because
/// tasks within a channel execute sequentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEntry {
    pub task: TaskName,
    /// Worker the task is assigned to (the worker hosting its channel).
    pub worker: WorkerId,
}

impl TaskEntry {
    fn encode(&self) -> String {
        format!("{} {}", self.task.seq, self.worker)
    }
    fn decode(addr: ChannelAddr, data: &str) -> Result<Self> {
        let t: Vec<&str> = data.split(' ').collect();
        if t.len() != 2 {
            return Err(QuokkaError::Storage(format!("malformed task entry: {data}")));
        }
        Ok(TaskEntry { task: addr.task(parse(t[0])?), worker: parse(t[1])? })
    }
}

/// Directory entry describing where one output partition lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEntry {
    /// The producer task (partitions share their producer's name).
    pub name: TaskName,
    /// Worker that produced the partition and holds its upstream backup.
    pub owner: WorkerId,
    /// Whether the owner's local disk holds a backup copy.
    pub backed_up: bool,
    /// Whether a durable copy exists in the object store (spooling mode).
    pub spooled: bool,
    /// Encoded size in bytes (all consumers' slices combined).
    pub bytes: u64,
}

impl PartitionEntry {
    fn encode(&self) -> String {
        format!("{} {} {} {}", self.owner, self.backed_up as u8, self.spooled as u8, self.bytes)
    }
    fn decode(name: TaskName, data: &str) -> Result<Self> {
        let t: Vec<&str> = data.split(' ').collect();
        if t.len() != 4 {
            return Err(QuokkaError::Storage(format!("malformed partition entry: {data}")));
        }
        Ok(PartitionEntry {
            name,
            owner: parse(t[0])?,
            backed_up: t[1] == "1",
            spooled: t[2] == "1",
            bytes: parse(t[3])?,
        })
    }
}

/// A replay request: `owner` should re-push its backed-up slice of partition
/// `partition` destined for `consumer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRequest {
    pub owner: WorkerId,
    pub partition: TaskName,
    pub consumer: ChannelAddr,
    /// Delivery attempts already charged against this request. A worker
    /// that re-queues a failed replay increments this; once the bounded
    /// retry budget is spent the query fails with a typed error instead of
    /// spinning until the watchdog fires.
    pub attempts: u32,
}

impl ReplayRequest {
    pub fn new(owner: WorkerId, partition: TaskName, consumer: ChannelAddr) -> Self {
        ReplayRequest { owner, partition, consumer, attempts: 0 }
    }
}

/// Everything the Algorithm-1 commit writes in a single transaction: the
/// lineage record, the partition directory entry, the updated channel state,
/// and the removal/insertion of entries in the task table.
#[derive(Debug, Clone)]
pub struct TaskCommit {
    /// Worker performing the commit; the transaction aborts if this worker
    /// has been declared failed (a dead machine cannot write to Redis).
    pub worker: WorkerId,
    pub lineage: LineageRecord,
    pub partition: PartitionEntry,
    pub channel_state: ChannelState,
    /// The channel state the task's inputs were chosen from. When `Some`,
    /// the transaction aborts unless the stored channel state still equals
    /// it — a compare-and-swap that makes a commit racing with a concurrent
    /// reconciliation (recovery rewinding or reassigning this channel
    /// between the worker's ownership check and its commit) abort instead
    /// of clobbering the coordinator's writes.
    pub prev_channel: Option<ChannelState>,
    /// The next task to enqueue for this channel, or `None` if the channel
    /// is done.
    pub next_task: Option<TaskEntry>,
}

// ---------------------------------------------------------------------------
// Key construction
// ---------------------------------------------------------------------------

fn lineage_key(t: TaskName) -> String {
    format!("lineage/{:08}/{:08}/{:08}", t.stage, t.channel, t.seq)
}
fn lineage_prefix(ch: ChannelAddr) -> String {
    format!("lineage/{:08}/{:08}/", ch.stage, ch.channel)
}
fn chan_key(ch: ChannelAddr) -> String {
    format!("chan/{:08}/{:08}", ch.stage, ch.channel)
}
fn task_key(ch: ChannelAddr) -> String {
    format!("task/{:08}/{:08}", ch.stage, ch.channel)
}
fn part_key(t: TaskName) -> String {
    format!("part/{:08}/{:08}/{:08}", t.stage, t.channel, t.seq)
}
fn replay_key(r: &ReplayRequest) -> String {
    format!(
        "replay/{:08}/{:08}/{:08}/{:08}/{:08}/{:08}",
        r.owner,
        r.partition.stage,
        r.partition.channel,
        r.partition.seq,
        r.consumer.stage,
        r.consumer.channel
    )
}

fn parse_task_from_key(key: &str, prefix: &str) -> Result<TaskName> {
    let rest = &key[prefix.len()..];
    let parts: Vec<&str> = rest.split('/').collect();
    if parts.len() != 3 {
        return Err(QuokkaError::Storage(format!("malformed key {key}")));
    }
    Ok(TaskName::new(parse(parts[0])?, parse(parts[1])?, parse(parts[2])?))
}

fn parse_channel_from_key(key: &str, prefix: &str) -> Result<ChannelAddr> {
    let rest = &key[prefix.len()..];
    let parts: Vec<&str> = rest.split('/').collect();
    if parts.len() != 2 {
        return Err(QuokkaError::Storage(format!("malformed key {key}")));
    }
    Ok(ChannelAddr::new(parse(parts[0])?, parse(parts[1])?))
}

// ---------------------------------------------------------------------------
// The GCS facade
// ---------------------------------------------------------------------------

/// The Global Control Store used by TaskManagers and the coordinator.
#[derive(Debug)]
pub struct Gcs {
    kv: KvStore,
    lineage_bytes: AtomicU64,
}

impl Default for Gcs {
    fn default() -> Self {
        Self::new(Duration::ZERO)
    }
}

impl Gcs {
    /// Create a GCS whose every operation costs `op_latency` (use zero in
    /// tests).
    pub fn new(op_latency: Duration) -> Self {
        Gcs { kv: KvStore::new(op_latency), lineage_bytes: AtomicU64::new(0) }
    }

    /// Wrap an existing KV store — how worker processes build their GCS view
    /// over a [`KvStore::remote`] proxy in process mode.
    pub fn with_kv(kv: KvStore) -> Self {
        Gcs { kv, lineage_bytes: AtomicU64::new(0) }
    }

    /// Access to the raw KV store (used by tests and diagnostics).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Bytes of lineage committed so far.
    pub fn lineage_bytes(&self) -> u64 {
        self.lineage_bytes.load(Ordering::Relaxed)
    }

    /// Committed GCS transactions so far.
    pub fn transactions(&self) -> u64 {
        self.kv.committed_transactions()
    }

    /// Remove all state (used when a cluster object is reused for another
    /// query).
    pub fn clear(&self) {
        self.kv.clear();
        self.lineage_bytes.store(0, Ordering::Relaxed);
    }

    // -- lineage table ------------------------------------------------------

    /// Whether the lineage of `task`'s output has been committed — the test
    /// at the heart of Algorithm 1 ("tasks consume only objects with
    /// committed lineage").
    pub fn lineage_committed(&self, task: TaskName) -> bool {
        self.kv.contains(&lineage_key(task))
    }

    /// Fetch one lineage record.
    pub fn get_lineage(&self, task: TaskName) -> Option<LineageRecord> {
        self.kv
            .get_value(&lineage_key(task))
            .and_then(|v| LineageRecord::decode(task, std::str::from_utf8(&v).ok()?).ok())
    }

    /// All committed lineage records of one channel, in sequence order.
    pub fn channel_lineage(&self, ch: ChannelAddr) -> Vec<LineageRecord> {
        let prefix = lineage_prefix(ch);
        self.kv
            .scan_prefix(&prefix)
            .into_iter()
            .filter_map(|(k, v)| {
                let task = parse_task_from_key(&k, "lineage/").ok()?;
                LineageRecord::decode(task, std::str::from_utf8(&v).ok()?).ok()
            })
            .collect()
    }

    /// Directly insert a lineage record outside a task commit (used by tests
    /// and by the recovery planner when reconstructing state).
    pub fn put_lineage(&self, record: &LineageRecord) {
        let encoded = record.encode();
        self.lineage_bytes.fetch_add(encoded.len() as u64, Ordering::Relaxed);
        self.kv.put(lineage_key(record.task), Bytes::from(encoded));
    }

    // -- channel registry ---------------------------------------------------

    pub fn put_channel(&self, state: &ChannelState) {
        self.kv.put(chan_key(state.addr), Bytes::from(state.encode()));
    }

    pub fn get_channel(&self, addr: ChannelAddr) -> Option<ChannelState> {
        self.kv
            .get_value(&chan_key(addr))
            .and_then(|v| ChannelState::decode(addr, std::str::from_utf8(&v).ok()?).ok())
    }

    /// Every registered channel.
    pub fn all_channels(&self) -> Vec<ChannelState> {
        self.kv
            .scan_prefix("chan/")
            .into_iter()
            .filter_map(|(k, v)| {
                let addr = parse_channel_from_key(&k, "chan/").ok()?;
                ChannelState::decode(addr, std::str::from_utf8(&v).ok()?).ok()
            })
            .collect()
    }

    // -- task table ---------------------------------------------------------

    pub fn put_task(&self, entry: &TaskEntry) {
        self.kv.put(task_key(entry.task.channel_addr()), Bytes::from(entry.encode()));
    }

    pub fn get_task(&self, ch: ChannelAddr) -> Option<TaskEntry> {
        self.kv
            .get_value(&task_key(ch))
            .and_then(|v| TaskEntry::decode(ch, std::str::from_utf8(&v).ok()?).ok())
    }

    pub fn remove_task(&self, ch: ChannelAddr) {
        self.kv.delete(&task_key(ch));
    }

    /// Every outstanding task, across all channels.
    pub fn all_tasks(&self) -> Vec<TaskEntry> {
        self.kv
            .scan_prefix("task/")
            .into_iter()
            .filter_map(|(k, v)| {
                let addr = parse_channel_from_key(&k, "task/").ok()?;
                TaskEntry::decode(addr, std::str::from_utf8(&v).ok()?).ok()
            })
            .collect()
    }

    /// Outstanding tasks assigned to one worker — the set `A` of Algorithm 2.
    pub fn tasks_on_worker(&self, worker: WorkerId) -> Vec<TaskEntry> {
        self.all_tasks().into_iter().filter(|t| t.worker == worker).collect()
    }

    // -- partition directory -------------------------------------------------

    pub fn put_partition(&self, entry: &PartitionEntry) {
        self.kv.put(part_key(entry.name), Bytes::from(entry.encode()));
    }

    pub fn get_partition(&self, name: TaskName) -> Option<PartitionEntry> {
        self.kv
            .get_value(&part_key(name))
            .and_then(|v| PartitionEntry::decode(name, std::str::from_utf8(&v).ok()?).ok())
    }

    /// Every partition entry in the directory.
    pub fn all_partitions(&self) -> Vec<PartitionEntry> {
        self.kv
            .scan_prefix("part/")
            .into_iter()
            .filter_map(|(k, v)| {
                let name = parse_task_from_key(&k, "part/").ok()?;
                PartitionEntry::decode(name, std::str::from_utf8(&v).ok()?).ok()
            })
            .collect()
    }

    // -- replay requests ------------------------------------------------------

    /// Enqueue a replay request (recovery coordinator → owner worker). The
    /// attempt count lives in the *value* so a re-queue of the same request
    /// (same key) overwrites rather than duplicates.
    pub fn add_replay(&self, request: &ReplayRequest) {
        self.kv.put(replay_key(request), Bytes::from(request.attempts.to_string()));
    }

    /// Replay requests assigned to `worker`.
    pub fn replays_for_worker(&self, worker: WorkerId) -> Vec<ReplayRequest> {
        let prefix = format!("replay/{worker:08}/");
        self.kv
            .scan_prefix(&prefix)
            .into_iter()
            .filter_map(|(k, v)| {
                let rest = &k[prefix.len()..];
                let p: Vec<&str> = rest.split('/').collect();
                if p.len() != 5 {
                    return None;
                }
                Some(ReplayRequest {
                    owner: worker,
                    partition: TaskName::new(
                        p[0].parse().ok()?,
                        p[1].parse().ok()?,
                        p[2].parse().ok()?,
                    ),
                    consumer: ChannelAddr::new(p[3].parse().ok()?, p[4].parse().ok()?),
                    attempts: std::str::from_utf8(&v)
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0),
                })
            })
            .collect()
    }

    /// Remove a completed replay request. Returns whether it was present —
    /// workers use this as an atomic claim so two threads of the same worker
    /// never replay the same request twice.
    pub fn remove_replay(&self, request: &ReplayRequest) -> bool {
        self.kv.delete(&replay_key(request))
    }

    // -- control flags --------------------------------------------------------

    /// Raise or clear the recovery barrier. While raised, TaskManagers abort
    /// their current work and wait, giving the coordinator exclusive
    /// read-write access to the GCS (§IV-B).
    pub fn set_paused(&self, paused: bool) {
        if paused {
            self.kv.put("ctrl/pause", Bytes::from_static(b"1"));
        } else {
            self.kv.delete("ctrl/pause");
        }
    }

    pub fn is_paused(&self) -> bool {
        self.kv.contains("ctrl/pause")
    }

    /// Record that a worker has failed.
    pub fn mark_worker_failed(&self, worker: WorkerId) {
        self.kv.put(format!("ctrl/failed/{worker:08}"), Bytes::from_static(b"1"));
    }

    pub fn is_worker_failed(&self, worker: WorkerId) -> bool {
        self.kv.contains(&format!("ctrl/failed/{worker:08}"))
    }

    pub fn failed_workers(&self) -> Vec<WorkerId> {
        self.kv
            .scan_prefix("ctrl/failed/")
            .into_iter()
            .filter_map(|(k, _)| k["ctrl/failed/".len()..].parse().ok())
            .collect()
    }

    /// Mark the whole query as finished (all sink channels done).
    pub fn set_query_done(&self) {
        self.kv.put("ctrl/done", Bytes::from_static(b"1"));
    }

    pub fn is_query_done(&self) -> bool {
        self.kv.contains("ctrl/done")
    }

    /// Record a fatal query error; workers stop when they observe it.
    pub fn set_query_error(&self, message: &str) {
        self.kv.put("ctrl/error", Bytes::from(message.to_string()));
    }

    pub fn query_error(&self) -> Option<String> {
        self.kv.get_value("ctrl/error").map(|v| String::from_utf8_lossy(&v).into_owned())
    }

    /// Flag a committed output partition whose backing bytes turned out to
    /// be unreadable (chaos-wiped backup store, for example). The recovery
    /// coordinator polls these and rewinds the producing channel so the
    /// partition is regenerated from lineage.
    pub fn mark_partition_lost(&self, partition: TaskName) {
        self.kv.put(
            format!(
                "ctrl/lost/{:08}/{:08}/{:08}",
                partition.stage, partition.channel, partition.seq
            ),
            Bytes::from_static(b"1"),
        );
    }

    /// Drain and return all partitions currently flagged as lost.
    pub fn take_lost_partitions(&self) -> Vec<TaskName> {
        let lost: Vec<TaskName> = self
            .kv
            .scan_prefix("ctrl/lost/")
            .into_iter()
            .filter_map(|(k, _)| parse_task_from_key(&k, "ctrl/lost/").ok())
            .collect();
        for p in &lost {
            self.kv.delete(&format!("ctrl/lost/{:08}/{:08}/{:08}", p.stage, p.channel, p.seq));
        }
        lost
    }

    // -- the Algorithm-1 commit ----------------------------------------------

    /// Atomically commit a finished task: write its lineage, register its
    /// output partition, update the channel state (watermarks, committed
    /// sequence number, done flag) and replace the channel's outstanding
    /// task with the next one. The transaction aborts if the recovery
    /// barrier is raised or the committing worker has been marked failed.
    pub fn commit_task(&self, commit: &TaskCommit) -> Result<()> {
        let lineage_encoded = commit.lineage.encode();
        let lineage_len = lineage_encoded.len() as u64;
        let channel = commit.channel_state.addr;
        self.kv.with_transaction(0, |txn| {
            if txn.get("ctrl/pause").is_some() {
                return Err(QuokkaError::TransactionAborted(
                    "recovery barrier is raised".to_string(),
                ));
            }
            if txn.get(&format!("ctrl/failed/{:08}", commit.worker)).is_some() {
                return Err(QuokkaError::TransactionAborted(format!(
                    "worker {} has been marked failed",
                    commit.worker
                )));
            }
            if let Some(prev) = &commit.prev_channel {
                let stored = txn.get(&chan_key(channel));
                if stored.as_deref() != Some(prev.encode().as_bytes()) {
                    return Err(QuokkaError::TransactionAborted(format!(
                        "channel {channel} was reconciled since the task started",
                    )));
                }
            }
            txn.put(lineage_key(commit.lineage.task), Bytes::from(lineage_encoded.clone()));
            txn.put(part_key(commit.partition.name), Bytes::from(commit.partition.encode()));
            txn.put(chan_key(channel), Bytes::from(commit.channel_state.encode()));
            match &commit.next_task {
                Some(next) => txn.put(task_key(channel), Bytes::from(next.encode())),
                None => txn.delete(task_key(channel)),
            }
            Ok(())
        })?;
        self.lineage_bytes.fetch_add(lineage_len, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineage(task: TaskName) -> LineageRecord {
        LineageRecord {
            task,
            source: LineageSource::Upstream {
                upstream: ChannelAddr::new(0, 2),
                start_seq: 3,
                count: 4,
            },
            finished_inputs: vec![0],
            finalize: false,
            output_rows: 100,
            output_bytes: 2048,
        }
    }

    #[test]
    fn lineage_record_roundtrip() {
        let t = TaskName::new(1, 2, 3);
        for source in [
            LineageSource::Upstream { upstream: ChannelAddr::new(0, 1), start_seq: 0, count: 7 },
            LineageSource::InputSplits { splits: vec![4, 9, 11] },
            LineageSource::InputSplits { splits: vec![] },
            LineageSource::Finalize,
        ] {
            let rec = LineageRecord {
                task: t,
                source,
                finished_inputs: vec![1, 0],
                finalize: true,
                output_rows: 5,
                output_bytes: 9,
            };
            let decoded = LineageRecord::decode(t, &rec.encode()).unwrap();
            assert_eq!(decoded, rec);
        }
        assert!(LineageRecord::decode(t, "garbage").is_err());
        assert!(LineageRecord::decode(t, "X 1 2;3;4").is_err());
    }

    #[test]
    fn channel_state_roundtrip() {
        let addr = ChannelAddr::new(2, 5);
        let mut st = ChannelState::new(addr, 3, 4);
        st.committed_seq = Some(7);
        st.consumed = vec![1, 0, 9, 2];
        st.splits_consumed = 6;
        st.done = true;
        st.rewind_until = Some(4);
        let decoded = ChannelState::decode(addr, &st.encode()).unwrap();
        assert_eq!(decoded, st);
        assert_eq!(decoded.next_seq(), 8);
        assert_eq!(decoded.outputs_produced(), 8);

        let fresh = ChannelState::new(addr, 0, 0);
        let decoded = ChannelState::decode(addr, &fresh.encode()).unwrap();
        assert_eq!(decoded, fresh);
        assert_eq!(decoded.next_seq(), 0);
    }

    #[test]
    fn task_and_partition_roundtrip() {
        let addr = ChannelAddr::new(1, 1);
        let entry = TaskEntry { task: addr.task(9), worker: 2 };
        assert_eq!(TaskEntry::decode(addr, &entry.encode()).unwrap(), entry);

        let part = PartitionEntry {
            name: TaskName::new(1, 1, 9),
            owner: 2,
            backed_up: true,
            spooled: false,
            bytes: 4096,
        };
        assert_eq!(PartitionEntry::decode(part.name, &part.encode()).unwrap(), part);
    }

    #[test]
    fn gcs_lineage_table() {
        let gcs = Gcs::default();
        let t = TaskName::new(1, 0, 0);
        assert!(!gcs.lineage_committed(t));
        gcs.put_lineage(&lineage(t));
        gcs.put_lineage(&lineage(TaskName::new(1, 0, 1)));
        gcs.put_lineage(&lineage(TaskName::new(1, 1, 0)));
        assert!(gcs.lineage_committed(t));
        assert_eq!(gcs.get_lineage(t).unwrap().output_rows, 100);
        assert_eq!(gcs.channel_lineage(ChannelAddr::new(1, 0)).len(), 2);
        assert_eq!(gcs.channel_lineage(ChannelAddr::new(1, 1)).len(), 1);
        assert!(gcs.lineage_bytes() > 0);
    }

    #[test]
    fn gcs_channel_and_task_tables() {
        let gcs = Gcs::default();
        let a = ChannelAddr::new(0, 0);
        let b = ChannelAddr::new(1, 0);
        gcs.put_channel(&ChannelState::new(a, 0, 0));
        gcs.put_channel(&ChannelState::new(b, 1, 2));
        assert_eq!(gcs.all_channels().len(), 2);
        assert_eq!(gcs.get_channel(b).unwrap().worker, 1);

        gcs.put_task(&TaskEntry { task: a.task(0), worker: 0 });
        gcs.put_task(&TaskEntry { task: b.task(0), worker: 1 });
        assert_eq!(gcs.all_tasks().len(), 2);
        assert_eq!(gcs.tasks_on_worker(1).len(), 1);
        gcs.remove_task(a);
        assert!(gcs.get_task(a).is_none());
        assert_eq!(gcs.all_tasks().len(), 1);
    }

    #[test]
    fn gcs_partition_directory_and_replay() {
        let gcs = Gcs::default();
        let p = PartitionEntry {
            name: TaskName::new(0, 1, 4),
            owner: 1,
            backed_up: true,
            spooled: false,
            bytes: 10,
        };
        gcs.put_partition(&p);
        assert_eq!(gcs.get_partition(p.name).unwrap(), p);
        assert_eq!(gcs.all_partitions().len(), 1);

        let r = ReplayRequest::new(1, p.name, ChannelAddr::new(1, 2));
        gcs.add_replay(&r);
        assert_eq!(gcs.replays_for_worker(1), vec![r.clone()]);
        assert!(gcs.replays_for_worker(2).is_empty());

        // Re-queueing the same request with a higher attempt count
        // overwrites (same key) rather than duplicating.
        let charged = ReplayRequest { attempts: 3, ..r.clone() };
        gcs.add_replay(&charged);
        assert_eq!(gcs.replays_for_worker(1), vec![charged.clone()]);
        gcs.remove_replay(&r);
        assert!(gcs.replays_for_worker(1).is_empty());
    }

    #[test]
    fn lost_partitions_are_drained_once() {
        let gcs = Gcs::default();
        assert!(gcs.take_lost_partitions().is_empty());
        gcs.mark_partition_lost(TaskName::new(0, 1, 2));
        gcs.mark_partition_lost(TaskName::new(0, 1, 2)); // idempotent
        gcs.mark_partition_lost(TaskName::new(3, 0, 7));
        let mut lost = gcs.take_lost_partitions();
        lost.sort();
        assert_eq!(lost, vec![TaskName::new(0, 1, 2), TaskName::new(3, 0, 7)]);
        assert!(gcs.take_lost_partitions().is_empty());
    }

    #[test]
    fn gcs_control_flags() {
        let gcs = Gcs::default();
        assert!(!gcs.is_paused());
        gcs.set_paused(true);
        assert!(gcs.is_paused());
        gcs.set_paused(false);
        assert!(!gcs.is_paused());

        gcs.mark_worker_failed(3);
        assert!(gcs.is_worker_failed(3));
        assert!(!gcs.is_worker_failed(1));
        assert_eq!(gcs.failed_workers(), vec![3]);

        assert!(!gcs.is_query_done());
        gcs.set_query_done();
        assert!(gcs.is_query_done());

        assert!(gcs.query_error().is_none());
        gcs.set_query_error("boom");
        assert_eq!(gcs.query_error().unwrap(), "boom");
    }

    #[test]
    fn commit_task_is_atomic_and_respects_barriers() {
        let gcs = Gcs::default();
        let channel = ChannelAddr::new(1, 0);
        let mut state = ChannelState::new(channel, 0, 1);
        state.committed_seq = Some(0);
        state.consumed = vec![4];
        let commit = TaskCommit {
            worker: 0,
            lineage: lineage(channel.task(0)),
            partition: PartitionEntry {
                name: channel.task(0),
                owner: 0,
                backed_up: true,
                spooled: false,
                bytes: 2048,
            },
            channel_state: state.clone(),
            prev_channel: None,
            next_task: Some(TaskEntry { task: channel.task(1), worker: 0 }),
        };
        gcs.commit_task(&commit).unwrap();
        assert!(gcs.lineage_committed(channel.task(0)));
        assert_eq!(gcs.get_channel(channel).unwrap().consumed, vec![4]);
        assert_eq!(gcs.get_task(channel).unwrap().task.seq, 1);
        assert!(gcs.get_partition(channel.task(0)).unwrap().backed_up);

        // A commit carrying a stale prev-channel snapshot aborts: the
        // channel was reconciled (here: simply advanced) since the task
        // chose its inputs.
        let mut stale = commit.clone();
        stale.lineage.task = channel.task(1);
        stale.partition.name = channel.task(1);
        stale.prev_channel = Some(ChannelState::new(channel, 0, 1));
        assert!(gcs.commit_task(&stale).is_err());
        assert!(!gcs.lineage_committed(channel.task(1)));
        // With the snapshot matching what is stored, the same commit lands.
        stale.prev_channel = Some(state.clone());
        gcs.commit_task(&stale).unwrap();
        assert!(gcs.lineage_committed(channel.task(1)));

        // Barrier raised -> commit aborts and writes nothing.
        gcs.set_paused(true);
        let mut second = commit.clone();
        second.lineage.task = channel.task(2);
        second.partition.name = channel.task(2);
        assert!(gcs.commit_task(&second).is_err());
        assert!(!gcs.lineage_committed(channel.task(2)));
        gcs.set_paused(false);

        // Worker declared failed -> commit aborts.
        gcs.mark_worker_failed(0);
        assert!(gcs.commit_task(&second).is_err());
        assert!(!gcs.lineage_committed(channel.task(2)));
    }

    #[test]
    fn commit_with_no_next_task_marks_channel_done() {
        let gcs = Gcs::default();
        let channel = ChannelAddr::new(2, 1);
        gcs.put_task(&TaskEntry { task: channel.task(5), worker: 1 });
        let mut state = ChannelState::new(channel, 1, 1);
        state.committed_seq = Some(5);
        state.done = true;
        let commit = TaskCommit {
            worker: 1,
            lineage: LineageRecord {
                task: channel.task(5),
                source: LineageSource::Finalize,
                finished_inputs: vec![],
                finalize: true,
                output_rows: 1,
                output_bytes: 10,
            },
            partition: PartitionEntry {
                name: channel.task(5),
                owner: 1,
                backed_up: false,
                spooled: false,
                bytes: 10,
            },
            channel_state: state,
            prev_channel: None,
            next_task: None,
        };
        gcs.commit_task(&commit).unwrap();
        assert!(gcs.get_task(channel).is_none());
        assert!(gcs.get_channel(channel).unwrap().done);
    }
}
