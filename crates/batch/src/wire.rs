//! Length-prefixed binary wire format for the transport data plane.
//!
//! [`codec`](crate::codec) serialises batches for *storage* (backup, spool,
//! checkpoint) and allocates a fresh buffer per call; this module serialises
//! batches for the *wire*. The difference that matters is allocation
//! discipline: the TCP transport encodes every push into a reusable slab
//! (`&mut Vec<u8>`) drawn from a pool, so nothing here allocates a transient
//! buffer. The primitives (`put_*` / [`WireReader`]) are also the foundation
//! for every other hand-written protocol in the engine — plan shipping and
//! the driver RPC in process mode — because the vendored `serde` shim is a
//! no-op and all serialisation is explicit.
//!
//! Properties:
//! * dependency-free: plain `Vec<u8>` and big-endian `to_be_bytes`, no
//!   `bytes` shim;
//! * round-trip exact for all column types: `Float64` travels as raw IEEE-754
//!   bits (`to_bits`/`from_bits`), so NaN payloads and signed zeros survive;
//! * corruption-safe: every decode failure is a typed
//!   [`QuokkaError::Storage`], never a panic, and length fields are bounds-
//!   checked against the remaining buffer before any allocation is sized
//!   from them.

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::DataType;
use crate::schema::{Field, Schema};
use quokka_common::{QuokkaError, Result};

/// Magic prefix of a batch wire frame ("QKWF").
pub const WIRE_MAGIC: u32 = 0x514B_5746;

// ---------------------------------------------------------------------------
// Write primitives: append to a caller-owned slab.
// ---------------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Floats travel as raw bits so the round trip is bit-exact (NaN payloads
/// and `-0.0` included).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// `u32` length prefix followed by the raw bytes.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// `u32` length prefix followed by the UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

// ---------------------------------------------------------------------------
// Read primitives: a cursor with typed truncation errors.
// ---------------------------------------------------------------------------

/// Cursor over a received frame. Every accessor returns a typed
/// [`QuokkaError::Storage`] on truncation instead of panicking, so corrupted
/// or short frames surface as ordinary errors the retry machinery can see.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset, for error context.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn short(&self, what: &str, need: usize) -> QuokkaError {
        QuokkaError::Storage(format!(
            "wire: truncated frame reading {what} at offset {} (need {need} bytes, {} left)",
            self.pos,
            self.remaining()
        ))
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short(what, n));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2, "u16")?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4, "u32")?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8, "u64")?.try_into().expect("8 bytes")))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_be_bytes(self.take(4, "i32")?.try_into().expect("4 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8, "i64")?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Booleans must be exactly 0 or 1; anything else is corruption.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(QuokkaError::Storage(format!(
                "wire: invalid bool byte {other:#x} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// A `u32`-length-prefixed byte run; the length is validated against the
    /// remaining buffer before anything is sliced.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len, "length-prefixed bytes")
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| QuokkaError::Storage(format!("wire: invalid utf8 string: {e}")))
    }

    /// Fail unless the frame was consumed exactly.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(QuokkaError::Storage(format!(
                "wire: {} trailing bytes after frame at offset {}",
                self.remaining(),
                self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Batch frames.
// ---------------------------------------------------------------------------

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(QuokkaError::Storage(format!("wire: bad data type tag {other}"))),
    })
}

/// Byte length [`encode_batch_into`] will append for `batch`, used to size
/// slab reservations up front.
pub fn encoded_batch_len(batch: &Batch) -> usize {
    let mut len = 4 + 4 + 8; // magic + ncols + nrows
    for field in batch.schema().fields() {
        len += 1 + 4 + field.name.len();
    }
    for col in batch.columns() {
        len += match col {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.iter().map(|s| 4 + s.len()).sum(),
        };
    }
    len
}

/// Append the wire frame for one batch to `buf` (a reusable slab — this
/// never allocates a transient buffer of its own).
pub fn encode_batch_into(batch: &Batch, buf: &mut Vec<u8>) {
    buf.reserve(encoded_batch_len(batch));
    put_u32(buf, WIRE_MAGIC);
    put_u32(buf, batch.num_columns() as u32);
    put_u64(buf, batch.num_rows() as u64);
    for field in batch.schema().fields() {
        put_u8(buf, dtype_tag(field.data_type));
        put_str(buf, &field.name);
    }
    for col in batch.columns() {
        match col {
            Column::Int64(v) => {
                for x in v {
                    put_i64(buf, *x);
                }
            }
            Column::Float64(v) => {
                for x in v {
                    put_f64(buf, *x);
                }
            }
            Column::Date(v) => {
                for x in v {
                    put_i32(buf, *x);
                }
            }
            Column::Bool(v) => {
                for x in v {
                    put_bool(buf, *x);
                }
            }
            Column::Utf8(v) => {
                for s in v {
                    put_str(buf, s);
                }
            }
        }
    }
}

/// Decode one batch frame from the reader, leaving the cursor just past it.
pub fn decode_batch_from(r: &mut WireReader<'_>) -> Result<Batch> {
    let magic = r.u32()?;
    if magic != WIRE_MAGIC {
        return Err(QuokkaError::Storage(format!("wire: bad batch magic {magic:#x}")));
    }
    let cols = r.u32()? as usize;
    let rows_raw = r.u64()?;
    let rows = usize::try_from(rows_raw)
        .map_err(|_| QuokkaError::Storage(format!("wire: absurd row count {rows_raw}")))?;
    // A corrupted count field must not size an allocation: each column
    // carries at least one byte per row and one byte per field, so anything
    // beyond the remaining buffer is provably truncated.
    if cols > r.remaining() || rows > r.remaining().max(1) * 8 {
        return Err(QuokkaError::Storage(format!(
            "wire: frame header claims {cols} cols x {rows} rows but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut fields = Vec::with_capacity(cols);
    for _ in 0..cols {
        let dt = tag_dtype(r.u8()?)?;
        let name = r.str()?;
        fields.push(Field::new(name, dt));
    }
    let schema = Schema::new(fields);
    let mut columns = Vec::with_capacity(cols);
    for field in schema.fields() {
        columns.push(decode_column(r, field.data_type, rows)?);
    }
    Batch::try_new(schema, columns)
}

fn decode_column(r: &mut WireReader<'_>, dt: DataType, rows: usize) -> Result<Column> {
    Ok(match dt {
        DataType::Int64 => {
            let raw = r.take(checked_size(rows, 8)?, "Int64 column")?;
            Column::Int64(
                raw.chunks_exact(8)
                    .map(|c| i64::from_be_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            )
        }
        DataType::Float64 => {
            let raw = r.take(checked_size(rows, 8)?, "Float64 column")?;
            Column::Float64(
                raw.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_be_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            )
        }
        DataType::Date => {
            let raw = r.take(checked_size(rows, 4)?, "Date column")?;
            Column::Date(
                raw.chunks_exact(4)
                    .map(|c| i32::from_be_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            )
        }
        DataType::Bool => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(r.bool()?);
            }
            Column::Bool(out)
        }
        DataType::Utf8 => {
            let mut out = Vec::with_capacity(rows.min(r.remaining() / 4 + 1));
            for _ in 0..rows {
                out.push(r.str()?);
            }
            Column::Utf8(out)
        }
    })
}

fn checked_size(rows: usize, width: usize) -> Result<usize> {
    rows.checked_mul(width)
        .ok_or_else(|| QuokkaError::Storage(format!("wire: column size overflow ({rows} rows)")))
}

/// Decode a standalone batch frame; the buffer must contain exactly one.
pub fn decode_batch(data: &[u8]) -> Result<Batch> {
    let mut r = WireReader::new(data);
    let batch = decode_batch_from(&mut r)?;
    r.expect_end()?;
    Ok(batch)
}

/// Append the wire frame for a slice of batches (one shuffle push) to `buf`.
pub fn encode_batches_into(batches: &[Batch], buf: &mut Vec<u8>) {
    put_u32(buf, batches.len() as u32);
    for b in batches {
        encode_batch_into(b, buf);
    }
}

/// Decode a multi-batch frame from the reader.
pub fn decode_batches_from(r: &mut WireReader<'_>) -> Result<Vec<Batch>> {
    let count = r.u32()? as usize;
    if count > r.remaining().max(1) {
        return Err(QuokkaError::Storage(format!(
            "wire: frame claims {count} batches but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_batch_from(r)?);
    }
    Ok(out)
}

/// Decode a standalone multi-batch frame; the buffer must contain exactly one.
pub fn decode_batches(data: &[u8]) -> Result<Vec<Batch>> {
    let mut r = WireReader::new(data);
    let batches = decode_batches_from(&mut r)?;
    r.expect_end()?;
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::ScalarValue;

    fn sample() -> Batch {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("price", DataType::Float64),
            ("flag", DataType::Bool),
            ("ship", DataType::Date),
            ("comment", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![i64::MIN, -5, i64::MAX]),
                Column::Float64(vec![f64::NAN, -0.0, f64::INFINITY]),
                Column::Bool(vec![true, false, true]),
                Column::Date(vec![100, 0, -30]),
                Column::Utf8(vec!["hello".into(), "".into(), "unicode ✓".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let b = sample();
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        assert_eq!(buf.len(), encoded_batch_len(&b));
        let decoded = decode_batch(&buf).unwrap();
        // NaN != NaN under PartialEq, so compare the float column by bits.
        assert_eq!(decoded.schema(), b.schema());
        let (orig, got) =
            (b.columns()[1].as_f64().unwrap(), decoded.columns()[1].as_f64().unwrap());
        assert_eq!(
            orig.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(decoded.value(2, 4), ScalarValue::Utf8("unicode ✓".into()));
        // Re-encoding the decoded batch reproduces the exact bytes.
        let mut again = Vec::new();
        encode_batch_into(&decoded, &mut again);
        assert_eq!(buf, again);
    }

    #[test]
    fn slab_reuse_appends_cleanly() {
        let b = sample();
        let mut slab = Vec::with_capacity(1024);
        encode_batch_into(&b, &mut slab);
        let first = slab.clone();
        slab.clear();
        encode_batch_into(&b, &mut slab);
        assert_eq!(slab, first);
        // Multi-frame: two batches written back to back decode in sequence.
        slab.clear();
        encode_batches_into(&[b.clone(), b.slice(0, 1)], &mut slab);
        let decoded = decode_batches(&slab).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[1].num_rows(), 1);
    }

    #[test]
    fn empty_batches_and_columns() {
        let b = Batch::empty(sample().schema().clone());
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        let decoded = decode_batch(&buf).unwrap();
        assert_eq!(decoded.num_rows(), 0);
        assert_eq!(decoded.schema(), b.schema());
        buf.clear();
        encode_batches_into(&[], &mut buf);
        assert!(decode_batches(&buf).unwrap().is_empty());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let b = sample();
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        for cut in 0..buf.len() {
            match decode_batch(&buf[..cut]) {
                Err(QuokkaError::Storage(_)) => {}
                other => panic!("truncation at {cut} produced {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let b = sample();
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Absurd row count must error before allocating.
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Bad dtype tag.
        let mut bad = buf.clone();
        bad[16] = 99;
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Trailing garbage is rejected by the standalone decoder.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Non-0/1 bool byte.
        let flag_col_offset = {
            // magic+counts, 5 field descriptors, int64 + float64 columns.
            let header = 16 + b.schema().fields().iter().map(|f| 5 + f.name.len()).sum::<usize>();
            header + 3 * 8 + 3 * 8
        };
        let mut bad = buf.clone();
        bad[flag_col_offset] = 7;
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX);
        put_i32(&mut buf, -4);
        put_i64(&mut buf, i64::MIN);
        put_f64(&mut buf, -0.0);
        put_bool(&mut buf, true);
        put_bytes(&mut buf, b"raw");
        put_str(&mut buf, "text ✓");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -4);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "text ✓");
        r.expect_end().unwrap();
        assert!(WireReader::new(&[]).u8().is_err());
    }
}
