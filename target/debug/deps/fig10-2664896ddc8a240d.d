/root/repo/target/debug/deps/fig10-2664896ddc8a240d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-2664896ddc8a240d.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
