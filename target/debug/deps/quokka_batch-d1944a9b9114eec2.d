/root/repo/target/debug/deps/quokka_batch-d1944a9b9114eec2.d: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_batch-d1944a9b9114eec2.rmeta: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs Cargo.toml

crates/batch/src/lib.rs:
crates/batch/src/batch.rs:
crates/batch/src/codec.rs:
crates/batch/src/column.rs:
crates/batch/src/compute.rs:
crates/batch/src/datatype.rs:
crates/batch/src/rowkey.rs:
crates/batch/src/schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
