//! Schemas: ordered, named, typed column metadata.

use crate::datatype::DataType;
use quokka_common::{QuokkaError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// An ordered collection of [`Field`]s.
///
/// Schemas are cheap to clone (`Arc`-backed) because every batch carries a
/// reference to its schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields: Arc::new(fields) }
    }

    /// Build a schema from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields.iter().position(|f| f.name == name).ok_or_else(|| {
            QuokkaError::PlanError(format!("unknown column '{name}' in schema {self}"))
        })
    }

    /// Data type of the column named `name`.
    pub fn data_type(&self, name: &str) -> Result<DataType> {
        Ok(self.fields[self.index_of(name)?].data_type)
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema with the given fields appended (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.as_ref().clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// A new schema containing only the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> =
            self.fields.iter().map(|fd| format!("{}:{}", fd.name, fd.data_type)).collect();
        write!(f, "{}", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("l_orderkey", DataType::Int64),
            ("l_quantity", DataType::Float64),
            ("l_shipdate", DataType::Date),
            ("l_comment", DataType::Utf8),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("l_quantity").unwrap(), 1);
        assert_eq!(s.data_type("l_shipdate").unwrap(), DataType::Date);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn join_concatenates_fields() {
        let a = Schema::from_pairs(&[("a", DataType::Int64)]);
        let b = Schema::from_pairs(&[("b", DataType::Utf8)]);
        let j = a.join(&b);
        assert_eq!(j.column_names(), vec!["a", "b"]);
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = sample();
        let p = s.project(&[3, 0]);
        assert_eq!(p.column_names(), vec!["l_comment", "l_orderkey"]);
        assert_eq!(p.field(1).data_type, DataType::Int64);
    }

    #[test]
    fn display_formats_fields() {
        let s = Schema::from_pairs(&[("x", DataType::Bool)]);
        assert_eq!(s.to_string(), "x:Bool");
        assert_eq!(Schema::empty().to_string(), "");
    }
}
