//! Recursive-descent parser for the supported SELECT grammar.
//!
//! ```text
//! statement  := SELECT items FROM table join* [WHERE expr]
//!               [GROUP BY expr,*] [HAVING expr]
//!               [ORDER BY order_item,*] [LIMIT n] [';']
//! items      := '*' | item (',' item)*
//! item       := expr [[AS] ident]
//! table      := ident [[AS] ident]
//! join       := [INNER] JOIN table ON expr
//! order_item := expr [ASC | DESC]
//! ```
//!
//! Expression precedence, loosest first: `OR`, `AND`, `NOT`, comparisons
//! and the `LIKE` / `IN` / `BETWEEN` predicates, `+ -`, `* /`, unary `-`,
//! primaries. All errors carry the position of the offending token.

use crate::ast::*;
use crate::error::{Pos, SqlError};
use crate::lexer::{tokenize, Token, TokenKind};
use quokka_batch::DataType;

/// Keywords that terminate an alias-free expression; a bare identifier after
/// an expression is only an alias when it is not one of these.
const RESERVED: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "limit",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "outer",
    "cross",
    "on",
    "as",
    "and",
    "or",
    "not",
    "like",
    "in",
    "between",
    "case",
    "when",
    "then",
    "else",
    "end",
    "asc",
    "desc",
    "union",
    "except",
    "intersect",
    "distinct",
    "extract",
    "cast",
    "is",
    "null",
    "exists",
    "explain",
];

/// Parse one SELECT statement from `sql`.
pub fn parse(sql: &str) -> Result<SelectStatement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let statement = parser.parse_statement()?;
    parser.eat_kind(&TokenKind::Semi);
    let end = parser.peek();
    if end.kind != TokenKind::Eof {
        return Err(SqlError::parse(
            end.pos,
            format!("expected end of statement, found {}", end.kind.describe()),
        ));
    }
    Ok(statement)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    /// Consume the next token if it is the keyword `kw` (lowercase).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            let t = self.peek();
            Err(SqlError::parse(
                t.pos,
                format!("expected {}, found {}", kw.to_uppercase(), t.kind.describe()),
            ))
        }
    }

    fn expect_kind(&mut self, kind: TokenKind, what: &str) -> Result<(), SqlError> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            let t = self.peek();
            Err(SqlError::parse(t.pos, format!("expected {what}, found {}", t.kind.describe())))
        }
    }

    /// Consume an identifier that is not a reserved keyword.
    fn expect_ident(&mut self, what: &str) -> Result<(String, Pos), SqlError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                self.pos += 1;
                Ok((s.clone(), t.pos))
            }
            _ => {
                Err(SqlError::parse(t.pos, format!("expected {what}, found {}", t.kind.describe())))
            }
        }
    }

    fn parse_statement(&mut self) -> Result<SelectStatement, SqlError> {
        let explain = self.eat_keyword("explain");
        self.parse_select_body(explain)
    }

    /// One SELECT body (everything after an optional EXPLAIN). Also the
    /// entry point for subqueries, which never carry EXPLAIN.
    fn parse_select_body(&mut self, explain: bool) -> Result<SelectStatement, SqlError> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let items = self.parse_select_items()?;
        self.expect_keyword("from")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            // `FROM a, b` and `CROSS JOIN` add a table with no ON condition
            // (a cross join; the optimizer recovers equi-joins from WHERE).
            if self.eat_kind(&TokenKind::Comma) {
                let table = self.parse_table_ref()?;
                joins.push(Join { table, kind: JoinKind::Cross, on: None });
                continue;
            }
            if self.eat_keyword("cross") {
                self.expect_keyword("join")?;
                let table = self.parse_table_ref()?;
                joins.push(Join { table, kind: JoinKind::Cross, on: None });
                continue;
            }
            if self.at_keyword("right") || self.at_keyword("full") {
                return Err(SqlError::parse(
                    self.peek().pos,
                    "RIGHT and FULL OUTER joins are not supported; \
                     use LEFT [OUTER] JOIN or [INNER] JOIN ... ON",
                ));
            }
            if self.eat_keyword("left") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                let table = self.parse_table_ref()?;
                self.expect_keyword("on")?;
                let on = self.parse_expr()?;
                joins.push(Join { table, kind: JoinKind::Left, on: Some(on) });
                continue;
            }
            let inner = self.eat_keyword("inner");
            if !self.at_keyword("join") {
                if inner {
                    let t = self.peek();
                    return Err(SqlError::parse(
                        t.pos,
                        format!("expected JOIN after INNER, found {}", t.kind.describe()),
                    ));
                }
                break;
            }
            self.expect_keyword("join")?;
            let table = self.parse_table_ref()?;
            self.expect_keyword("on")?;
            let on = self.parse_expr()?;
            joins.push(Join { table, kind: JoinKind::Inner, on: Some(on) });
        }
        let selection = if self.eat_keyword("where") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("having") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            let t = self.bump();
            match t.kind {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                _ => {
                    return Err(SqlError::parse(
                        t.pos,
                        format!(
                            "expected a non-negative integer after LIMIT, found {}",
                            t.kind.describe()
                        ),
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStatement {
            explain,
            distinct,
            items,
            from,
            joins,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = self.parse_alias()?;
            items.push(SelectItem::Expr { expr, alias });
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    /// `[AS] ident` following an expression or table name.
    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_keyword("as") {
            let (name, _) = self.expect_ident("an alias")?;
            return Ok(Some(name));
        }
        if let TokenKind::Ident(s) = &self.peek().kind {
            if !RESERVED.contains(&s.as_str()) {
                let name = s.clone();
                self.pos += 1;
                return Ok(Some(name));
            }
        }
        Ok(None)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        // `(SELECT ...) alias` — a derived table.
        if self.peek().kind == TokenKind::LParen
            && self.tokens.get(self.pos + 1).map(|t| &t.kind)
                == Some(&TokenKind::Ident("select".to_string()))
        {
            let pos = self.bump().pos; // '('
            let statement = self.parse_select_body(false)?;
            self.expect_kind(TokenKind::RParen, "')' closing the derived table")?;
            let alias = self.parse_alias()?;
            if alias.is_none() {
                return Err(SqlError::parse(
                    self.peek().pos,
                    "a derived table (subquery in FROM) requires an alias",
                ));
            }
            return Ok(TableRef { source: TableSource::Subquery(Box::new(statement)), alias, pos });
        }
        let (name, pos) = self.expect_ident("a table name")?;
        let alias = self.parse_alias()?;
        Ok(TableRef { source: TableSource::Named(name), alias, pos })
    }

    // -- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<SqlExpr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_and()?;
        while self.at_keyword("or") {
            let pos = self.bump().pos;
            let right = self.parse_and()?;
            left = SqlExpr::new(
                ExprKind::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) },
                pos,
            );
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_not()?;
        while self.at_keyword("and") {
            let pos = self.bump().pos;
            let right = self.parse_not()?;
            left = SqlExpr::new(
                ExprKind::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) },
                pos,
            );
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<SqlExpr, SqlError> {
        if self.at_keyword("not") {
            let pos = self.bump().pos;
            let inner = self.parse_not()?;
            return Ok(SqlExpr::new(ExprKind::Not(Box::new(inner)), pos));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<SqlExpr, SqlError> {
        let left = self.parse_additive()?;
        // One comparison operator, or one of the [NOT] LIKE/IN/BETWEEN
        // predicate suffixes.
        let op = match &self.peek().kind {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::LtEq => Some(BinOp::LtEq),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            let pos = self.bump().pos;
            let right = self.parse_additive()?;
            return Ok(SqlExpr::new(
                ExprKind::Binary { op, left: Box::new(left), right: Box::new(right) },
                pos,
            ));
        }
        let negated = if self.at_keyword("not")
            && matches!(&self.tokens.get(self.pos + 1).map(|t| &t.kind),
                        Some(TokenKind::Ident(s)) if s == "like" || s == "in" || s == "between")
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.at_keyword("like") {
            let pos = self.bump().pos;
            let t = self.bump();
            let pattern = match t.kind {
                TokenKind::Str(s) => s,
                other => {
                    return Err(SqlError::parse(
                        t.pos,
                        format!("expected a string pattern after LIKE, found {}", other.describe()),
                    ))
                }
            };
            return Ok(SqlExpr::new(
                ExprKind::Like { expr: Box::new(left), pattern, negated },
                pos,
            ));
        }
        if self.at_keyword("in") {
            let pos = self.bump().pos;
            self.expect_kind(TokenKind::LParen, "'(' after IN")?;
            // `IN (SELECT ...)` — a subquery membership test.
            if self.at_keyword("select") {
                let statement = self.parse_select_body(false)?;
                self.expect_kind(TokenKind::RParen, "')' closing the IN subquery")?;
                return Ok(SqlExpr::new(
                    ExprKind::InSubquery {
                        expr: Box::new(left),
                        statement: Box::new(statement),
                        negated,
                    },
                    pos,
                ));
            }
            let mut items = Vec::new();
            loop {
                items.push(self.parse_additive()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, "')' closing the IN list")?;
            return Ok(SqlExpr::new(
                ExprKind::InList { expr: Box::new(left), items, negated },
                pos,
            ));
        }
        if self.at_keyword("between") {
            let pos = self.bump().pos;
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(SqlExpr::new(
                ExprKind::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                },
                pos,
            ));
        }
        // `negated` implies one of the three predicate branches above fired
        // (the lookahead only consumes NOT directly before LIKE/IN/BETWEEN).
        debug_assert!(!negated);
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.bump().pos;
            let right = self.parse_multiplicative()?;
            left = SqlExpr::new(
                ExprKind::Binary { op, left: Box::new(left), right: Box::new(right) },
                pos,
            );
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            let pos = self.bump().pos;
            let right = self.parse_unary()?;
            left = SqlExpr::new(
                ExprKind::Binary { op, left: Box::new(left), right: Box::new(right) },
                pos,
            );
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<SqlExpr, SqlError> {
        if self.peek().kind == TokenKind::Minus {
            let pos = self.bump().pos;
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals; otherwise lower as 0 - x.
            return Ok(match inner.kind {
                ExprKind::Int(v) => SqlExpr::new(ExprKind::Int(-v), pos),
                ExprKind::Float(v) => SqlExpr::new(ExprKind::Float(-v), pos),
                _ => SqlExpr::new(
                    ExprKind::Binary {
                        op: BinOp::Sub,
                        left: Box::new(SqlExpr::new(ExprKind::Int(0), pos)),
                        right: Box::new(inner),
                    },
                    pos,
                ),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<SqlExpr, SqlError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::LParen => {
                self.pos += 1;
                // `(SELECT ...)` as a value — a scalar subquery.
                if self.at_keyword("select") {
                    let statement = self.parse_select_body(false)?;
                    self.expect_kind(TokenKind::RParen, "')' closing the subquery")?;
                    return Ok(SqlExpr::new(ExprKind::Subquery(Box::new(statement)), t.pos));
                }
                let inner = self.parse_expr()?;
                self.expect_kind(TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            TokenKind::Int(v) => {
                self.pos += 1;
                Ok(SqlExpr::new(ExprKind::Int(*v), t.pos))
            }
            TokenKind::Float(v) => {
                self.pos += 1;
                Ok(SqlExpr::new(ExprKind::Float(*v), t.pos))
            }
            TokenKind::Str(s) => {
                self.pos += 1;
                Ok(SqlExpr::new(ExprKind::Str(s.clone()), t.pos))
            }
            TokenKind::Ident(name) => match name.as_str() {
                "true" => {
                    self.pos += 1;
                    Ok(SqlExpr::new(ExprKind::Bool(true), t.pos))
                }
                "false" => {
                    self.pos += 1;
                    Ok(SqlExpr::new(ExprKind::Bool(false), t.pos))
                }
                "null" => Err(SqlError::parse(
                    t.pos,
                    "NULL is not supported: the engine has no NULL representation",
                )),
                "date" => {
                    self.pos += 1;
                    self.parse_date_literal(t.pos)
                }
                "case" => {
                    self.pos += 1;
                    self.parse_case(t.pos)
                }
                "extract" => {
                    self.pos += 1;
                    self.parse_extract(t.pos)
                }
                "cast" => {
                    self.pos += 1;
                    self.parse_cast(t.pos)
                }
                "exists" => {
                    self.pos += 1;
                    self.expect_kind(TokenKind::LParen, "'(' after EXISTS")?;
                    if !self.at_keyword("select") {
                        return Err(SqlError::parse(
                            self.peek().pos,
                            "EXISTS requires a (SELECT ...) subquery",
                        ));
                    }
                    let statement = self.parse_select_body(false)?;
                    self.expect_kind(TokenKind::RParen, "')' closing the EXISTS subquery")?;
                    Ok(SqlExpr::new(ExprKind::Exists(Box::new(statement)), t.pos))
                }
                "substring" | "substr"
                    if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                        == Some(&TokenKind::LParen) =>
                {
                    self.pos += 1;
                    self.parse_substring(t.pos)
                }
                _ if RESERVED.contains(&name.as_str()) => Err(SqlError::parse(
                    t.pos,
                    format!("expected an expression, found {}", t.kind.describe()),
                )),
                _ => {
                    self.pos += 1;
                    if self.peek().kind == TokenKind::LParen {
                        self.parse_function(name.clone(), t.pos)
                    } else if self.eat_kind(&TokenKind::Dot) {
                        let (column, _) = self.expect_ident("a column name after '.'")?;
                        Ok(SqlExpr::new(
                            ExprKind::Column { qualifier: Some(name.clone()), name: column },
                            t.pos,
                        ))
                    } else {
                        Ok(SqlExpr::new(
                            ExprKind::Column { qualifier: None, name: name.clone() },
                            t.pos,
                        ))
                    }
                }
            },
            other => Err(SqlError::parse(
                t.pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }

    /// `DATE 'YYYY-MM-DD'` — validated here rather than with the panicking
    /// engine-side parser.
    fn parse_date_literal(&mut self, pos: Pos) -> Result<SqlExpr, SqlError> {
        let t = self.bump();
        let text = match t.kind {
            TokenKind::Str(s) => s,
            other => {
                return Err(SqlError::parse(
                    t.pos,
                    format!(
                        "expected a 'YYYY-MM-DD' string after DATE, found {}",
                        other.describe()
                    ),
                ))
            }
        };
        match validate_date(&text) {
            Some(days) => Ok(SqlExpr::new(ExprKind::Date(days), pos)),
            None => Err(SqlError::parse(t.pos, format!("malformed date literal '{text}'"))),
        }
    }

    fn parse_case(&mut self, pos: Pos) -> Result<SqlExpr, SqlError> {
        if !self.at_keyword("when") {
            return Err(SqlError::parse(
                self.peek().pos,
                "only searched CASE is supported: CASE WHEN cond THEN value ... ELSE value END",
            ));
        }
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if !self.eat_keyword("else") {
            return Err(SqlError::parse(
                self.peek().pos,
                "CASE requires an ELSE branch (the engine has no NULL to default to)",
            ));
        }
        let else_expr = self.parse_expr()?;
        self.expect_keyword("end")?;
        Ok(SqlExpr::new(ExprKind::Case { branches, else_expr: Box::new(else_expr) }, pos))
    }

    fn parse_extract(&mut self, pos: Pos) -> Result<SqlExpr, SqlError> {
        self.expect_kind(TokenKind::LParen, "'(' after EXTRACT")?;
        let (field, field_pos) = match self.bump() {
            Token { kind: TokenKind::Ident(s), pos } => (s, pos),
            t => {
                return Err(SqlError::parse(
                    t.pos,
                    format!("expected a date field after EXTRACT(, found {}", t.kind.describe()),
                ))
            }
        };
        if field != "year" {
            return Err(SqlError::parse(
                field_pos,
                format!("EXTRACT supports only YEAR, got '{field}'"),
            ));
        }
        self.expect_keyword("from")?;
        let expr = self.parse_expr()?;
        self.expect_kind(TokenKind::RParen, "')' closing EXTRACT")?;
        Ok(SqlExpr::new(ExprKind::ExtractYear(Box::new(expr)), pos))
    }

    fn parse_cast(&mut self, pos: Pos) -> Result<SqlExpr, SqlError> {
        self.expect_kind(TokenKind::LParen, "'(' after CAST")?;
        let expr = self.parse_expr()?;
        self.expect_keyword("as")?;
        let t = self.bump();
        let type_name = match &t.kind {
            TokenKind::Ident(s) => s.clone(),
            other => {
                return Err(SqlError::parse(
                    t.pos,
                    format!("expected a type name in CAST, found {}", other.describe()),
                ))
            }
        };
        let to = match type_name.as_str() {
            "bigint" | "int" | "integer" => DataType::Int64,
            "double" => {
                self.eat_keyword("precision");
                DataType::Float64
            }
            "float" | "real" => DataType::Float64,
            "varchar" | "text" | "string" => DataType::Utf8,
            "date" => DataType::Date,
            "boolean" | "bool" => DataType::Bool,
            other => {
                return Err(SqlError::parse(
                    t.pos,
                    format!(
                        "unknown type '{other}' in CAST (supported: BIGINT, DOUBLE, VARCHAR, DATE, BOOLEAN)"
                    ),
                ))
            }
        };
        self.expect_kind(TokenKind::RParen, "')' closing CAST")?;
        Ok(SqlExpr::new(ExprKind::Cast { expr: Box::new(expr), to }, pos))
    }

    /// `SUBSTRING(expr FROM start FOR len)` or `SUBSTR(expr, start, len)`.
    fn parse_substring(&mut self, pos: Pos) -> Result<SqlExpr, SqlError> {
        self.expect_kind(TokenKind::LParen, "'(' after SUBSTRING")?;
        let expr = self.parse_expr()?;
        let (start, len) = if self.eat_keyword("from") {
            let start = self.expect_positive_int("SUBSTRING start")?;
            self.expect_keyword("for")?;
            let len = self.expect_positive_int("SUBSTRING length")?;
            (start, len)
        } else {
            self.expect_kind(TokenKind::Comma, "',' or FROM in SUBSTRING")?;
            let start = self.expect_positive_int("SUBSTRING start")?;
            self.expect_kind(TokenKind::Comma, "',' before the SUBSTRING length")?;
            let len = self.expect_positive_int("SUBSTRING length")?;
            (start, len)
        };
        self.expect_kind(TokenKind::RParen, "')' closing SUBSTRING")?;
        Ok(SqlExpr::new(ExprKind::Substring { expr: Box::new(expr), start, len }, pos))
    }

    fn expect_positive_int(&mut self, what: &str) -> Result<usize, SqlError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(n) if n >= 1 => Ok(n as usize),
            other => Err(SqlError::parse(
                t.pos,
                format!("expected a positive integer for {what}, found {}", other.describe()),
            )),
        }
    }

    /// `name(args)` — aggregates and scalar function calls.
    fn parse_function(&mut self, name: String, pos: Pos) -> Result<SqlExpr, SqlError> {
        self.expect_kind(TokenKind::LParen, "'('")?;
        if self.eat_kind(&TokenKind::Star) {
            self.expect_kind(TokenKind::RParen, "')' after '*'")?;
            return Ok(SqlExpr::new(
                ExprKind::Function { name, distinct: false, star: true, args: vec![] },
                pos,
            ));
        }
        let distinct = self.eat_keyword("distinct");
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kind(TokenKind::RParen, "')' closing the argument list")?;
        Ok(SqlExpr::new(ExprKind::Function { name, distinct, star: false, args }, pos))
    }
}

/// Validate a `YYYY-MM-DD` string and convert it to days since the epoch.
pub(crate) fn validate_date(text: &str) -> Option<i32> {
    quokka_batch::datatype::try_parse_date(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(sql: &str) -> SqlExpr {
        let stmt = parse(&format!("SELECT {sql} AS x FROM t")).unwrap();
        match stmt.items.into_iter().next().unwrap() {
            SelectItem::Expr { expr, .. } => expr,
            SelectItem::Wildcard => panic!("wildcard"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        // a + b * c parses as a + (b * c)
        let e = expr("a + b * c");
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, right, .. } => {
                assert!(matches!(right.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // a OR b AND c parses as a OR (b AND c)
        let e = expr("a OR b AND c");
        match e.kind {
            ExprKind::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(right.kind, ExprKind::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_between_arith_and_bool() {
        // a + 1 > b AND c parses as ((a + 1) > b) AND c
        let e = expr("a + 1 > b AND c");
        match e.kind {
            ExprKind::Binary { op: BinOp::And, left, .. } => match left.kind {
                ExprKind::Binary { op: BinOp::Gt, left, .. } => {
                    assert!(matches!(left.kind, ExprKind::Binary { op: BinOp::Add, .. }));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parenthesized_or_inside_and() {
        let e = expr("(a OR b) AND c");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn predicates_parse() {
        assert!(matches!(expr("a LIKE '%x%'").kind, ExprKind::Like { negated: false, .. }));
        assert!(matches!(expr("a NOT LIKE '%x%'").kind, ExprKind::Like { negated: true, .. }));
        assert!(matches!(expr("a IN ('p', 'q')").kind, ExprKind::InList { negated: false, .. }));
        assert!(matches!(expr("a NOT IN (1, 2)").kind, ExprKind::InList { negated: true, .. }));
        assert!(matches!(
            expr("a BETWEEN 1 AND 5 AND b").kind,
            ExprKind::Binary { op: BinOp::And, .. }
        ));
        assert!(matches!(expr("NOT a").kind, ExprKind::Not(_)));
    }

    #[test]
    fn date_and_negative_literals() {
        assert_eq!(expr("DATE '1994-01-01'").kind, ExprKind::Date(8766));
        assert_eq!(expr("-5").kind, ExprKind::Int(-5));
        assert_eq!(expr("-2.5").kind, ExprKind::Float(-2.5));
    }

    #[test]
    fn case_extract_substring_cast() {
        assert!(matches!(expr("CASE WHEN a THEN 1 ELSE 0 END").kind, ExprKind::Case { .. }));
        assert!(matches!(expr("EXTRACT(YEAR FROM d)").kind, ExprKind::ExtractYear(_)));
        assert!(matches!(
            expr("SUBSTRING(s FROM 1 FOR 2)").kind,
            ExprKind::Substring { start: 1, len: 2, .. }
        ));
        assert!(matches!(
            expr("substr(s, 3, 4)").kind,
            ExprKind::Substring { start: 3, len: 4, .. }
        ));
        assert!(matches!(
            expr("CAST(a AS DOUBLE)").kind,
            ExprKind::Cast { to: DataType::Float64, .. }
        ));
    }

    #[test]
    fn count_star_and_distinct() {
        assert!(matches!(
            expr("count(*)").kind,
            ExprKind::Function { star: true, distinct: false, .. }
        ));
        assert!(matches!(
            expr("count(DISTINCT a)").kind,
            ExprKind::Function { star: false, distinct: true, .. }
        ));
    }

    #[test]
    fn full_statement_shape() {
        let stmt = parse(
            "SELECT a, sum(b) AS total FROM t JOIN u ON t_key = u_key \
             WHERE c > 1 GROUP BY a HAVING sum(b) > 10 ORDER BY total DESC LIMIT 5;",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.from.binding_name(), "t");
        assert_eq!(stmt.joins.len(), 1);
        assert!(stmt.selection.is_some());
        assert_eq!(stmt.group_by.len(), 1);
        assert!(stmt.having.is_some());
        assert_eq!(stmt.order_by.len(), 1);
        assert!(!stmt.order_by[0].ascending);
        assert_eq!(stmt.limit, Some(5));
    }

    #[test]
    fn table_aliases() {
        let stmt = parse("SELECT * FROM lineitem l JOIN orders AS o ON a = b").unwrap();
        assert_eq!(stmt.from.binding_name(), "l");
        assert_eq!(stmt.joins[0].table.binding_name(), "o");
    }

    #[test]
    fn error_positions_and_expected_tokens() {
        // Missing FROM.
        let err = parse("SELECT a GROUP BY a").unwrap_err();
        assert!(err.to_string().contains("expected FROM"), "{err}");
        assert_eq!(err.pos, Pos::new(1, 10));

        // Unclosed parenthesis.
        let err = parse("SELECT (a + 1 FROM t").unwrap_err();
        assert!(err.to_string().contains("expected ')'"), "{err}");

        // Garbage after the statement.
        let err = parse("SELECT a FROM t WHERE").unwrap_err();
        assert!(err.to_string().contains("expected an expression"), "{err}");

        // Malformed dates: bad month, leap day, and out-of-range years
        // (absurd years would spin or overflow the epoch-day conversion).
        for bad in [
            "1994-13-01",
            "1995-02-29",
            "99999999999-01-01",
            "10000-01-01",
            "0000-01-01",
            "1994-+1-01",
        ] {
            let err = parse(&format!("SELECT a FROM t WHERE d > DATE '{bad}'")).unwrap_err();
            assert!(err.to_string().contains("malformed date"), "{bad}: {err}");
            assert_eq!(err.pos.line, 1);
        }

        // Bad LIMIT.
        let err = parse("SELECT a FROM t LIMIT x").unwrap_err();
        assert!(err.to_string().contains("LIMIT"), "{err}");
    }

    #[test]
    fn rejections_are_informative() {
        for (sql, needle) in [
            ("SELECT a FROM t RIGHT JOIN u ON x = y", "RIGHT and FULL"),
            ("SELECT a FROM t FULL OUTER JOIN u ON x = y", "RIGHT and FULL"),
            ("SELECT CASE WHEN a THEN 1 END FROM t", "ELSE"),
            ("SELECT NULL FROM t", "NULL"),
            ("SELECT EXTRACT(MONTH FROM d) FROM t", "YEAR"),
            ("SELECT a FROM (SELECT b FROM t)", "requires an alias"),
            ("SELECT a FROM t WHERE EXISTS (b > 1)", "EXISTS requires"),
        ] {
            let err = parse(sql).unwrap_err();
            assert!(err.to_string().contains(needle), "{sql}: {err}");
        }
    }

    #[test]
    fn distinct_explain_and_cross_join_shapes() {
        let stmt = parse("SELECT DISTINCT a FROM t").unwrap();
        assert!(stmt.distinct);
        assert!(!stmt.explain);

        let stmt = parse("EXPLAIN SELECT a FROM t").unwrap();
        assert!(stmt.explain);
        assert!(!stmt.distinct);

        // Comma-separated FROM entries and CROSS JOIN both carry no ON.
        let stmt = parse("SELECT a FROM t, u, v WHERE x = y").unwrap();
        assert_eq!(stmt.joins.len(), 2);
        assert!(stmt.joins.iter().all(|j| j.on.is_none()));
        assert!(stmt.selection.is_some());

        let stmt = parse("SELECT a FROM t CROSS JOIN u JOIN v ON a = b").unwrap();
        assert_eq!(stmt.joins.len(), 2);
        assert!(stmt.joins[0].on.is_none());
        assert!(stmt.joins[1].on.is_some());

        // Commas may follow explicit joins (mixed FROM lists).
        let stmt = parse("SELECT a FROM t JOIN u ON a = b, v").unwrap();
        assert_eq!(stmt.joins.len(), 2);
    }

    #[test]
    fn left_join_and_derived_tables_parse() {
        let stmt =
            parse("SELECT a FROM t LEFT OUTER JOIN u ON k = j AND c NOT LIKE '%x%'").unwrap();
        assert_eq!(stmt.joins.len(), 1);
        assert_eq!(stmt.joins[0].kind, JoinKind::Left);
        assert!(stmt.joins[0].on.is_some());
        // LEFT without OUTER is the same join.
        let stmt = parse("SELECT a FROM t LEFT JOIN u ON k = j").unwrap();
        assert_eq!(stmt.joins[0].kind, JoinKind::Left);

        let stmt = parse("SELECT a FROM (SELECT b AS a FROM t GROUP BY b) d").unwrap();
        assert_eq!(stmt.from.binding_name(), "d");
        assert!(matches!(stmt.from.source, TableSource::Subquery(_)));
        // Derived tables join like any other table.
        let stmt = parse("SELECT a FROM t JOIN (SELECT k FROM u) d ON a = k").unwrap();
        assert!(matches!(stmt.joins[0].table.source, TableSource::Subquery(_)));
    }

    #[test]
    fn subquery_expressions_parse() {
        let e = expr("a > (SELECT max(b) FROM u)");
        match e.kind {
            ExprKind::Binary { right, .. } => {
                assert!(matches!(right.kind, ExprKind::Subquery(_)))
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(expr("EXISTS (SELECT * FROM u)").kind, ExprKind::Exists(_)));
        assert!(matches!(expr("NOT EXISTS (SELECT * FROM u)").kind, ExprKind::Not(_)));
        assert!(matches!(
            expr("a IN (SELECT b FROM u)").kind,
            ExprKind::InSubquery { negated: false, .. }
        ));
        assert!(matches!(
            expr("a NOT IN (SELECT b FROM u WHERE c = 1)").kind,
            ExprKind::InSubquery { negated: true, .. }
        ));
        // A parenthesized plain expression is still just parentheses.
        assert!(matches!(expr("(a + 1)").kind, ExprKind::Binary { .. }));
    }
}
