/root/repo/target/debug/deps/quokka_batch-d5538e0edded7e12.d: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

/root/repo/target/debug/deps/libquokka_batch-d5538e0edded7e12.rmeta: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

crates/batch/src/lib.rs:
crates/batch/src/batch.rs:
crates/batch/src/codec.rs:
crates/batch/src/column.rs:
crates/batch/src/compute.rs:
crates/batch/src/datatype.rs:
crates/batch/src/rowkey.rs:
crates/batch/src/schema.rs:
