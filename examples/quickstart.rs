//! Quickstart: register your own tables, run a query on the simulated
//! cluster, and inspect the fault-tolerance metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use quokka::plan::aggregate::{count, sum};
use quokka::plan::expr::{col, lit};
use quokka::{Batch, Column, DataType, EngineConfig, JoinType, PlanBuilder, QuokkaSession, Schema};

fn main() -> quokka::Result<()> {
    // A session is a catalog plus an engine configuration. Quokka's default
    // is pipelined execution, dynamic task dependencies and write-ahead
    // lineage on a simulated cluster.
    let session = QuokkaSession::new(EngineConfig::quokka(4));

    // Register a dimension table and a fact table.
    let products = Schema::from_pairs(&[("p_id", DataType::Int64), ("p_category", DataType::Utf8)]);
    session.register_table(
        "products",
        products.clone(),
        vec![Batch::try_new(
            products.clone(),
            vec![
                Column::Int64((0..100).collect()),
                Column::Utf8((0..100).map(|i| format!("category-{}", i % 5)).collect()),
            ],
        )?],
    );

    let sales =
        Schema::from_pairs(&[("s_product", DataType::Int64), ("s_amount", DataType::Float64)]);
    let rows = 20_000i64;
    let sales_batch = Batch::try_new(
        sales.clone(),
        vec![
            Column::Int64((0..rows).map(|i| i % 100).collect()),
            Column::Float64((0..rows).map(|i| (i % 37) as f64 + 0.5).collect()),
        ],
    )?;
    // Several batches = several input splits = several scan tasks.
    session.register_table("sales", sales.clone(), sales_batch.chunks(1024));

    // Revenue per category for sales above a threshold, largest first.
    let plan = PlanBuilder::scan("products", products)
        .join(
            PlanBuilder::scan("sales", sales).filter(col("s_amount").gt(lit(5.0f64))),
            vec![("p_id", "s_product")],
            JoinType::Inner,
        )
        .aggregate(
            vec![(col("p_category"), "category")],
            vec![sum(col("s_amount"), "revenue"), count(col("s_product"), "sales")],
        )
        .sort(vec![("revenue", false)])
        .build()?;

    let outcome = session.run(&plan)?;
    println!("category        revenue      sales");
    for row in 0..outcome.batch.num_rows() {
        println!(
            "{:<14} {:>10}  {:>9}",
            outcome.batch.value(row, 0),
            outcome.batch.value(row, 1),
            outcome.batch.value(row, 2)
        );
    }

    let m = &outcome.metrics;
    println!();
    println!("runtime              : {:?}", m.runtime);
    println!("tasks executed       : {}", m.tasks_executed);
    println!("shuffle bytes        : {} (raw {})", m.shuffle_bytes, m.shuffle_raw_bytes);
    println!("upstream backup bytes: {} (raw {})", m.backup_bytes, m.backup_raw_bytes);
    println!("lineage bytes logged : {}", m.lineage_bytes);
    println!("GCS transactions     : {}", m.gcs_transactions);

    // The distributed result matches the single-threaded reference executor.
    let expected = session.run_reference(&plan)?;
    assert!(quokka::same_result(&expected, &outcome.batch));
    println!("\nresult verified against the reference executor");

    // The same query as SQL text: parsed, bound against the session's
    // catalog, and executed on the same simulated cluster.
    let handle = session.sql(
        "SELECT p_category AS category, sum(s_amount) AS revenue, count(*) AS sales \
         FROM products JOIN sales ON p_id = s_product \
         WHERE s_amount > 5 \
         GROUP BY p_category \
         ORDER BY revenue DESC",
    )?;
    println!("\nSQL plan:\n{}", handle.explain());
    let sql_outcome = handle.collect()?;
    assert!(quokka::same_result(&sql_outcome.batch, &outcome.batch));
    println!("SQL result matches the hand-built plan");

    // Malformed SQL fails with a positioned error instead of panicking.
    let err = session.sql("SELECT revenu FROM sales").unwrap_err();
    println!("error example: {err}");

    // The same query once more through the lazy DataFrame API — the third
    // frontend, sharing the engine (and the error ergonomics) with the
    // other two. See `examples/dataframe_streaming.rs` for the full tour,
    // including incremental result streaming.
    use quokka::dataframe::{col as dcol, count as dcount, lit as dlit, sum as dsum};
    let frame = session
        .table("products")?
        .join(
            session.table("sales")?.filter(dcol("s_amount").gt(dlit(5.0f64)))?,
            &[("p_id", "s_product")],
            JoinType::Inner,
        )?
        .group_by([dcol("p_category").alias("category")])?
        .agg([dsum(dcol("s_amount")).alias("revenue"), dcount(dcol("s_product")).alias("sales")])?
        .sort([(dcol("revenue"), false)])?;
    let df_outcome = frame.collect()?;
    assert!(quokka::same_result(&df_outcome.batch, &outcome.batch));
    println!("DataFrame result matches the hand-built plan and the SQL text");
    Ok(())
}
