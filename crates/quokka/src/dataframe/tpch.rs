//! TPC-H queries expressed in the lazy [`DataFrame`] API.
//!
//! These are the DataFrame twins of the SQL texts in
//! [`quokka_tpch::queries::sql`], written the way an application would:
//! filters applied at the scans, joins chained left-deep, aggregates named
//! with `.alias(..)`, and existence tests expressed with
//! [`semi_join`](DataFrame::semi_join) / [`anti_join`](DataFrame::anti_join)
//! — the decorrelated form of the SQL twins' `EXISTS` / `IN (SELECT ...)`.
//! Their output columns match the SQL twins so results compare
//! batch-for-batch; the workspace test `tests/dataframe_tpch.rs` keeps all
//! three frontends (DataFrame, SQL, hand-built plans) in parity on the
//! reference executor and the distributed runtime.

use super::{avg, col, count, count_distinct, date, lit, sum, DataFrame};
use crate::{JoinType, QuokkaSession, Result, ScalarValue};
use quokka_common::QuokkaError;
use quokka_plan::expr::Expr;

/// Query numbers available in the DataFrame API: the nine subquery-free
/// queries plus the semi/anti-join shapes Q4, Q16, Q18, and Q22.
pub const DATAFRAME_QUERIES: [usize; 13] = [1, 3, 4, 5, 6, 9, 10, 12, 14, 16, 18, 19, 22];

/// Build TPC-H query `number` as a lazy [`DataFrame`] over `session`'s
/// tables.
pub fn query(session: &QuokkaSession, number: usize) -> Result<DataFrame> {
    match number {
        1 => q1(session),
        3 => q3(session),
        4 => q4(session),
        5 => q5(session),
        6 => q6(session),
        9 => q9(session),
        10 => q10(session),
        12 => q12(session),
        14 => q14(session),
        16 => q16(session),
        18 => q18(session),
        19 => q19(session),
        22 => q22(session),
        other => Err(QuokkaError::PlanError(format!(
            "TPC-H Q{other} is not available in the DataFrame API \
             (supported: {DATAFRAME_QUERIES:?})"
        ))),
    }
}

/// `l_extendedprice * (1 - l_discount)` — the revenue term most queries sum.
fn revenue_term() -> Expr {
    col("l_extendedprice").mul(lit(1.0f64).sub(col("l_discount")))
}

fn q1(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("lineitem")?
        .filter(col("l_shipdate").lt_eq(date(1998, 9, 2)))?
        .group_by([col("l_returnflag"), col("l_linestatus")])?
        .agg([
            sum(col("l_quantity")).alias("sum_qty"),
            sum(col("l_extendedprice")).alias("sum_base_price"),
            sum(revenue_term()).alias("sum_disc_price"),
            sum(revenue_term().mul(lit(1.0f64).add(col("l_tax")))).alias("sum_charge"),
            avg(col("l_quantity")).alias("avg_qty"),
            avg(col("l_extendedprice")).alias("avg_price"),
            avg(col("l_discount")).alias("avg_disc"),
            count(col("l_orderkey")).alias("count_order"),
        ])?
        .sort([(col("l_returnflag"), true), (col("l_linestatus"), true)])
}

fn q3(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("customer")?
        .filter(col("c_mktsegment").eq(lit("BUILDING")))?
        .join(
            session.table("orders")?.filter(col("o_orderdate").lt(date(1995, 3, 15)))?,
            &[("c_custkey", "o_custkey")],
            JoinType::Inner,
        )?
        .join(
            session.table("lineitem")?.filter(col("l_shipdate").gt(date(1995, 3, 15)))?,
            &[("o_orderkey", "l_orderkey")],
            JoinType::Inner,
        )?
        .group_by([col("l_orderkey"), col("o_orderdate"), col("o_shippriority")])?
        .agg([sum(revenue_term()).alias("revenue")])?
        .sort_limit([(col("revenue"), false), (col("o_orderdate"), true)], 10)
}

/// `EXISTS (late lineitem for this order)` as a semi join.
fn q4(session: &QuokkaSession) -> Result<DataFrame> {
    let late_lines =
        session.table("lineitem")?.filter(col("l_commitdate").lt(col("l_receiptdate")))?;
    session
        .table("orders")?
        .filter(
            col("o_orderdate")
                .gt_eq(date(1993, 7, 1))
                .and(col("o_orderdate").lt(date(1993, 10, 1))),
        )?
        .semi_join(late_lines, &[("o_orderkey", "l_orderkey")])?
        .group_by([col("o_orderpriority")])?
        .agg([count(col("o_orderkey")).alias("order_count")])?
        .sort([(col("o_orderpriority"), true)])
}

fn q5(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("region")?
        .filter(col("r_name").eq(lit("ASIA")))?
        .join(session.table("nation")?, &[("r_regionkey", "n_regionkey")], JoinType::Inner)?
        .join(session.table("customer")?, &[("n_nationkey", "c_nationkey")], JoinType::Inner)?
        .join(
            session.table("orders")?.filter(
                col("o_orderdate")
                    .gt_eq(date(1994, 1, 1))
                    .and(col("o_orderdate").lt(date(1995, 1, 1))),
            )?,
            &[("c_custkey", "o_custkey")],
            JoinType::Inner,
        )?
        .join(session.table("lineitem")?, &[("o_orderkey", "l_orderkey")], JoinType::Inner)?
        .join(session.table("supplier")?, &[("l_suppkey", "s_suppkey")], JoinType::Inner)?
        .filter(col("s_nationkey").eq(col("c_nationkey")))?
        .group_by([col("n_name")])?
        .agg([sum(revenue_term()).alias("revenue")])?
        .sort([(col("revenue"), false)])
}

fn q6(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("lineitem")?
        .filter(
            col("l_shipdate")
                .gt_eq(date(1994, 1, 1))
                .and(col("l_shipdate").lt(date(1995, 1, 1)))
                .and(col("l_discount").between(0.05f64, 0.07f64))
                .and(col("l_quantity").lt(lit(24.0f64))),
        )?
        .agg([sum(col("l_extendedprice").mul(col("l_discount"))).alias("revenue")])
}

fn q9(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("part")?
        .filter(col("p_name").like("%green%"))?
        .join(session.table("lineitem")?, &[("p_partkey", "l_partkey")], JoinType::Inner)?
        .join(
            session.table("partsupp")?,
            &[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
            JoinType::Inner,
        )?
        .join(session.table("supplier")?, &[("l_suppkey", "s_suppkey")], JoinType::Inner)?
        .join(session.table("nation")?, &[("s_nationkey", "n_nationkey")], JoinType::Inner)?
        .join(session.table("orders")?, &[("l_orderkey", "o_orderkey")], JoinType::Inner)?
        .group_by([col("n_name").alias("nation"), col("o_orderdate").year().alias("o_year")])?
        .agg([sum(revenue_term().sub(col("ps_supplycost").mul(col("l_quantity"))))
            .alias("sum_profit")])?
        .sort([(col("nation"), true), (col("o_year"), false)])
}

fn q10(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("nation")?
        .join(session.table("customer")?, &[("n_nationkey", "c_nationkey")], JoinType::Inner)?
        .join(
            session.table("orders")?.filter(
                col("o_orderdate")
                    .gt_eq(date(1993, 10, 1))
                    .and(col("o_orderdate").lt(date(1994, 1, 1))),
            )?,
            &[("c_custkey", "o_custkey")],
            JoinType::Inner,
        )?
        .join(
            session.table("lineitem")?.filter(col("l_returnflag").eq(lit("R")))?,
            &[("o_orderkey", "l_orderkey")],
            JoinType::Inner,
        )?
        .group_by([
            col("c_custkey"),
            col("c_name"),
            col("c_acctbal"),
            col("c_phone"),
            col("n_name"),
            col("c_address"),
            col("c_comment"),
        ])?
        .agg([sum(revenue_term()).alias("revenue")])?
        .sort_limit([(col("revenue"), false)], 20)
}

fn q12(session: &QuokkaSession) -> Result<DataFrame> {
    let urgent =
        col("o_orderpriority").eq(lit("1-URGENT")).or(col("o_orderpriority").eq(lit("2-HIGH")));
    session
        .table("orders")?
        .join(
            session.table("lineitem")?.filter(
                col("l_shipmode")
                    .in_list(vec!["MAIL".into(), "SHIP".into()])
                    .and(col("l_commitdate").lt(col("l_receiptdate")))
                    .and(col("l_shipdate").lt(col("l_commitdate")))
                    .and(col("l_receiptdate").gt_eq(date(1994, 1, 1)))
                    .and(col("l_receiptdate").lt(date(1995, 1, 1))),
            )?,
            &[("o_orderkey", "l_orderkey")],
            JoinType::Inner,
        )?
        .group_by([col("l_shipmode")])?
        .agg([
            sum(Expr::case_when(urgent.clone(), lit(1i64), lit(0i64))).alias("high_line_count"),
            sum(Expr::case_when(urgent, lit(0i64), lit(1i64))).alias("low_line_count"),
        ])?
        .sort([(col("l_shipmode"), true)])
}

fn q14(session: &QuokkaSession) -> Result<DataFrame> {
    session
        .table("part")?
        .join(
            session.table("lineitem")?.filter(
                col("l_shipdate")
                    .gt_eq(date(1995, 9, 1))
                    .and(col("l_shipdate").lt(date(1995, 10, 1))),
            )?,
            &[("p_partkey", "l_partkey")],
            JoinType::Inner,
        )?
        .agg([
            sum(Expr::case_when(col("p_type").like("PROMO%"), revenue_term(), lit(0.0f64)))
                .alias("promo"),
            sum(revenue_term()).alias("total"),
        ])?
        .select([lit(100.0f64).mul(col("promo")).div(col("total")).alias("promo_revenue")])
}

/// `NOT IN (suppliers with complaints)` as an anti join.
fn q16(session: &QuokkaSession) -> Result<DataFrame> {
    let sizes: Vec<ScalarValue> =
        [49i64, 14, 23, 45, 19, 3, 36, 9].iter().map(|&v| ScalarValue::Int64(v)).collect();
    let complained = session
        .table("supplier")?
        .filter(col("s_comment").like("%Customer%Complaints%"))?
        .select([col("s_suppkey")])?;
    session
        .table("part")?
        .filter(
            col("p_brand")
                .not_eq(lit("Brand#45"))
                .and(col("p_type").not_like("MEDIUM POLISHED%"))
                .and(col("p_size").in_list(sizes)),
        )?
        .join(session.table("partsupp")?, &[("p_partkey", "ps_partkey")], JoinType::Inner)?
        .anti_join(complained, &[("ps_suppkey", "s_suppkey")])?
        .group_by([col("p_brand"), col("p_type"), col("p_size")])?
        .agg([count_distinct(col("ps_suppkey")).alias("supplier_cnt")])?
        .sort([
            (col("supplier_cnt"), false),
            (col("p_brand"), true),
            (col("p_type"), true),
            (col("p_size"), true),
        ])
}

/// `o_orderkey IN (orders with total quantity > 300)` as a semi join.
fn q18(session: &QuokkaSession) -> Result<DataFrame> {
    let big_orders = session
        .table("lineitem")?
        .group_by([col("l_orderkey").alias("big_orderkey")])?
        .agg([sum(col("l_quantity")).alias("total_qty")])?
        .filter(col("total_qty").gt(lit(300.0f64)))?
        .select([col("big_orderkey")])?;
    session
        .table("customer")?
        .join(
            session.table("orders")?.semi_join(big_orders, &[("o_orderkey", "big_orderkey")])?,
            &[("c_custkey", "o_custkey")],
            JoinType::Inner,
        )?
        .join(session.table("lineitem")?, &[("o_orderkey", "l_orderkey")], JoinType::Inner)?
        .group_by([
            col("c_name"),
            col("c_custkey"),
            col("o_orderkey"),
            col("o_orderdate"),
            col("o_totalprice"),
        ])?
        .agg([sum(col("l_quantity")).alias("sum_qty")])?
        .sort_limit([(col("o_totalprice"), false), (col("o_orderdate"), true)], 100)
}

fn q19(session: &QuokkaSession) -> Result<DataFrame> {
    // The generator spells the air ship modes "AIR" / "REG AIR", matching
    // the hand-built plan (see `quokka_tpch::queries`).
    let branch = |brand: &str, containers: [&str; 4], qty_lo: f64, qty_hi: f64, size_hi: i64| {
        col("p_brand")
            .eq(lit(brand))
            .and(col("p_container").in_list(containers.map(Into::into).to_vec()))
            .and(col("l_quantity").gt_eq(lit(qty_lo)))
            .and(col("l_quantity").lt_eq(lit(qty_hi)))
            .and(col("p_size").between(1i64, size_hi))
    };
    session
        .table("part")?
        .join(
            session.table("lineitem")?.filter(
                col("l_shipmode")
                    .in_list(vec!["AIR".into(), "REG AIR".into()])
                    .and(col("l_shipinstruct").eq(lit("DELIVER IN PERSON"))),
            )?,
            &[("p_partkey", "l_partkey")],
            JoinType::Inner,
        )?
        .filter(
            branch("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], 1.0, 11.0, 5)
                .or(branch(
                    "Brand#23",
                    ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                    10.0,
                    20.0,
                    10,
                ))
                .or(branch("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"], 20.0, 30.0, 15)),
        )?
        .agg([sum(revenue_term()).alias("revenue")])
}

/// `NOT EXISTS (orders for this customer)` as an anti join; the global
/// average balance attaches through a constant-key join, exactly like the
/// decorrelated scalar subquery in the SQL twin.
fn q22(session: &QuokkaSession) -> Result<DataFrame> {
    let codes: Vec<ScalarValue> =
        ["13", "31", "23", "29", "30", "18", "17"].iter().map(|&s| s.into()).collect();
    let average_balance = session
        .table("customer")?
        .select([
            col("c_phone").substr(1, 2).alias("ab_cntrycode"),
            col("c_acctbal").alias("ab_acctbal"),
        ])?
        .filter(col("ab_cntrycode").in_list(codes.clone()).and(col("ab_acctbal").gt(lit(0.0f64))))?
        .agg([avg(col("ab_acctbal")).alias("avg_bal")])?
        .select([col("avg_bal").into(), lit(1i64).alias("jk_build")])?;
    let without_orders = session
        .table("customer")?
        .select([
            col("c_phone").substr(1, 2).alias("cntrycode"),
            col("c_acctbal").into(),
            col("c_custkey").into(),
        ])?
        .filter(col("cntrycode").in_list(codes))?
        .anti_join(
            session.table("orders")?.select([col("o_custkey")])?,
            &[("c_custkey", "o_custkey")],
        )?
        .select([col("cntrycode").into(), col("c_acctbal").into(), lit(1i64).alias("jk_probe")])?;
    average_balance
        .join(without_orders, &[("jk_build", "jk_probe")], JoinType::Inner)?
        .filter(col("c_acctbal").gt(col("avg_bal")))?
        .group_by([col("cntrycode")])?
        .agg([count(col("c_acctbal")).alias("numcust"), sum(col("c_acctbal")).alias("totacctbal")])?
        .sort([(col("cntrycode"), true)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dataframe_queries_build_with_expected_schemas() {
        let session = QuokkaSession::tpch(0.001, 2).unwrap();
        for q in DATAFRAME_QUERIES {
            let frame = query(&session, q).unwrap_or_else(|e| panic!("Q{q} failed to build: {e}"));
            assert!(!frame.schema().is_empty(), "Q{q} has an empty schema");
        }
        assert!(query(&session, 2).is_err());
        assert!(query(&session, 23).is_err());
    }
}
