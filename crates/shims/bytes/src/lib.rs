//! Offline stand-in for the `bytes` crate, covering the API subset this
//! codebase uses: cheaply-cloneable immutable `Bytes`, a growable `BytesMut`
//! builder, and the `Buf`/`BufMut` cursor traits (big-endian, matching the
//! real crate's default `get_*`/`put_*` behaviour).

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte slice (big-endian `get_*`, like the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, count: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, count: usize) {
        *self = &self[count..];
    }
}

/// Write cursor (big-endian `put_*`, like the real crate).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_i32(-5);
        buf.put_i64(-6);
        buf.put_f64(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u16(), 300);
        assert_eq!(data.get_u32(), 70_000);
        assert_eq!(data.get_u64(), 1 << 40);
        assert_eq!(data.get_i32(), -5);
        assert_eq!(data.get_i64(), -6);
        assert_eq!(data.get_f64(), 1.5);
        assert_eq!(data, b"xyz");
    }

    #[test]
    fn bytes_conversions() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], b"ab");
        assert_eq!(Bytes::from("abc".to_string()), b);
        assert_eq!(Bytes::from(vec![97, 98, 99]), b);
        assert!(Bytes::new().is_empty());
    }
}
