/root/repo/target/debug/deps/serde-0319e4be71c10f95.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-0319e4be71c10f95.rmeta: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
