/root/repo/target/debug/examples/fault_recovery-ade99bb3721c18bf.d: examples/fault_recovery.rs

/root/repo/target/debug/examples/libfault_recovery-ade99bb3721c18bf.rmeta: examples/fault_recovery.rs

examples/fault_recovery.rs:
