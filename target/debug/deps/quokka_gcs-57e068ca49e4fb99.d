/root/repo/target/debug/deps/quokka_gcs-57e068ca49e4fb99.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/libquokka_gcs-57e068ca49e4fb99.rlib: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/libquokka_gcs-57e068ca49e4fb99.rmeta: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
