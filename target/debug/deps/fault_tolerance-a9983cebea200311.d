/root/repo/target/debug/deps/fault_tolerance-a9983cebea200311.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/libfault_tolerance-a9983cebea200311.rmeta: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
