/root/repo/target/debug/deps/serde-66efa41a36cde281.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-66efa41a36cde281.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
