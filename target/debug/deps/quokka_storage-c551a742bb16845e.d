/root/repo/target/debug/deps/quokka_storage-c551a742bb16845e.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/libquokka_storage-c551a742bb16845e.rmeta: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
