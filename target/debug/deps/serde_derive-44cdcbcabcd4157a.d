/root/repo/target/debug/deps/serde_derive-44cdcbcabcd4157a.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-44cdcbcabcd4157a.rmeta: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
