/root/repo/target/debug/deps/scheduling_modes-4d64496d4ac2a201.d: tests/scheduling_modes.rs

/root/repo/target/debug/deps/libscheduling_modes-4d64496d4ac2a201.rmeta: tests/scheduling_modes.rs

tests/scheduling_modes.rs:
