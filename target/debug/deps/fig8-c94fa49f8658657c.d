/root/repo/target/debug/deps/fig8-c94fa49f8658657c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c94fa49f8658657c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
