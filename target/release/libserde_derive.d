/root/repo/target/release/libserde_derive.so: /root/repo/crates/shims/serde_derive/src/lib.rs
