//! Deterministic `dbgen`-style TPC-H data generator.
//!
//! The generator is seeded and pure: the same `(scale factor, seed)` pair
//! always produces byte-identical tables, and each table can be generated
//! independently of the others while keeping cross-table relationships
//! consistent (e.g. `l_suppkey` is always one of the four suppliers that
//! `partsupp` lists for `l_partkey`, which Q2/Q9/Q20 rely on).

use crate::schema;
use quokka_batch::datatype::{date_to_days, parse_date};
use quokka_batch::{Batch, Column, Schema};
use quokka_common::rng::DetRng;
use quokka_common::{QuokkaError, Result};
use quokka_plan::catalog::MemoryCatalog;

/// Market segments (customer).
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
/// Order priorities.
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// Ship modes.
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
/// Ship instructions.
const SHIP_INSTRUCT: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
/// Part type prefixes/middles/suffixes.
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
/// Part containers.
const CONTAINER_SYLL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_SYLL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
/// Colours used in part names (Q9 greps for "green", Q20 for "forest").
const COLORS: [&str; 24] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "forest",
    "frosted",
    "ghost",
    "goldenrod",
    "green",
    "honeydew",
    "hot",
];
/// Filler words for comments.
const WORDS: [&str; 20] = [
    "carefully",
    "quickly",
    "furiously",
    "deposits",
    "packages",
    "accounts",
    "instructions",
    "theodolites",
    "platelets",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "requests",
    "dependencies",
    "excuses",
    "asymptotes",
    "courts",
    "dolphins",
    "waters",
];
/// The 25 TPC-H nations and their region keys.
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("RUSSIA", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Deterministic TPC-H data generator.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    sf: f64,
    seed: u64,
    batch_rows: usize,
    /// Emit compressed column encodings (dictionary / bit-packed / XOR)
    /// from generation onwards. On by default; `with_encoding(false)`
    /// restores plain columns for baselines and A/B parity tests.
    encode: bool,
}

impl TpchGenerator {
    /// Create a generator for scale factor `sf` (1.0 ≈ the official 1 GB
    /// scale; the experiments here use 0.005 – 0.05).
    pub fn new(sf: f64, seed: u64) -> Self {
        TpchGenerator { sf, seed, batch_rows: 4096, encode: true }
    }

    /// Override the number of rows per generated batch (one batch = one
    /// input split for the distributed engine).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Toggle compressed column encodings on generated tables (default on).
    pub fn with_encoding(mut self, encode: bool) -> Self {
        self.encode = encode;
        self
    }

    pub fn scale_factor(&self) -> f64 {
        self.sf
    }

    fn scaled(&self, base: f64) -> usize {
        ((base * self.sf).round() as usize).max(1)
    }

    /// Number of rows in `table`.
    pub fn num_rows(&self, table: &str) -> Result<usize> {
        Ok(match table {
            "region" => 5,
            "nation" => 25,
            "supplier" => self.scaled(10_000.0).max(8),
            "customer" => self.scaled(150_000.0).max(30),
            "part" => self.scaled(200_000.0).max(40),
            "partsupp" => self.num_rows("part")? * 4,
            "orders" => self.scaled(1_500_000.0).max(150),
            // lineitem rows are derived per order (1..=7 lines each); this
            // returns the exact count for the configured seed.
            "lineitem" => {
                let orders = self.num_rows("orders")?;
                (1..=orders as u64).map(|o| self.lines_per_order(o) as usize).sum()
            }
            other => return Err(QuokkaError::PlanError(format!("unknown TPC-H table '{other}'"))),
        })
    }

    fn lines_per_order(&self, orderkey: u64) -> u64 {
        let mut rng = DetRng::derive(self.seed ^ 0x11ee, orderkey);
        1 + rng.next_below(7)
    }

    /// The four suppliers that stock a part, mirroring dbgen's formula so
    /// that `lineitem` ⋈ `partsupp` on `(partkey, suppkey)` never loses rows.
    fn supplier_for_part(&self, partkey: i64, slot: i64, num_suppliers: i64) -> i64 {
        ((partkey + slot * (num_suppliers / 4).max(1)) % num_suppliers) + 1
    }

    fn comment(&self, rng: &mut DetRng, words: usize) -> String {
        let mut out = String::new();
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(rng.pick::<&str>(&WORDS));
        }
        out
    }

    /// Generate the named table, chunked into batches of `batch_rows` rows.
    pub fn generate(&self, table: &str) -> Result<Vec<Batch>> {
        let rows = self.generate_rows(table)?;
        Ok(rows)
    }

    /// Register every table in an in-memory catalog (used by the reference
    /// executor and by the engine's table loader).
    pub fn register_all(&self, catalog: &MemoryCatalog) -> Result<()> {
        for table in schema::TABLE_NAMES {
            let schema = schema::table_schema(table).expect("known table");
            let batches = self.generate(table)?;
            catalog.register(table, schema, batches);
        }
        Ok(())
    }

    /// Build a fully-populated catalog.
    pub fn catalog(&self) -> Result<MemoryCatalog> {
        let catalog = MemoryCatalog::new();
        self.register_all(&catalog)?;
        Ok(catalog)
    }

    fn chunk(&self, schema: Schema, columns: Vec<Column>) -> Result<Vec<Batch>> {
        // Encode whole-table columns *before* chunking: every chunk of a
        // dictionary column then shares one dictionary `Arc` (slicing keeps
        // the dictionary and narrows the codes), and bit-packed columns
        // keep a table-wide base/width.
        let columns = if self.encode {
            columns.into_iter().map(|c| c.encode_auto()).collect()
        } else {
            columns
        };
        let batch = Batch::try_new(schema, columns)?;
        Ok(batch.chunks(self.batch_rows))
    }

    fn generate_rows(&self, table: &str) -> Result<Vec<Batch>> {
        match table {
            "region" => self.gen_region(),
            "nation" => self.gen_nation(),
            "supplier" => self.gen_supplier(),
            "customer" => self.gen_customer(),
            "part" => self.gen_part(),
            "partsupp" => self.gen_partsupp(),
            "orders" => self.gen_orders(),
            "lineitem" => self.gen_lineitem(),
            other => Err(QuokkaError::PlanError(format!("unknown TPC-H table '{other}'"))),
        }
    }

    fn gen_region(&self) -> Result<Vec<Batch>> {
        let mut rng = DetRng::derive(self.seed, 1);
        let keys: Vec<i64> = (0..5).collect();
        let names: Vec<String> = REGIONS.iter().map(|s| s.to_string()).collect();
        let comments: Vec<String> = (0..5).map(|_| self.comment(&mut rng, 6)).collect();
        self.chunk(
            schema::region(),
            vec![Column::Int64(keys), Column::Utf8(names), Column::Utf8(comments)],
        )
    }

    fn gen_nation(&self) -> Result<Vec<Batch>> {
        let mut rng = DetRng::derive(self.seed, 2);
        let keys: Vec<i64> = (0..25).collect();
        let names: Vec<String> = NATIONS.iter().map(|(n, _)| n.to_string()).collect();
        let regions: Vec<i64> = NATIONS.iter().map(|(_, r)| *r).collect();
        let comments: Vec<String> = (0..25).map(|_| self.comment(&mut rng, 8)).collect();
        self.chunk(
            schema::nation(),
            vec![
                Column::Int64(keys),
                Column::Utf8(names),
                Column::Int64(regions),
                Column::Utf8(comments),
            ],
        )
    }

    fn gen_supplier(&self) -> Result<Vec<Batch>> {
        let n = self.num_rows("supplier")?;
        let mut rng = DetRng::derive(self.seed, 3);
        let mut keys = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let mut addresses = Vec::with_capacity(n);
        let mut nations = Vec::with_capacity(n);
        let mut phones = Vec::with_capacity(n);
        let mut acctbals = Vec::with_capacity(n);
        let mut comments = Vec::with_capacity(n);
        for i in 1..=n as i64 {
            keys.push(i);
            names.push(format!("Supplier#{i:09}"));
            addresses.push(format!("{} {}", rng.pick(&WORDS), rng.next_below(9999)));
            let nation = rng.next_below(25) as i64;
            nations.push(nation);
            phones.push(format!(
                "{}-{:03}-{:03}-{:04}",
                10 + nation,
                rng.next_below(1000),
                rng.next_below(1000),
                rng.next_below(10_000)
            ));
            acctbals.push(rng.range_f64(-999.99, 9999.99));
            // ~3% of suppliers have the "Customer Complaints" comment Q16
            // filters out.
            let comment = if rng.chance(0.03) {
                format!(
                    "{} Customer some Complaints {}",
                    self.comment(&mut rng, 2),
                    self.comment(&mut rng, 2)
                )
            } else {
                self.comment(&mut rng, 7)
            };
            comments.push(comment);
        }
        self.chunk(
            schema::supplier(),
            vec![
                Column::Int64(keys),
                Column::Utf8(names),
                Column::Utf8(addresses),
                Column::Int64(nations),
                Column::Utf8(phones),
                Column::Float64(acctbals),
                Column::Utf8(comments),
            ],
        )
    }

    fn gen_customer(&self) -> Result<Vec<Batch>> {
        let n = self.num_rows("customer")?;
        let mut rng = DetRng::derive(self.seed, 4);
        let mut keys = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let mut addresses = Vec::with_capacity(n);
        let mut nations = Vec::with_capacity(n);
        let mut phones = Vec::with_capacity(n);
        let mut acctbals = Vec::with_capacity(n);
        let mut segments = Vec::with_capacity(n);
        let mut comments = Vec::with_capacity(n);
        for i in 1..=n as i64 {
            keys.push(i);
            names.push(format!("Customer#{i:09}"));
            addresses.push(format!("{} {}", rng.pick(&WORDS), rng.next_below(9999)));
            let nation = rng.next_below(25) as i64;
            nations.push(nation);
            phones.push(format!(
                "{}-{:03}-{:03}-{:04}",
                10 + nation,
                rng.next_below(1000),
                rng.next_below(1000),
                rng.next_below(10_000)
            ));
            acctbals.push(rng.range_f64(-999.99, 9999.99));
            segments.push(rng.pick(&SEGMENTS).to_string());
            comments.push(self.comment(&mut rng, 10));
        }
        self.chunk(
            schema::customer(),
            vec![
                Column::Int64(keys),
                Column::Utf8(names),
                Column::Utf8(addresses),
                Column::Int64(nations),
                Column::Utf8(phones),
                Column::Float64(acctbals),
                Column::Utf8(segments),
                Column::Utf8(comments),
            ],
        )
    }

    fn gen_part(&self) -> Result<Vec<Batch>> {
        let n = self.num_rows("part")?;
        let mut rng = DetRng::derive(self.seed, 5);
        let mut keys = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let mut mfgrs = Vec::with_capacity(n);
        let mut brands = Vec::with_capacity(n);
        let mut types = Vec::with_capacity(n);
        let mut sizes = Vec::with_capacity(n);
        let mut containers = Vec::with_capacity(n);
        let mut prices = Vec::with_capacity(n);
        let mut comments = Vec::with_capacity(n);
        for i in 1..=n as i64 {
            keys.push(i);
            let c1 = *rng.pick(&COLORS);
            let c2 = *rng.pick(&COLORS);
            let c3 = *rng.pick(&COLORS);
            names.push(format!("{c1} {c2} {c3}"));
            let mfgr = 1 + rng.next_below(5);
            mfgrs.push(format!("Manufacturer#{mfgr}"));
            brands.push(format!("Brand#{}{}", mfgr, 1 + rng.next_below(5)));
            types.push(format!(
                "{} {} {}",
                rng.pick(&TYPE_SYLL1),
                rng.pick(&TYPE_SYLL2),
                rng.pick(&TYPE_SYLL3)
            ));
            sizes.push(1 + rng.next_below(50) as i64);
            containers.push(format!(
                "{} {}",
                rng.pick(&CONTAINER_SYLL1),
                rng.pick(&CONTAINER_SYLL2)
            ));
            prices.push(900.0 + (i % 1000) as f64 * 0.1 + (i / 10 % 200) as f64);
            comments.push(self.comment(&mut rng, 5));
        }
        self.chunk(
            schema::part(),
            vec![
                Column::Int64(keys),
                Column::Utf8(names),
                Column::Utf8(mfgrs),
                Column::Utf8(brands),
                Column::Utf8(types),
                Column::Int64(sizes),
                Column::Utf8(containers),
                Column::Float64(prices),
                Column::Utf8(comments),
            ],
        )
    }

    fn gen_partsupp(&self) -> Result<Vec<Batch>> {
        let parts = self.num_rows("part")? as i64;
        let suppliers = self.num_rows("supplier")? as i64;
        let mut rng = DetRng::derive(self.seed, 6);
        let n = (parts * 4) as usize;
        let mut partkeys = Vec::with_capacity(n);
        let mut suppkeys = Vec::with_capacity(n);
        let mut qtys = Vec::with_capacity(n);
        let mut costs = Vec::with_capacity(n);
        let mut comments = Vec::with_capacity(n);
        for p in 1..=parts {
            for slot in 0..4 {
                partkeys.push(p);
                suppkeys.push(self.supplier_for_part(p, slot, suppliers));
                qtys.push(1 + rng.next_below(9999) as i64);
                costs.push(rng.range_f64(1.0, 1000.0));
                comments.push(self.comment(&mut rng, 6));
            }
        }
        self.chunk(
            schema::partsupp(),
            vec![
                Column::Int64(partkeys),
                Column::Int64(suppkeys),
                Column::Int64(qtys),
                Column::Float64(costs),
                Column::Utf8(comments),
            ],
        )
    }

    fn order_date(&self, rng: &mut DetRng) -> i32 {
        // Orders span 1992-01-01 .. 1998-08-02, as in the spec.
        let start = parse_date("1992-01-01");
        let end = parse_date("1998-08-02");
        start + rng.next_below((end - start) as u64) as i32
    }

    fn gen_orders(&self) -> Result<Vec<Batch>> {
        let n = self.num_rows("orders")?;
        let customers = self.num_rows("customer")? as i64;
        let cutoff = parse_date("1995-06-17");
        let mut keys = Vec::with_capacity(n);
        let mut custs = Vec::with_capacity(n);
        let mut statuses = Vec::with_capacity(n);
        let mut totals = Vec::with_capacity(n);
        let mut dates = Vec::with_capacity(n);
        let mut priorities = Vec::with_capacity(n);
        let mut clerks = Vec::with_capacity(n);
        let mut shippriorities = Vec::with_capacity(n);
        let mut comments = Vec::with_capacity(n);
        for o in 1..=n as u64 {
            // Each order derives its own stream so lineitem generation can
            // reproduce the same order date independently.
            let mut rng = DetRng::derive(self.seed ^ 0x0d0e, o);
            keys.push(o as i64);
            custs.push(1 + rng.next_below(customers as u64) as i64);
            let date = self.order_date(&mut rng);
            dates.push(date);
            statuses.push(
                if date < cutoff {
                    if rng.chance(0.9) {
                        "F"
                    } else {
                        "P"
                    }
                } else {
                    "O"
                }
                .to_string(),
            );
            totals.push(rng.range_f64(1000.0, 400_000.0));
            priorities.push(rng.pick(&PRIORITIES).to_string());
            clerks.push(format!("Clerk#{:09}", 1 + rng.next_below(1000)));
            shippriorities.push(0);
            // ~2% of orders carry the "special ... requests" comment Q13
            // excludes.
            let comment = if rng.chance(0.02) {
                format!(
                    "{} special handling requests {}",
                    self.comment(&mut rng, 2),
                    self.comment(&mut rng, 2)
                )
            } else {
                self.comment(&mut rng, 8)
            };
            comments.push(comment);
        }
        self.chunk(
            schema::orders(),
            vec![
                Column::Int64(keys),
                Column::Int64(custs),
                Column::Utf8(statuses),
                Column::Float64(totals),
                Column::Date(dates),
                Column::Utf8(priorities),
                Column::Utf8(clerks),
                Column::Int64(shippriorities),
                Column::Utf8(comments),
            ],
        )
    }

    fn gen_lineitem(&self) -> Result<Vec<Batch>> {
        let orders = self.num_rows("orders")?;
        let parts = self.num_rows("part")? as i64;
        let suppliers = self.num_rows("supplier")? as i64;
        let cutoff = parse_date("1995-06-17");
        let mut orderkeys = Vec::new();
        let mut partkeys = Vec::new();
        let mut suppkeys = Vec::new();
        let mut linenumbers = Vec::new();
        let mut quantities = Vec::new();
        let mut prices = Vec::new();
        let mut discounts = Vec::new();
        let mut taxes = Vec::new();
        let mut returnflags = Vec::new();
        let mut linestatuses = Vec::new();
        let mut shipdates = Vec::new();
        let mut commitdates = Vec::new();
        let mut receiptdates = Vec::new();
        let mut shipinstructs = Vec::new();
        let mut shipmodes = Vec::new();
        let mut comments = Vec::new();
        for o in 1..=orders as u64 {
            // Recover the order date by replaying the order's own stream
            // (skip the custkey draw, then draw the date exactly as
            // `gen_orders` does).
            let order_date = {
                let mut r = DetRng::derive(self.seed ^ 0x0d0e, o);
                let _ = r.next_u64();
                self.order_date(&mut r)
            };
            let lines = self.lines_per_order(o);
            let mut rng = DetRng::derive(self.seed ^ 0x11f0, o);
            for line in 1..=lines {
                orderkeys.push(o as i64);
                let partkey = 1 + rng.next_below(parts as u64) as i64;
                partkeys.push(partkey);
                suppkeys.push(self.supplier_for_part(partkey, rng.next_below(4) as i64, suppliers));
                linenumbers.push(line as i64);
                let qty = 1.0 + rng.next_below(50) as f64;
                quantities.push(qty);
                let retail = 900.0 + (partkey % 1000) as f64 * 0.1 + (partkey / 10 % 200) as f64;
                prices.push(qty * retail);
                discounts.push((rng.next_below(11) as f64) / 100.0);
                taxes.push((rng.next_below(9) as f64) / 100.0);
                let shipdate = order_date + 1 + rng.next_below(121) as i32;
                let commitdate = order_date + 30 + rng.next_below(61) as i32;
                let receiptdate = shipdate + 1 + rng.next_below(30) as i32;
                shipdates.push(shipdate);
                commitdates.push(commitdate);
                receiptdates.push(receiptdate);
                returnflags.push(
                    if receiptdate <= cutoff {
                        if rng.chance(0.5) {
                            "R"
                        } else {
                            "A"
                        }
                    } else {
                        "N"
                    }
                    .to_string(),
                );
                linestatuses.push(if shipdate > cutoff { "O" } else { "F" }.to_string());
                shipinstructs.push(rng.pick(&SHIP_INSTRUCT).to_string());
                shipmodes.push(rng.pick(&SHIP_MODES).to_string());
                comments.push(self.comment(&mut rng, 4));
            }
        }
        self.chunk(
            schema::lineitem(),
            vec![
                Column::Int64(orderkeys),
                Column::Int64(partkeys),
                Column::Int64(suppkeys),
                Column::Int64(linenumbers),
                Column::Float64(quantities),
                Column::Float64(prices),
                Column::Float64(discounts),
                Column::Float64(taxes),
                Column::Utf8(returnflags),
                Column::Utf8(linestatuses),
                Column::Date(shipdates),
                Column::Date(commitdates),
                Column::Date(receiptdates),
                Column::Utf8(shipinstructs),
                Column::Utf8(shipmodes),
                Column::Utf8(comments),
            ],
        )
    }
}

/// Convenience: days-since-epoch for the canonical TPC-H "current date".
pub fn tpch_current_date() -> i32 {
    date_to_days(1998, 12, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_plan::catalog::Catalog;

    fn generator() -> TpchGenerator {
        TpchGenerator::new(0.002, 42).with_batch_rows(512)
    }

    /// Concatenated table with every column decoded to its plain form, for
    /// tests that inspect values through the typed slice accessors.
    fn plain_concat(batches: &[Batch]) -> Batch {
        let batch = Batch::concat(batches).unwrap();
        Batch::try_new(
            batch.schema().clone(),
            batch.columns().iter().map(|c| c.decoded().into_owned()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn row_counts_scale_with_sf() {
        let small = TpchGenerator::new(0.002, 1);
        let large = TpchGenerator::new(0.01, 1);
        assert!(small.num_rows("orders").unwrap() < large.num_rows("orders").unwrap());
        assert_eq!(small.num_rows("region").unwrap(), 5);
        assert_eq!(small.num_rows("nation").unwrap(), 25);
        assert_eq!(small.num_rows("partsupp").unwrap(), small.num_rows("part").unwrap() * 4);
        assert!(small.num_rows("unknown").is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generator().generate("orders").unwrap();
        let b = generator().generate("orders").unwrap();
        assert_eq!(a, b);
        let c = TpchGenerator::new(0.002, 43).generate("orders").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_tables_match_schemas_and_counts() {
        let generator = generator();
        for table in schema::TABLE_NAMES {
            let batches = generator.generate(table).unwrap();
            let rows: usize = batches.iter().map(Batch::num_rows).sum();
            assert_eq!(rows, generator.num_rows(table).unwrap(), "row count for {table}");
            let expected = schema::table_schema(table).unwrap();
            for batch in &batches {
                assert_eq!(batch.schema(), &expected, "schema for {table}");
                assert!(batch.num_rows() <= 512);
            }
        }
    }

    #[test]
    fn lineitem_keys_reference_partsupp_pairs() {
        let generator = generator();
        let catalog = generator.catalog().unwrap();
        let partsupp = Batch::concat(&catalog.table_batches("partsupp").unwrap()).unwrap();
        let mut valid_pairs = std::collections::HashSet::new();
        for row in 0..partsupp.num_rows() {
            let p = partsupp.value(row, 0).as_i64().unwrap();
            let s = partsupp.value(row, 1).as_i64().unwrap();
            valid_pairs.insert((p, s));
        }
        let lineitem = Batch::concat(&catalog.table_batches("lineitem").unwrap()).unwrap();
        for row in (0..lineitem.num_rows()).step_by(97) {
            let p = lineitem.value(row, 1).as_i64().unwrap();
            let s = lineitem.value(row, 2).as_i64().unwrap();
            assert!(valid_pairs.contains(&(p, s)), "lineitem ({p},{s}) not in partsupp");
        }
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let generator = generator();
        let catalog = generator.catalog().unwrap();
        let customers = generator.num_rows("customer").unwrap() as i64;
        let orders = Batch::concat(&catalog.table_batches("orders").unwrap()).unwrap();
        for row in (0..orders.num_rows()).step_by(13) {
            let cust = orders.value(row, 1).as_i64().unwrap();
            assert!(cust >= 1 && cust <= customers);
        }
        let nation = Batch::concat(&catalog.table_batches("nation").unwrap()).unwrap();
        for row in 0..nation.num_rows() {
            let region = nation.value(row, 2).as_i64().unwrap();
            assert!((0..5).contains(&region));
        }
    }

    #[test]
    fn predicate_keywords_are_present_but_selective() {
        let generator = generator();
        let catalog = generator.catalog().unwrap();
        let part = plain_concat(&catalog.table_batches("part").unwrap());
        let names = part.as_strs("p_name").unwrap();
        let green = names.iter().filter(|n| n.contains("green")).count();
        assert!(green > 0 && green < names.len());
        let forest = names.iter().filter(|n| n.starts_with("forest")).count();
        assert!(forest > 0);

        let orders = plain_concat(&catalog.table_batches("orders").unwrap());
        let comments = orders.as_strs("o_comment").unwrap();
        let special = comments.iter().filter(|c| c.contains("special")).count();
        assert!(special > 0 && special * 5 < comments.len());
    }

    #[test]
    fn encoding_toggle_changes_representation_not_content() {
        let encoded = generator().generate("lineitem").unwrap();
        let plain = generator().with_encoding(false).generate("lineitem").unwrap();
        assert_eq!(encoded.len(), plain.len());
        // Logical content is identical batch by batch...
        for (e, p) in encoded.iter().zip(&plain) {
            assert_eq!(e, p);
        }
        // ...but the encoded tables are physically smaller, and low-
        // cardinality string columns dictionary-encode with one dictionary
        // shared across all chunks of the table.
        let encoded_bytes: usize = encoded.iter().map(Batch::memory_bytes).sum();
        let plain_bytes: usize = plain.iter().map(Batch::memory_bytes).sum();
        assert!(
            encoded_bytes * 3 < plain_bytes * 2,
            "expected >=1.5x compression on lineitem: {encoded_bytes} vs {plain_bytes}"
        );
        let shipmode = encoded[0].schema().index_of("l_shipmode").unwrap();
        let (first, second) = match (encoded[0].column(shipmode), encoded[1].column(shipmode)) {
            (Column::Dict(a), Column::Dict(b)) => (a, b),
            other => panic!("l_shipmode should be dictionary-encoded, got {other:?}"),
        };
        assert!(first.same_dict(second), "chunks must share one dictionary");
    }

    #[test]
    fn dates_are_consistent() {
        let generator = generator();
        let lineitem = plain_concat(&generator.generate("lineitem").unwrap());
        let ship = lineitem.as_dates("l_shipdate").unwrap();
        let receipt = lineitem.as_dates("l_receiptdate").unwrap();
        for i in (0..ship.len()).step_by(53) {
            assert!(receipt[i] > ship[i], "receipt date must follow ship date");
        }
        let lo = parse_date("1992-01-01");
        let hi = parse_date("1999-01-01");
        for &d in ship.iter().step_by(71) {
            assert!(d >= lo && d <= hi);
        }
    }
}
