//! Streaming smoke bench: time-to-first-batch vs time-to-last-batch.
//!
//! Runs TPC-H Q1 at SF 0.01 through the streaming API and records when the
//! first result batch reaches the client versus when the last one does.
//! Q1's sink is an ORDER BY (a blocking operator), so its first batch
//! necessarily arrives at the end — it is the honest baseline. The same
//! bench also runs Q1's *pre-aggregation scan* (the lineitem filter feeding
//! Q1), whose sink is the pipelined scan stage: there the first batch lands
//! in a small fraction of the total runtime, which is the streaming win
//! this harness quantifies and gates.
//!
//! Results go to `BENCH_streaming.json`. The run **fails** (non-zero exit)
//! if the pipelined query's time-to-first-batch is not well below its
//! time-to-last-batch, or if streamed rows diverge from the reference
//! executor.
//!
//! Run with: `cargo run --release -p quokka-bench --bin streaming`
//!
//! Environment knobs: `QUOKKA_SF` (default 0.01), `QUOKKA_WORKERS` (default
//! 4), `QUOKKA_BENCH_OUT` (default `BENCH_streaming.json`).

use quokka::dataframe::{col, date, NamedExpr};
use quokka::{CostModelConfig, DataFrame, EngineConfig, QuokkaSession};
use std::time::{Duration, Instant};

struct Entry {
    name: &'static str,
    first_batch: Duration,
    last_batch: Duration,
    batches: u64,
    rows: u64,
    engine_first_batch: Duration,
    runtime: Duration,
}

impl Entry {
    /// Fraction of the total stream duration spent before the first batch.
    fn first_fraction(&self) -> f64 {
        if self.last_batch.is_zero() {
            1.0
        } else {
            self.first_batch.as_secs_f64() / self.last_batch.as_secs_f64()
        }
    }
}

fn measure(name: &'static str, frame: &DataFrame) -> Entry {
    let expected_rows = frame.collect_reference().expect("reference run").num_rows() as u64;
    let start = Instant::now();
    let mut stream = frame.stream().expect("start streaming");
    let mut first_batch = Duration::ZERO;
    let mut last_batch = Duration::ZERO;
    let mut batches = 0u64;
    let mut rows = 0u64;
    while let Some(batch) = stream.next_batch().expect("stream batch") {
        let at = start.elapsed();
        if batches == 0 {
            first_batch = at;
        }
        last_batch = at;
        batches += 1;
        rows += batch.num_rows() as u64;
    }
    assert_eq!(rows, expected_rows, "{name}: streamed rows diverge from the reference");
    let metrics = stream.metrics().expect("finished stream").clone();
    Entry {
        name,
        first_batch,
        last_batch,
        batches,
        rows,
        engine_first_batch: metrics.time_to_first_batch.unwrap_or(metrics.runtime),
        runtime: metrics.runtime,
    }
}

fn main() {
    let scale_factor = std::env::var("QUOKKA_SF").ok().and_then(|v| v.parse().ok()).unwrap_or(0.01);
    let workers = std::env::var("QUOKKA_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_streaming.json".to_string());

    eprintln!("[streaming] generating TPC-H data at SF {scale_factor} ...");
    // A scaled cost model charges realistic (shrunk) data-path delays, so
    // the first/last spread reflects actual pipelining rather than noise;
    // smaller input splits give the scan stage enough tasks to stream over.
    let config = EngineConfig::quokka(workers).with_cost(CostModelConfig::scaled(0.5));
    let session = QuokkaSession::new(config);
    quokka::TpchGenerator::new(scale_factor, 0xC0FFEE)
        .with_batch_rows(2048)
        .register_all(session.catalog())
        .expect("generate TPC-H data");

    // Q1 as written: ORDER BY sink, fully blocking.
    let q1 = quokka::dataframe::tpch::query(&session, 1).expect("Q1 frame");
    // Q1's pre-aggregation scan: the same lineitem filter, but the sink is
    // the pipelined scan stage — every committed scan task streams out.
    let q1_scan = session
        .table("lineitem")
        .expect("lineitem")
        .filter(col("l_shipdate").lt_eq(date(1998, 9, 2)))
        .expect("filter")
        .select(
            ["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice"]
                .map(|c| NamedExpr::from(col(c))),
        )
        .expect("select");

    let entries =
        [measure("q1_sorted (blocking sink)", &q1), measure("q1_scan (pipelined sink)", &q1_scan)];
    for e in &entries {
        eprintln!(
            "{:<26} first {:>9.3?}  last {:>9.3?}  ({:>5.1}% of stream)  batches {:>4}  rows {:>7}",
            e.name,
            e.first_batch,
            e.last_batch,
            e.first_fraction() * 100.0,
            e.batches,
            e.rows,
        );
    }

    // Hand-rolled JSON (no serde in this environment).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale_factor\": {scale_factor},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"queries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"time_to_first_batch_ms\": {:.3}, \
             \"time_to_last_batch_ms\": {:.3}, \"first_fraction\": {:.4}, \
             \"batches\": {}, \"rows\": {}, \"engine_first_batch_ms\": {:.3}, \
             \"engine_runtime_ms\": {:.3}}}{}\n",
            e.name,
            e.first_batch.as_secs_f64() * 1e3,
            e.last_batch.as_secs_f64() * 1e3,
            e.first_fraction(),
            e.batches,
            e.rows,
            e.engine_first_batch.as_secs_f64() * 1e3,
            e.runtime.as_secs_f64() * 1e3,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    // Regression gates.
    let scan = &entries[1];
    assert!(scan.batches >= 4, "pipelined sink must stream multiple batches, got {}", scan.batches);
    assert!(
        scan.first_fraction() < 0.5,
        "streaming win regressed: first batch at {:.1}% of the stream (expected < 50%)",
        scan.first_fraction() * 100.0
    );
    assert!(
        scan.engine_first_batch < scan.runtime,
        "engine-side first emission must precede completion"
    );
    eprintln!(
        "[streaming] gate passed: pipelined first batch at {:.1}% of the stream \
         (blocking baseline: {:.1}%)",
        scan.first_fraction() * 100.0,
        entries[0].first_fraction() * 100.0
    );
}
