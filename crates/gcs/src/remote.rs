//! The remote-GCS protocol: multi-process workers talk to the driver's
//! authoritative [`KvStore`] over TCP.
//!
//! In the paper's deployment the GCS is a Redis instance on the head node
//! and every TaskManager process talks to it over the network. This module
//! reproduces that shape for process-mode clusters: the driver process owns
//! the one real `KvStore`; worker processes construct their `KvStore` with
//! [`KvStore::remote`], which routes every operation through a pooled TCP
//! connection as one request/response frame. The typed GCS tables layer
//! ([`Gcs`](crate::Gcs)) is completely unaware of which backend it runs on.
//!
//! Transactions keep their optimistic-concurrency semantics: reads record
//! the versions they observed client-side, and the commit ships the whole
//! `(read set, write set, delete set)` to the driver, which validates the
//! versions and applies the writes atomically ([`KvStore::commit_sets`]) —
//! the same `WATCH`/`MULTI`/`EXEC` discipline as the local path.
//!
//! Framing is the transport's length-prefixed style: `u32` length, then a
//! payload built with [`quokka_batch::wire`] primitives. The first payload
//! byte is the opcode. Responses start with a status byte (0 = ok, 1 =
//! typed error). The opcode space is shared with the engine's control
//! server (durable-store access, sink forwarding, heartbeats), which
//! delegates the `OP_KV_*` range to [`apply_kv`] here.

use crate::kv::KvStore;
use bytes::Bytes;
use quokka_batch::wire::{self, WireReader};
use quokka_common::{QuokkaError, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;

// --- opcodes -------------------------------------------------------------

pub const OP_KV_GET: u8 = 1;
pub const OP_KV_PUT: u8 = 2;
pub const OP_KV_DELETE: u8 = 3;
pub const OP_KV_CONTAINS: u8 = 4;
pub const OP_KV_SCAN_PREFIX: u8 = 5;
pub const OP_KV_COUNT_PREFIX: u8 = 6;
pub const OP_KV_COMMIT: u8 = 7;
pub const OP_KV_LEN: u8 = 8;
pub const OP_KV_BYTE_SIZE: u8 = 9;
pub const OP_KV_CLEAR: u8 = 10;
/// Durable-object-store access (served by the engine's control server).
pub const OP_DURABLE_GET: u8 = 20;
pub const OP_DURABLE_PUT: u8 = 21;
pub const OP_DURABLE_CONTAINS: u8 = 22;
pub const OP_DURABLE_LIST: u8 = 23;
/// Forward one committed sink partition to the driver's result stream.
pub const OP_SINK_EMIT: u8 = 30;
/// Report the liveness counters of a process's hosted workers.
pub const OP_HEARTBEAT: u8 = 31;
/// Report per-peer wire statistics when a worker process exits.
pub const OP_WIRE_STATS: u8 = 32;

/// Error kinds carried in error responses (status byte 1).
const ERR_GENERIC: u8 = 0;
const ERR_ABORTED: u8 = 1;
const ERR_NOT_FOUND: u8 = 2;

/// Largest accepted control frame (a corruption guard, far above any real
/// GCS value or table split).
const MAX_CONTROL_FRAME: u32 = 1 << 30;

// --- framing -------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF before the
/// length prefix (the peer closed the connection).
pub fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_CONTROL_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("control frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Build an ok response: status byte then `build`'s payload.
pub fn ok_frame(build: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut out = vec![0u8];
    build(&mut out);
    out
}

/// Build an error response carrying a typed error.
pub fn err_frame(error: &QuokkaError) -> Vec<u8> {
    let mut out = vec![1u8];
    let kind = match error {
        QuokkaError::TransactionAborted(_) => ERR_ABORTED,
        QuokkaError::NotFound(_) => ERR_NOT_FOUND,
        _ => ERR_GENERIC,
    };
    wire::put_u8(&mut out, kind);
    wire::put_str(&mut out, &error.to_string());
    out
}

fn decode_response(resp: Vec<u8>) -> Result<Vec<u8>> {
    let mut r = WireReader::new(&resp);
    match r.u8()? {
        0 => {
            let at = r.position();
            Ok(resp[at..].to_vec())
        }
        1 => {
            let kind = r.u8()?;
            let message = r.str()?;
            Err(match kind {
                ERR_ABORTED => QuokkaError::TransactionAborted(message),
                ERR_NOT_FOUND => QuokkaError::NotFound(message),
                _ => QuokkaError::Transient(format!("gcs rpc: {message}")),
            })
        }
        other => Err(QuokkaError::Transient(format!("gcs rpc: bad status byte {other}"))),
    }
}

// --- client --------------------------------------------------------------

/// A pooled synchronous TCP client for the driver's control server. One
/// request occupies one connection; concurrent callers each draw their own
/// connection from the pool (dialing a fresh one when empty), so worker
/// threads never serialize behind each other.
pub struct ControlClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
}

impl std::fmt::Debug for ControlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlClient").field("addr", &self.addr).finish()
    }
}

impl ControlClient {
    /// Connect to the driver's control server, failing fast if it is not
    /// reachable.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let probe = TcpStream::connect(addr)
            .map_err(|e| QuokkaError::Transient(format!("control connect to {addr}: {e}")))?;
        let _ = probe.set_nodelay(true);
        Ok(ControlClient { addr, pool: Mutex::new(vec![probe]) })
    }

    /// The driver address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn checkout(&self) -> Result<TcpStream> {
        if let Some(conn) = self.pool.lock().expect("control pool poisoned").pop() {
            return Ok(conn);
        }
        let conn = TcpStream::connect(self.addr).map_err(|e| {
            QuokkaError::Transient(format!("control connect to {}: {e}", self.addr))
        })?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    /// Send one request frame and await its response frame. The opcode is
    /// the first payload byte.
    pub fn request(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut conn = self.checkout()?;
        let io = |e: std::io::Error| QuokkaError::Transient(format!("control rpc: {e}"));
        write_frame(&mut conn, payload).map_err(io)?;
        let resp = read_frame(&mut conn)
            .map_err(io)?
            .ok_or_else(|| QuokkaError::Transient("control rpc: server closed".to_string()))?;
        self.pool.lock().expect("control pool poisoned").push(conn);
        decode_response(resp)
    }
}

// --- remote KvStore operations (client side) -----------------------------

pub(crate) fn remote_get(c: &ControlClient, key: &str) -> Result<Option<(Bytes, u64)>> {
    let mut req = vec![OP_KV_GET];
    wire::put_str(&mut req, key);
    let resp = c.request(&req)?;
    let mut r = WireReader::new(&resp);
    if r.u8()? == 0 {
        return Ok(None);
    }
    let value = Bytes::from(r.bytes()?.to_vec());
    let version = r.u64()?;
    Ok(Some((value, version)))
}

pub(crate) fn remote_put(c: &ControlClient, key: &str, value: &[u8]) -> Result<()> {
    let mut req = vec![OP_KV_PUT];
    wire::put_str(&mut req, key);
    wire::put_bytes(&mut req, value);
    c.request(&req).map(|_| ())
}

pub(crate) fn remote_delete(c: &ControlClient, key: &str) -> Result<bool> {
    let mut req = vec![OP_KV_DELETE];
    wire::put_str(&mut req, key);
    let resp = c.request(&req)?;
    Ok(WireReader::new(&resp).u8()? == 1)
}

pub(crate) fn remote_contains(c: &ControlClient, key: &str) -> Result<bool> {
    let mut req = vec![OP_KV_CONTAINS];
    wire::put_str(&mut req, key);
    let resp = c.request(&req)?;
    Ok(WireReader::new(&resp).u8()? == 1)
}

pub(crate) fn remote_scan_prefix(c: &ControlClient, prefix: &str) -> Result<Vec<(String, Bytes)>> {
    let mut req = vec![OP_KV_SCAN_PREFIX];
    wire::put_str(&mut req, prefix);
    let resp = c.request(&req)?;
    let mut r = WireReader::new(&resp);
    let count = r.u32()? as usize;
    let mut rows = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let key = r.str()?.to_string();
        let value = Bytes::from(r.bytes()?.to_vec());
        rows.push((key, value));
    }
    Ok(rows)
}

pub(crate) fn remote_count_prefix(c: &ControlClient, prefix: &str) -> Result<usize> {
    let mut req = vec![OP_KV_COUNT_PREFIX];
    wire::put_str(&mut req, prefix);
    let resp = c.request(&req)?;
    Ok(WireReader::new(&resp).u64()? as usize)
}

pub(crate) fn remote_commit(
    c: &ControlClient,
    read_set: &[(String, u64)],
    write_set: &[(String, Bytes)],
    delete_set: &[String],
) -> Result<()> {
    let mut req = vec![OP_KV_COMMIT];
    wire::put_u32(&mut req, read_set.len() as u32);
    for (key, version) in read_set {
        wire::put_str(&mut req, key);
        wire::put_u64(&mut req, *version);
    }
    wire::put_u32(&mut req, write_set.len() as u32);
    for (key, value) in write_set {
        wire::put_str(&mut req, key);
        wire::put_bytes(&mut req, value);
    }
    wire::put_u32(&mut req, delete_set.len() as u32);
    for key in delete_set {
        wire::put_str(&mut req, key);
    }
    c.request(&req).map(|_| ())
}

pub(crate) fn remote_u64(c: &ControlClient, op: u8) -> Result<u64> {
    let resp = c.request(&[op])?;
    WireReader::new(&resp).u64()
}

pub(crate) fn remote_clear(c: &ControlClient) -> Result<()> {
    c.request(&[OP_KV_CLEAR]).map(|_| ())
}

// --- server-side dispatch ------------------------------------------------

/// Apply one `OP_KV_*` request against the authoritative local store and
/// return the response frame. Opcodes outside the KV range return `None`
/// so the caller (the engine's control server) can handle them.
pub fn apply_kv(payload: &[u8], kv: &KvStore) -> Option<Vec<u8>> {
    let mut r = WireReader::new(payload);
    let op = r.u8().ok()?;
    let result: Result<Vec<u8>> = (|| match op {
        OP_KV_GET => {
            let key = r.str()?;
            Ok(ok_frame(|out| match kv.get(&key) {
                Some((value, version)) => {
                    wire::put_u8(out, 1);
                    wire::put_bytes(out, &value);
                    wire::put_u64(out, version);
                }
                None => wire::put_u8(out, 0),
            }))
        }
        OP_KV_PUT => {
            let key = r.str()?;
            let value = r.bytes()?.to_vec();
            kv.put(key, Bytes::from(value));
            Ok(ok_frame(|_| {}))
        }
        OP_KV_DELETE => {
            let key = r.str()?;
            let removed = kv.delete(&key);
            Ok(ok_frame(|out| wire::put_u8(out, removed as u8)))
        }
        OP_KV_CONTAINS => {
            let key = r.str()?;
            let present = kv.contains(&key);
            Ok(ok_frame(|out| wire::put_u8(out, present as u8)))
        }
        OP_KV_SCAN_PREFIX => {
            let prefix = r.str()?;
            let rows = kv.scan_prefix(&prefix);
            Ok(ok_frame(|out| {
                wire::put_u32(out, rows.len() as u32);
                for (key, value) in rows {
                    wire::put_str(out, &key);
                    wire::put_bytes(out, &value);
                }
            }))
        }
        OP_KV_COUNT_PREFIX => {
            let prefix = r.str()?;
            let count = kv.count_prefix(&prefix) as u64;
            Ok(ok_frame(|out| wire::put_u64(out, count)))
        }
        OP_KV_COMMIT => {
            let reads = r.u32()? as usize;
            let mut read_set = Vec::with_capacity(reads.min(1024));
            for _ in 0..reads {
                let key = r.str()?.to_string();
                let version = r.u64()?;
                read_set.push((key, version));
            }
            let writes = r.u32()? as usize;
            let mut write_set = Vec::with_capacity(writes.min(1024));
            for _ in 0..writes {
                let key = r.str()?.to_string();
                let value = r.bytes()?.to_vec();
                write_set.push((key, Bytes::from(value)));
            }
            let deletes = r.u32()? as usize;
            let mut delete_set = Vec::with_capacity(deletes.min(1024));
            for _ in 0..deletes {
                delete_set.push(r.str()?.to_string());
            }
            kv.commit_sets(read_set, write_set, delete_set)?;
            Ok(ok_frame(|_| {}))
        }
        OP_KV_LEN => Ok(ok_frame(|out| wire::put_u64(out, kv.len() as u64))),
        OP_KV_BYTE_SIZE => Ok(ok_frame(|out| wire::put_u64(out, kv.byte_size() as u64))),
        OP_KV_CLEAR => {
            kv.clear();
            Ok(ok_frame(|_| {}))
        }
        _ => Err(QuokkaError::Internal(format!("not a kv opcode: {op}"))),
    })();
    match op {
        OP_KV_GET..=OP_KV_CLEAR => Some(result.unwrap_or_else(|e| err_frame(&e))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;

    /// A minimal driver: accept connections, answer `OP_KV_*` frames against
    /// one authoritative local store. This is the same dispatch the engine's
    /// control server uses.
    fn spawn_server(kv: Arc<KvStore>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || {
                    while let Ok(Some(req)) = read_frame(&mut conn) {
                        let resp = apply_kv(&req, &kv)
                            .unwrap_or_else(|| err_frame(&QuokkaError::Internal("bad op".into())));
                        if write_frame(&mut conn, &resp).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn remote_store_mirrors_local_semantics() {
        let authority = Arc::new(KvStore::default());
        let addr = spawn_server(Arc::clone(&authority));
        let client = Arc::new(ControlClient::connect(addr).expect("connect"));
        let kv = KvStore::remote(client);
        assert!(kv.is_remote());

        // Point ops round-trip and are visible on the authority.
        kv.put("a", Bytes::from_static(b"1"));
        kv.put("lineage/1", Bytes::from_static(b"x"));
        kv.put("lineage/2", Bytes::from_static(b"y"));
        assert_eq!(kv.get_value("a").unwrap(), Bytes::from_static(b"1"));
        assert_eq!(authority.get_value("a").unwrap(), Bytes::from_static(b"1"));
        assert!(kv.contains("a"));
        assert!(!kv.contains("missing"));
        assert_eq!(kv.count_prefix("lineage/"), 2);
        let rows = kv.scan_prefix("lineage/");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "lineage/1");
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.byte_size(), authority.byte_size());
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));

        // Versions travel with reads.
        let (_, v1) = kv.get("lineage/1").unwrap();
        kv.put("lineage/1", Bytes::from_static(b"x2"));
        let (_, v2) = kv.get("lineage/1").unwrap();
        assert!(v2 > v1);

        kv.clear();
        assert!(authority.is_empty());
        assert!(kv.is_empty());
    }

    #[test]
    fn remote_transactions_validate_versions_on_the_driver() {
        let authority = Arc::new(KvStore::default());
        let addr = spawn_server(Arc::clone(&authority));
        let client = Arc::new(ControlClient::connect(addr).expect("connect"));
        let kv = KvStore::remote(client);

        authority.put("counter", Bytes::from_static(b"0"));

        // A clean commit applies the write set atomically on the driver.
        kv.with_transaction(0, |txn| {
            let _ = txn.get("counter");
            txn.put("counter", Bytes::from_static(b"1"));
            txn.put("extra", Bytes::from_static(b"e"));
            Ok(())
        })
        .expect("commit");
        assert_eq!(authority.get_value("counter").unwrap(), Bytes::from_static(b"1"));
        assert_eq!(authority.get_value("extra").unwrap(), Bytes::from_static(b"e"));

        // A conflicting write on the authority aborts the proxy's commit.
        let mut txn = kv.begin();
        let _ = txn.get("counter");
        authority.put("counter", Bytes::from_static(b"9"));
        txn.put("counter", Bytes::from_static(b"2"));
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, QuokkaError::TransactionAborted(_)));
        assert_eq!(authority.get_value("counter").unwrap(), Bytes::from_static(b"9"));

        // Deletes ride in the same commit.
        kv.with_transaction(4, |txn| {
            let _ = txn.get("counter");
            txn.delete("extra");
            Ok(())
        })
        .expect("commit with delete");
        assert!(!authority.contains("extra"));
    }

    #[test]
    fn concurrent_remote_writers_serialize_through_commits() {
        let authority = Arc::new(KvStore::default());
        let addr = spawn_server(Arc::clone(&authority));
        authority.put("n", Bytes::from_static(b"0"));
        // 4 proxy stores (one per simulated worker process) increment a
        // shared counter with CAS semantics; every increment must land.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let client = Arc::new(ControlClient::connect(addr).expect("connect"));
                std::thread::spawn(move || {
                    let kv = KvStore::remote(client);
                    for _ in 0..25 {
                        kv.with_transaction(1000, |txn| {
                            let current = txn.get("n").unwrap();
                            let value: u64 =
                                std::str::from_utf8(&current).unwrap().parse().unwrap();
                            txn.put("n", Bytes::from((value + 1).to_string()));
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 =
            std::str::from_utf8(&authority.get_value("n").unwrap()).unwrap().parse().unwrap();
        assert_eq!(total, 100);
    }
}
