/root/repo/target/debug/deps/fig9-a24c9b6dc7f11d28.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-a24c9b6dc7f11d28: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
