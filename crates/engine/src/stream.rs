//! Incremental result delivery: [`BatchStream`].
//!
//! The sink stage no longer buffers the full query result. Every committed
//! sink task sends its output batches over a channel the moment its lineage
//! commits, and [`BatchStream`] is the consuming end the caller pulls from:
//! the first result batch is visible while upstream stages are still
//! executing.
//!
//! Fault tolerance interacts with streaming in two ways:
//!
//! * **Intra-query recovery** (write-ahead lineage, spooling, checkpointing):
//!   a rewound sink channel re-executes its committed tasks by replaying the
//!   logged lineage, so a re-emitted partition carries the same task name
//!   and identical content as the original. The stream deduplicates by task
//!   name — a few bytes of metadata per emission — instead of holding the
//!   batches themselves.
//! * **The restart baseline** (no intra-query recovery): the whole query
//!   reruns from scratch, which voids everything emitted by the first
//!   attempt. [`BatchStream::collect`] discards its accumulated batches and
//!   keeps going; the incremental [`BatchStream::next_batch`] can only do
//!   that if nothing was handed to the caller yet — once a batch has been
//!   observed, a restart surfaces as an error (the engine cannot retract
//!   delivered rows).

use quokka_batch::{Batch, Schema};
use quokka_common::ids::TaskName;
use quokka_common::metrics::QueryMetrics;
use quokka_common::{QuokkaError, Result};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::mpsc::Receiver;

use crate::runtime::QueryOutcome;

/// One message from the engine to the consuming [`BatchStream`].
#[derive(Debug)]
pub enum StreamEvent {
    /// A sink task committed; `batches` is its output partition.
    Batch { name: TaskName, batches: Vec<Batch> },
    /// The restart baseline is rerunning the query from scratch; everything
    /// emitted so far is void.
    Restarted,
    /// The query completed; no further batches will arrive.
    Finished(Box<QueryMetrics>),
    /// The query failed with a typed error (deadline expiry, cancellation,
    /// exhausted retries, internal errors, ...).
    Failed(QuokkaError),
}

/// A pull-based stream of result batches from a running query.
///
/// Produced by [`QueryRunner::stream`](crate::QueryRunner::stream) (and the
/// facade crate's `QueryHandle::stream`). The query executes on background
/// threads; each [`next_batch`](Self::next_batch) call hands back the next
/// committed sink output, returning `Ok(None)` once the query has finished
/// (at which point [`metrics`](Self::metrics) is available).
///
/// Dropping the stream cancels the query: the supervising thread tells the
/// workers to stop at their next poll.
#[derive(Debug)]
pub struct BatchStream {
    schema: Schema,
    rx: Receiver<StreamEvent>,
    /// Task names already received (replayed sink emissions are duplicates).
    seen: HashSet<TaskName>,
    /// Batches received but not yet handed to the caller.
    pending: VecDeque<Batch>,
    /// Whether any batch has been handed to the caller (restart poison).
    delivered: bool,
    rows_delivered: u64,
    batches_delivered: u64,
    finished: Option<QueryMetrics>,
    failed: Option<QuokkaError>,
    /// A failure is surfaced once; after that the stream is fused (`None`).
    error_reported: bool,
    /// Raised when the consumer disappears; the engine's coordinator polls
    /// it and winds the query down.
    cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl BatchStream {
    pub(crate) fn new(
        schema: Schema,
        rx: Receiver<StreamEvent>,
        cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> Self {
        BatchStream {
            schema,
            rx,
            seen: HashSet::new(),
            pending: VecDeque::new(),
            delivered: false,
            rows_delivered: 0,
            batches_delivered: 0,
            finished: None,
            failed: None,
            error_reported: false,
            cancel,
        }
    }

    /// A stream over an already-materialized result (used for `EXPLAIN`
    /// renderings and other pre-computed batches).
    pub fn ready(schema: Schema, batches: Vec<Batch>, metrics: QueryMetrics) -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        for (seq, batch) in batches.into_iter().enumerate() {
            let _ = tx.send(StreamEvent::Batch {
                name: TaskName::new(0, 0, seq as u32),
                batches: vec![batch],
            });
        }
        let _ = tx.send(StreamEvent::Finished(Box::new(metrics)));
        BatchStream::new(schema, rx, std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)))
    }

    /// Schema of the result batches.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether the query has run to completion (metrics are available).
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Final execution metrics, available once the stream is exhausted.
    pub fn metrics(&self) -> Option<&QueryMetrics> {
        self.finished.as_ref()
    }

    /// Rows handed to the caller so far.
    pub fn rows_delivered(&self) -> u64 {
        self.rows_delivered
    }

    /// Batches handed to the caller so far.
    pub fn batches_delivered(&self) -> u64 {
        self.batches_delivered
    }

    /// Pull the next non-empty result batch, blocking until one is
    /// available. Returns `Ok(None)` when the query has completed and every
    /// batch has been delivered. A failure is reported **once**; subsequent
    /// calls return `Ok(None)`, so `for batch in stream` loops terminate.
    pub fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if let Some(batch) = self.pending.pop_front() {
                self.delivered = true;
                self.rows_delivered += batch.num_rows() as u64;
                self.batches_delivered += 1;
                return Ok(Some(batch));
            }
            if self.error_reported {
                return Ok(None);
            }
            if let Some(error) = self.failed.clone() {
                self.error_reported = true;
                return Err(error);
            }
            if self.finished.is_some() {
                return Ok(None);
            }
            match self.recv() {
                Ok(StreamEvent::Batch { name, batches }) => {
                    if self.seen.insert(name) {
                        self.pending.extend(batches.into_iter().filter(|b| !b.is_empty()));
                    }
                }
                Ok(StreamEvent::Restarted) => {
                    // Everything emitted so far is void either way; batches
                    // still sitting in `pending` must not be handed out.
                    self.seen.clear();
                    self.pending.clear();
                    if self.delivered {
                        self.failed = Some(QuokkaError::Internal(
                            "query restarted after results were already streamed; \
                             the restart baseline cannot retract delivered rows \
                             (use collect(), or a fault strategy with intra-query \
                             recovery)"
                                .to_string(),
                        ));
                    }
                }
                Ok(StreamEvent::Finished(metrics)) => self.finished = Some(*metrics),
                Ok(StreamEvent::Failed(error)) => self.failed = Some(error),
                Err(hangup) => self.failed = Some(hangup),
            }
        }
    }

    fn recv(&mut self) -> Result<StreamEvent, QuokkaError> {
        self.rx.recv().map_err(|_| {
            QuokkaError::Internal("query engine hung up without finishing the stream".to_string())
        })
    }

    /// Drain the stream to completion and return the concatenated result —
    /// the blocking convenience the streaming API subsumes.
    ///
    /// Unlike [`next_batch`](Self::next_batch), `collect` owns every batch
    /// until the query completes, so a restart-baseline rerun simply
    /// discards the first attempt's output and keeps collecting. Batches are
    /// reassembled in task order (stage, channel, sequence), matching the
    /// order the buffering sink used to produce.
    ///
    /// `collect` requires an unconsumed stream: batches already handed out
    /// by `next_batch` cannot be reclaimed, so mixing the two would
    /// silently lose rows. Keep draining with `next_batch` instead.
    pub fn collect(mut self) -> Result<QueryOutcome> {
        if self.delivered || !self.seen.is_empty() {
            return Err(QuokkaError::internal(
                "collect() requires an unconsumed stream; rows were already pulled with \
                 next_batch(), keep draining with next_batch() instead",
            ));
        }
        // `next_batch` semantics (restart poisoning, pending queue) don't
        // apply here; consume the raw event stream instead.
        let mut parts: BTreeMap<TaskName, Vec<Batch>> = BTreeMap::new();
        loop {
            if let Some(error) = self.failed.take() {
                return Err(error);
            }
            if let Some(metrics) = self.finished.take() {
                let batches: Vec<Batch> = parts.into_values().flatten().collect();
                let batch = if batches.is_empty() {
                    Batch::empty(self.schema.clone())
                } else {
                    Batch::concat(&batches)?
                };
                return Ok(QueryOutcome { batch, metrics });
            }
            match self.recv()? {
                StreamEvent::Batch { name, batches } => {
                    // Replays overwrite (identical content, same name).
                    parts.insert(name, batches);
                }
                StreamEvent::Restarted => parts.clear(),
                StreamEvent::Finished(metrics) => self.finished = Some(*metrics),
                StreamEvent::Failed(error) => return Err(error),
            }
        }
    }
}

impl Iterator for BatchStream {
    type Item = Result<Batch>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_batch().transpose()
    }
}

impl Drop for BatchStream {
    fn drop(&mut self) {
        // Tell the engine the consumer is gone; workers stop at their next
        // poll instead of computing a result nobody will read.
        self.cancel.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}
