/root/repo/target/debug/deps/fig11-da1727cd04a73765.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-da1727cd04a73765: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
