//! The lazy DataFrame API and streaming result delivery.
//!
//! Builds TPC-H-style queries with the composable `DataFrame` builder (no
//! SQL strings, no hand-assembled plans), then consumes one incrementally:
//! the first result batch is printed while upstream stages of the query are
//! still executing on the simulated cluster.
//!
//! Run with: `cargo run --release --example dataframe_streaming`

use quokka::dataframe::{col, count, date, lit, sum};
use quokka::{CostModelConfig, EngineConfig, QuokkaSession};

fn main() -> quokka::Result<()> {
    // A shared session: cheap to clone, safe to query from many threads.
    let session = QuokkaSession::tpch(0.01, 4)?
        .with_config(EngineConfig::quokka(4).with_cost(CostModelConfig::scaled(0.1)));

    // --- 1. Composable, schema-checked query building --------------------
    // Revenue per return flag for early shipments: every step is validated
    // as it is added, so typos fail *here*, not at execution time.
    let revenue = session
        .table("lineitem")?
        .filter(col("l_shipdate").lt_eq(date(1998, 9, 2)))?
        .group_by([col("l_returnflag")])?
        .agg([
            sum(col("l_extendedprice").mul(lit(1.0f64).sub(col("l_discount")))).alias("revenue"),
            count(col("l_orderkey")).alias("orders"),
        ])?
        .sort([(col("revenue"), false)])?;

    println!("plan:\n{}", revenue.explain()?);
    let outcome = revenue.collect()?;
    println!("flag  revenue            orders");
    for row in 0..outcome.batch.num_rows() {
        println!(
            "{:<5} {:>16.2}  {:>7}",
            outcome.batch.value(row, 0),
            outcome.batch.as_f64s("revenue")?[row],
            outcome.batch.as_i64s("orders")?[row],
        );
    }

    // Build-time error ergonomics: unknown names get suggestions.
    let err = session.table("lineitem")?.filter(col("l_shipdat").year().eq(lit(1998i64)));
    println!("\nerror example: {}\n", err.unwrap_err());

    // --- 2. Streaming execution ------------------------------------------
    // A scan-shaped query (no blocking sink): result batches arrive as scan
    // tasks commit, long before the query finishes.
    let urgent = session
        .table("orders")?
        .filter(col("o_orderpriority").eq(lit("1-URGENT")))?
        .select([col("o_orderkey").alias("key"), col("o_totalprice").alias("price")])?;

    let mut stream = urgent.stream()?;
    let mut batches = 0u64;
    let mut rows = 0u64;
    while let Some(batch) = stream.next_batch()? {
        batches += 1;
        rows += batch.num_rows() as u64;
        if batches <= 3 {
            println!(
                "batch {batches:>2}: {:>5} rows (query finished: {})",
                batch.num_rows(),
                stream.is_finished(),
            );
        }
    }
    let metrics = stream.metrics().expect("stream drained");
    println!("... {batches} batches, {rows} rows total");
    println!(
        "time to first batch: {:?} of {:?} total ({}% of the runtime)",
        metrics.time_to_first_batch.unwrap(),
        metrics.runtime,
        (metrics.time_to_first_batch.unwrap().as_secs_f64() / metrics.runtime.as_secs_f64()
            * 100.0)
            .round(),
    );

    // --- 3. One handle type for every frontend ---------------------------
    // The same query as SQL text executes through the identical path.
    let sql = session.sql(
        "SELECT o_orderkey AS key, o_totalprice AS price \
         FROM orders WHERE o_orderpriority = '1-URGENT'",
    )?;
    let sql_rows = sql.collect()?.batch.num_rows() as u64;
    assert_eq!(sql_rows, rows, "SQL and DataFrame frontends must agree");
    println!("\nSQL twin streamed the same {sql_rows} rows through the same engine");
    Ok(())
}
