/root/repo/target/debug/deps/quokka-7fe14945dfc4ff9c.d: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/libquokka-7fe14945dfc4ff9c.rlib: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/libquokka-7fe14945dfc4ff9c.rmeta: crates/quokka/src/lib.rs

crates/quokka/src/lib.rs:
