//! The Quokka distributed pipelined query engine with write-ahead lineage.
//!
//! This crate is the paper's contribution plus its immediate runtime: a
//! push-based, dynamically scheduled, pipelined query engine executing over
//! a simulated cluster, with intra-query fault tolerance provided by
//! **write-ahead lineage** (Algorithm 1) and **pipeline-parallel recovery**
//! (Algorithm 2), alongside the baseline strategies the paper compares
//! against (restart, spooling, checkpointing) and the baseline execution
//! modes (stagewise/blocking execution, static task dependencies).
//!
//! Module map:
//!
//! * [`layout`] — how a compiled [`StageGraph`](quokka_plan::stage::StageGraph)
//!   is laid out onto a cluster: channels per stage, initial worker
//!   placement, input-split assignment and the watermark indexing used by
//!   the lineage naming scheme.
//! * [`worker`] — the TaskManager side: each worker runs one thread per
//!   stage, executing Algorithm 1 for the channels currently assigned to it
//!   and serving replay requests during recovery.
//! * [`recovery`] — the coordinator side: heartbeat-based failure
//!   detection with suspicion, per-query deadlines, and the Algorithm 2
//!   reconciliation that rewinds lost channels and schedules replays.
//! * [`chaos`] — the chaos engine: applies a deterministic
//!   [`ChaosPlan`](quokka_common::ChaosPlan) (kills, suspicions, lost
//!   backups, dropped/delayed pushes, stragglers) at counter-based trigger
//!   points.
//! * [`runtime`] — [`QueryRunner`]: wires the GCS,
//!   data plane, storage and threads together and runs one query under an
//!   [`EngineConfig`](quokka_common::EngineConfig). Execution is streaming:
//!   [`QueryRunner::stream`] returns a [`BatchStream`] that yields result
//!   batches as the sink stage commits them, and
//!   [`QueryRunner::run`] is the blocking convenience that drains it into a
//!   single batch plus [`QueryMetrics`](quokka_common::QueryMetrics).
//! * [`stream`] — [`BatchStream`]: the consuming end of a running query,
//!   including the replay-deduplication and restart semantics that make
//!   incremental delivery safe under fault injection.
//! * [`admission`] — [`AdmissionController`]: bounded concurrency, FIFO
//!   queueing and memory budgeting for concurrent serving; queries past the
//!   queue bound are rejected with a typed
//!   [`Overloaded`](quokka_common::QuokkaError::Overloaded) error instead
//!   of timing out.

pub mod admission;
pub mod chaos;
pub mod cluster;
pub mod layout;
pub mod recovery;
pub mod runtime;
pub mod stream;
pub mod worker;

pub use admission::{estimate_query_memory, AdmissionController, AdmissionPermit, AdmissionStats};
pub use chaos::ChaosEngine;
pub use cluster::{
    run_process_query, run_workerd, KillPlan, ProcessQuery, RemoteDurable, WorkerdOpts,
};
pub use layout::QueryLayout;
pub use runtime::{QueryOutcome, QueryRunner, StreamOptions};
pub use stream::BatchStream;
