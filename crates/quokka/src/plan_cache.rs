//! The session plan cache: skip parse → bind → decorrelate → optimize for
//! repeated statements.
//!
//! Serving workloads send the same statements over and over, usually
//! varying only the literals. The cache keys on the [`normalized
//! template`](fn@quokka_sql::normalize) of the statement — whitespace-, case-
//! and literal-insensitive — combined with the catalog
//! [`generation`](quokka_plan::catalog::Catalog::generation) and the
//! planning-relevant [`EngineConfig`](quokka_common::EngineConfig)
//! fingerprint, so a cached plan can never be replayed against renamed
//! tables, changed data, or a different optimizer setting.
//!
//! Within one template the cache holds a small set of **variants**, one per
//! distinct literal vector. Literals are baked into a lowered plan
//! (constant folding may even have merged them), so full reuse requires an
//! exact literal match; a template hit with new literals re-plans once and
//! remembers the new variant. The cache is a bounded LRU over templates;
//! stale generations are purged eagerly on every access, so a catalog
//! change invalidates the whole cached population at once rather than
//! leaving dead entries pinning the capacity.

use quokka_common::config::PlanCacheConfig;
use quokka_plan::logical::LogicalPlan;
use quokka_sql::LiteralValue;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Most distinct literal vectors remembered per template. Serving workloads
/// draw literals from a large domain; the first few variants catch the hot
/// ones and the rest re-plan — correctness never depends on this number.
const MAX_VARIANTS: usize = 8;

/// A fully planned statement: the naive bound plan (what
/// `QueryHandle::plan` exposes, and what EXPLAIN renders) plus its lowered
/// (decorrelated and, when enabled, optimized) form the engine compiles.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    pub naive: Arc<LogicalPlan>,
    pub lowered: Arc<LogicalPlan>,
}

/// Cache key: statement template + everything else that affects planning.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TemplateKey {
    template: String,
    catalog_generation: u64,
    config_fingerprint: u64,
}

#[derive(Debug)]
struct Entry {
    variants: Vec<(Vec<LiteralValue>, CachedPlan)>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<TemplateKey, Entry>,
    tick: u64,
}

/// Aggregate counters, for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a plan (template and literals both matched).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Misses where the template matched but the literal vector did not
    /// (the statement re-plans and is remembered as a new variant).
    pub literal_misses: u64,
    /// Templates evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Templates purged because their catalog generation went stale.
    pub invalidations: u64,
}

/// See the [module documentation](self).
#[derive(Debug)]
pub struct PlanCache {
    config: PlanCacheConfig,
    inner: Mutex<Inner>,
    stats: Mutex<PlanCacheStats>,
}

impl PlanCache {
    pub fn new(config: PlanCacheConfig) -> Arc<Self> {
        Arc::new(PlanCache {
            config,
            inner: Mutex::new(Inner::default()),
            stats: Mutex::new(PlanCacheStats::default()),
        })
    }

    pub fn config(&self) -> &PlanCacheConfig {
        &self.config
    }

    /// Whether lookups can ever succeed.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled && self.config.capacity > 0
    }

    /// Drop every entry whose catalog generation is not `generation`.
    /// Called internally on each access; public so tests can force it.
    pub fn invalidate_stale(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let before = inner.entries.len();
        inner.entries.retain(|key, _| key.catalog_generation == generation);
        let purged = (before - inner.entries.len()) as u64;
        if purged > 0 {
            self.stats.lock().expect("plan cache poisoned").invalidations += purged;
        }
    }

    /// Look up a statement. A hit requires the template, catalog
    /// generation, config fingerprint *and* literal vector to match.
    pub fn lookup(
        &self,
        template: &str,
        catalog_generation: u64,
        config_fingerprint: u64,
        literals: &[LiteralValue],
    ) -> Option<CachedPlan> {
        if !self.is_enabled() {
            return None;
        }
        self.invalidate_stale(catalog_generation);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let key =
            TemplateKey { template: template.to_string(), catalog_generation, config_fingerprint };
        let found = inner.entries.get_mut(&key).and_then(|entry| {
            entry.last_used = tick;
            let hit = entry.variants.iter().find(|(stored, _)| stored == literals);
            let outcome = hit.map(|(_, plan)| plan.clone());
            if outcome.is_none() {
                Some(None) // template present, literals new
            } else {
                outcome.map(Some)
            }
        });
        drop(inner);
        let mut stats = self.stats.lock().expect("plan cache poisoned");
        match found {
            Some(Some(plan)) => {
                stats.hits += 1;
                Some(plan)
            }
            Some(None) => {
                stats.misses += 1;
                stats.literal_misses += 1;
                None
            }
            None => {
                stats.misses += 1;
                None
            }
        }
    }

    /// Remember a freshly planned statement. Bounded: at most
    /// [`PlanCacheConfig::capacity`] templates (LRU eviction) of at most
    /// `MAX_VARIANTS` literal vectors each (oldest variant dropped).
    pub fn insert(
        &self,
        template: &str,
        catalog_generation: u64,
        config_fingerprint: u64,
        literals: Vec<LiteralValue>,
        plan: CachedPlan,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.invalidate_stale(catalog_generation);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let key =
            TemplateKey { template: template.to_string(), catalog_generation, config_fingerprint };
        let entry = inner
            .entries
            .entry(key.clone())
            .or_insert_with(|| Entry { variants: Vec::new(), last_used: tick });
        entry.last_used = tick;
        entry.variants.retain(|(stored, _)| stored != &literals);
        entry.variants.insert(0, (literals, plan));
        entry.variants.truncate(MAX_VARIANTS);
        let mut evicted = 0u64;
        while inner.entries.len() > self.config.capacity {
            // O(n) eviction is fine at serving-cache sizes (default 64).
            let oldest = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    inner.entries.remove(&k);
                    evicted += 1;
                }
                None => break, // capacity 1 and it holds the fresh entry
            }
        }
        drop(inner);
        if evicted > 0 {
            self.stats.lock().expect("plan cache poisoned").evictions += evicted;
        }
    }

    /// Cached templates (after any pending invalidation, variants ignored).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> PlanCacheStats {
        *self.stats.lock().expect("plan cache poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{DataType, Schema};
    use quokka_plan::logical::PlanBuilder;

    fn plan(marker: i64) -> CachedPlan {
        let schema = Schema::from_pairs(&[("x", DataType::Int64)]);
        let p = PlanBuilder::scan("t", schema).limit(marker as usize).build().unwrap();
        let arc = Arc::new(p);
        CachedPlan { naive: Arc::clone(&arc), lowered: arc }
    }

    fn lits(v: i64) -> Vec<LiteralValue> {
        vec![LiteralValue::Int(v)]
    }

    #[test]
    fn hit_requires_template_generation_fingerprint_and_literals() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        cache.insert("select ?", 1, 0, lits(10), plan(1));
        assert!(cache.lookup("select ?", 1, 0, &lits(10)).is_some());
        // New literals: template hit, plan miss.
        assert!(cache.lookup("select ?", 1, 0, &lits(11)).is_none());
        // Different fingerprint: miss.
        assert!(cache.lookup("select ?", 1, 1, &lits(10)).is_none());
        // Different template: miss.
        assert!(cache.lookup("select ? , ?", 1, 0, &lits(10)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.literal_misses, 1);
    }

    #[test]
    fn stale_generations_are_purged_not_just_missed() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        cache.insert("select ?", 1, 0, lits(1), plan(1));
        cache.insert("select a from t where b = ?", 1, 0, lits(2), plan(2));
        assert_eq!(cache.len(), 2);
        // A lookup at a newer generation wipes the old population.
        assert!(cache.lookup("select ?", 2, 0, &lits(1)).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = PlanCache::new(PlanCacheConfig { enabled: true, capacity: 2 });
        cache.insert("q1", 0, 0, lits(1), plan(1));
        cache.insert("q2", 0, 0, lits(1), plan(2));
        // Touch q1 so q2 is the LRU template.
        assert!(cache.lookup("q1", 0, 0, &lits(1)).is_some());
        cache.insert("q3", 0, 0, lits(1), plan(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("q1", 0, 0, &lits(1)).is_some(), "recently used survives");
        assert!(cache.lookup("q3", 0, 0, &lits(1)).is_some(), "fresh insert survives");
        assert!(cache.lookup("q2", 0, 0, &lits(1)).is_none(), "LRU evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn variants_are_bounded_per_template() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        for v in 0..(MAX_VARIANTS as i64 + 4) {
            cache.insert("q", 0, 0, lits(v), plan(v));
        }
        assert_eq!(cache.len(), 1, "variants share one template entry");
        // The newest MAX_VARIANTS literal vectors are retained.
        for v in 4..(MAX_VARIANTS as i64 + 4) {
            assert!(cache.lookup("q", 0, 0, &lits(v)).is_some(), "variant {v}");
        }
        assert!(cache.lookup("q", 0, 0, &lits(0)).is_none(), "oldest variant dropped");
    }

    #[test]
    fn disabled_cache_never_stores_or_returns() {
        let cache = PlanCache::new(PlanCacheConfig::disabled());
        cache.insert("q", 0, 0, lits(1), plan(1));
        assert!(cache.lookup("q", 0, 0, &lits(1)).is_none());
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }
}
