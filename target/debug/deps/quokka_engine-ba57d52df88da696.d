/root/repo/target/debug/deps/quokka_engine-ba57d52df88da696.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/libquokka_engine-ba57d52df88da696.rlib: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/libquokka_engine-ba57d52df88da696.rmeta: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
