//! Fig. 8: dynamic task dependencies vs two static-lineage strategies
//! (batch sizes 8 and 128) on the representative queries.

use quokka::SchedulePolicy;
use quokka_bench::{print_header, print_row, queries_from_env, workers_from_env, Harness};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let queries = queries_from_env(&quokka::tpch::REPRESENTATIVE);
    let workers = workers_from_env(&[4, 16]);

    for &w in &workers {
        print_header(
            &format!("Fig. 8 — dynamic vs static task dependencies on {w} workers"),
            &["dynamic (s)", "static-8 (s)", "static-128 (s)"],
        );
        for &q in &queries {
            let dynamic = harness.run("dynamic", q, &harness.quokka_config(w))?;
            let static8 = harness.run(
                "static-8",
                q,
                &harness.quokka_config(w).with_schedule(SchedulePolicy::StaticBatch { batch: 8 }),
            )?;
            let static128 = harness.run(
                "static-128",
                q,
                &harness.quokka_config(w).with_schedule(SchedulePolicy::StaticBatch { batch: 128 }),
            )?;
            print_row(q, &[dynamic.seconds, static8.seconds, static128.seconds]);
        }
        println!(
            "paper shape: neither static batch size wins on both cluster sizes; dynamic matches the better one"
        );
    }
    Ok(())
}
