/root/repo/target/release/deps/quokka_net-e4c1e689752b9fe6.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/release/deps/libquokka_net-e4c1e689752b9fe6.rlib: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/release/deps/libquokka_net-e4c1e689752b9fe6.rmeta: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
