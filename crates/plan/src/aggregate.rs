//! Aggregate functions and their accumulators.
//!
//! Two accumulator representations live here:
//!
//! * [`Accumulator`] — one value of running state per (group, aggregate),
//!   updated a `ScalarValue` at a time. Kept as the simple reference
//!   implementation (and for partial-aggregation merging in tests).
//! * [`AggState`] — the vectorized representation the hash-aggregate
//!   operator uses: one typed vector per aggregate, indexed by dense group
//!   id, updated a batch at a time with no per-row `ScalarValue`.

use crate::expr::Expr;
use quokka_batch::datatype::{DataType, ScalarValue};
use quokka_batch::{Column, Schema};
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeSet;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Avg,
    Min,
    Max,
    Count,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
}

/// One aggregate in an `Aggregate` plan node: a function applied to an input
/// expression, with an output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub expr: Expr,
    pub alias: String,
}

impl AggExpr {
    pub fn new(func: AggFunc, expr: Expr, alias: impl Into<String>) -> Self {
        AggExpr { func, expr, alias: alias.into() }
    }

    /// Output data type of this aggregate given the input schema.
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        Ok(match self.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int64,
            AggFunc::Sum => {
                let t = self.expr.data_type(input)?;
                if t == DataType::Int64 {
                    DataType::Int64
                } else {
                    DataType::Float64
                }
            }
            AggFunc::Avg => DataType::Float64,
            AggFunc::Min | AggFunc::Max => self.expr.data_type(input)?,
        })
    }
}

/// Convenience constructors mirroring SQL.
pub fn sum(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Sum, expr, alias)
}
pub fn avg(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Avg, expr, alias)
}
pub fn min(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Min, expr, alias)
}
pub fn max(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Max, expr, alias)
}
pub fn count(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::Count, expr, alias)
}
pub fn count_distinct(expr: Expr, alias: &str) -> AggExpr {
    AggExpr::new(AggFunc::CountDistinct, expr, alias)
}

/// Running state of one aggregate for one group.
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    Sum { total: f64, integer: bool, seen: bool },
    Avg { total: f64, count: u64 },
    Min(Option<ScalarValue>),
    Max(Option<ScalarValue>),
    Count(u64),
    CountDistinct(BTreeSet<String>),
}

impl Accumulator {
    pub fn new(func: AggFunc, input_type: DataType) -> Self {
        match func {
            AggFunc::Sum => {
                Accumulator::Sum { total: 0.0, integer: input_type == DataType::Int64, seen: false }
            }
            AggFunc::Avg => Accumulator::Avg { total: 0.0, count: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::CountDistinct => Accumulator::CountDistinct(BTreeSet::new()),
        }
    }

    /// Fold one value into the accumulator.
    pub fn update(&mut self, value: &ScalarValue) -> Result<()> {
        match self {
            Accumulator::Sum { total, seen, .. } => {
                *total += value.as_f64()?;
                *seen = true;
            }
            Accumulator::Avg { total, count } => {
                *total += value.as_f64()?;
                *count += 1;
            }
            Accumulator::Min(current) => {
                let replace = match current {
                    Some(c) => value.total_cmp(c) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *current = Some(value.clone());
                }
            }
            Accumulator::Max(current) => {
                let replace = match current {
                    Some(c) => value.total_cmp(c) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *current = Some(value.clone());
                }
            }
            Accumulator::Count(n) => *n += 1,
            Accumulator::CountDistinct(set) => {
                set.insert(value.to_string());
            }
        }
        Ok(())
    }

    /// Merge another accumulator of the same kind (partial aggregation).
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        match (self, other) {
            (
                Accumulator::Sum { total, seen, .. },
                Accumulator::Sum { total: t2, seen: s2, .. },
            ) => {
                *total += t2;
                *seen = *seen || *s2;
            }
            (Accumulator::Avg { total, count }, Accumulator::Avg { total: t2, count: c2 }) => {
                *total += t2;
                *count += c2;
            }
            (Accumulator::Min(a), Accumulator::Min(Some(b))) => {
                let replace = match a {
                    Some(c) => b.total_cmp(c) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *a = Some(b.clone());
                }
            }
            (Accumulator::Min(_), Accumulator::Min(None)) => {}
            (Accumulator::Max(a), Accumulator::Max(Some(b))) => {
                let replace = match a {
                    Some(c) => b.total_cmp(c) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *a = Some(b.clone());
                }
            }
            (Accumulator::Max(_), Accumulator::Max(None)) => {}
            (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (Accumulator::CountDistinct(a), Accumulator::CountDistinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (a, b) => {
                return Err(QuokkaError::internal(format!(
                    "cannot merge accumulators {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the final value.
    pub fn finalize(&self) -> ScalarValue {
        match self {
            Accumulator::Sum { total, integer, .. } => {
                if *integer {
                    ScalarValue::Int64(*total as i64)
                } else {
                    ScalarValue::Float64(*total)
                }
            }
            Accumulator::Avg { total, count } => {
                if *count == 0 {
                    ScalarValue::Float64(0.0)
                } else {
                    ScalarValue::Float64(total / *count as f64)
                }
            }
            Accumulator::Min(v) => v.clone().unwrap_or(ScalarValue::Float64(f64::NAN)),
            Accumulator::Max(v) => v.clone().unwrap_or(ScalarValue::Float64(f64::NAN)),
            Accumulator::Count(n) => ScalarValue::Int64(*n as i64),
            Accumulator::CountDistinct(set) => ScalarValue::Int64(set.len() as i64),
        }
    }

    /// Approximate in-memory footprint, used to size state checkpoints.
    pub fn state_bytes(&self) -> usize {
        match self {
            Accumulator::Sum { .. } => 16,
            Accumulator::Avg { .. } => 16,
            Accumulator::Min(v) | Accumulator::Max(v) => {
                16 + v.as_ref().map(|s| s.to_string().len()).unwrap_or(0)
            }
            Accumulator::Count(_) => 8,
            Accumulator::CountDistinct(set) => 16 + set.iter().map(|s| s.len() + 8).sum::<usize>(),
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized accumulator state
// ---------------------------------------------------------------------------

/// Typed per-group minimum/maximum storage, one slot per group id.
#[derive(Debug, Clone, PartialEq)]
pub enum MinMaxValues {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
}

impl MinMaxValues {
    fn new(input_type: DataType) -> Self {
        match input_type {
            DataType::Int64 => MinMaxValues::I64(Vec::new()),
            DataType::Float64 => MinMaxValues::F64(Vec::new()),
            DataType::Utf8 => MinMaxValues::Str(Vec::new()),
            DataType::Bool => MinMaxValues::Bool(Vec::new()),
            DataType::Date => MinMaxValues::Date(Vec::new()),
        }
    }

    fn resize(&mut self, len: usize) {
        match self {
            MinMaxValues::I64(v) => v.resize(len, 0),
            MinMaxValues::F64(v) => v.resize(len, f64::NAN),
            MinMaxValues::Str(v) => v.resize(len, String::new()),
            MinMaxValues::Bool(v) => v.resize(len, false),
            MinMaxValues::Date(v) => v.resize(len, 0),
        }
    }
}

/// Typed per-group distinct-value sets for `COUNT(DISTINCT ...)`.
///
/// Unlike the scalar [`Accumulator`], values are deduplicated on their typed
/// representation (floats by bit pattern) instead of their display string,
/// so no formatting or allocation happens on the update path; only a
/// first-seen string value is cloned into its set.
#[derive(Debug, Clone, PartialEq)]
pub enum DistinctSets {
    I64(Vec<BTreeSet<i64>>),
    Bits(Vec<BTreeSet<u64>>),
    Str(Vec<BTreeSet<String>>),
}

/// Vectorized running state of one aggregate across all groups; the group id
/// (dense, assigned by the operator's key table) indexes every vector.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Sum { totals: Vec<f64>, integer: bool },
    Avg { totals: Vec<f64>, counts: Vec<u64> },
    Min { values: MinMaxValues, seen: Vec<bool> },
    Max { values: MinMaxValues, seen: Vec<bool> },
    Count { counts: Vec<u64> },
    CountDistinct { sets: DistinctSets },
}

impl AggState {
    pub fn new(func: AggFunc, input_type: DataType) -> Self {
        match func {
            AggFunc::Sum => {
                AggState::Sum { totals: Vec::new(), integer: input_type == DataType::Int64 }
            }
            AggFunc::Avg => AggState::Avg { totals: Vec::new(), counts: Vec::new() },
            AggFunc::Min => {
                AggState::Min { values: MinMaxValues::new(input_type), seen: Vec::new() }
            }
            AggFunc::Max => {
                AggState::Max { values: MinMaxValues::new(input_type), seen: Vec::new() }
            }
            AggFunc::Count => AggState::Count { counts: Vec::new() },
            AggFunc::CountDistinct => {
                let sets = match input_type {
                    DataType::Utf8 => DistinctSets::Str(Vec::new()),
                    DataType::Float64 => DistinctSets::Bits(Vec::new()),
                    _ => DistinctSets::I64(Vec::new()),
                };
                AggState::CountDistinct { sets }
            }
        }
    }

    /// Number of groups currently tracked.
    pub fn num_groups(&self) -> usize {
        match self {
            AggState::Sum { totals, .. } => totals.len(),
            AggState::Avg { totals, .. } => totals.len(),
            AggState::Min { seen, .. } | AggState::Max { seen, .. } => seen.len(),
            AggState::Count { counts } => counts.len(),
            AggState::CountDistinct { sets } => match sets {
                DistinctSets::I64(v) => v.len(),
                DistinctSets::Bits(v) => v.len(),
                DistinctSets::Str(v) => v.len(),
            },
        }
    }

    /// Grow to `num_groups` group slots (new groups start empty).
    pub fn resize(&mut self, num_groups: usize) {
        match self {
            AggState::Sum { totals, .. } => totals.resize(num_groups, 0.0),
            AggState::Avg { totals, counts } => {
                totals.resize(num_groups, 0.0);
                counts.resize(num_groups, 0);
            }
            AggState::Min { values, seen } | AggState::Max { values, seen } => {
                values.resize(num_groups);
                seen.resize(num_groups, false);
            }
            AggState::Count { counts } => counts.resize(num_groups, 0),
            AggState::CountDistinct { sets } => match sets {
                DistinctSets::I64(v) => v.resize(num_groups, BTreeSet::new()),
                DistinctSets::Bits(v) => v.resize(num_groups, BTreeSet::new()),
                DistinctSets::Str(v) => v.resize(num_groups, BTreeSet::new()),
            },
        }
    }

    /// Fold a whole column into the state: row `i` updates group
    /// `group_ids[i]`. `num_groups` is the group count after key interning
    /// for this batch (the state grows to it before updating).
    pub fn update_batch(
        &mut self,
        column: &Column,
        group_ids: &[u32],
        num_groups: usize,
    ) -> Result<()> {
        // One decode per batch per aggregate: the typed fold loops below
        // then run on plain slices regardless of the input encoding.
        let column = column.decoded();
        let column = column.as_ref();
        self.resize(num_groups);
        let type_err = |what: &str, col: &Column| {
            Err(QuokkaError::TypeError(format!("{what} aggregate over {} column", col.data_type())))
        };
        match self {
            AggState::Sum { totals, .. } => match column {
                Column::Int64(v) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        totals[g as usize] += *x as f64;
                    }
                }
                Column::Float64(v) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        totals[g as usize] += *x;
                    }
                }
                Column::Date(v) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        totals[g as usize] += *x as f64;
                    }
                }
                other => return type_err("Sum", other),
            },
            AggState::Avg { totals, counts } => match column {
                Column::Int64(v) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        totals[g as usize] += *x as f64;
                        counts[g as usize] += 1;
                    }
                }
                Column::Float64(v) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        totals[g as usize] += *x;
                        counts[g as usize] += 1;
                    }
                }
                Column::Date(v) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        totals[g as usize] += *x as f64;
                        counts[g as usize] += 1;
                    }
                }
                other => return type_err("Avg", other),
            },
            AggState::Min { values, seen } => update_minmax(values, seen, column, group_ids, true)?,
            AggState::Max { values, seen } => {
                update_minmax(values, seen, column, group_ids, false)?
            }
            AggState::Count { counts } => {
                for &g in group_ids {
                    counts[g as usize] += 1;
                }
            }
            AggState::CountDistinct { sets } => match (sets, column) {
                (DistinctSets::I64(sets), Column::Int64(v)) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        sets[g as usize].insert(*x);
                    }
                }
                (DistinctSets::I64(sets), Column::Date(v)) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        sets[g as usize].insert(*x as i64);
                    }
                }
                (DistinctSets::I64(sets), Column::Bool(v)) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        sets[g as usize].insert(*x as i64);
                    }
                }
                (DistinctSets::Bits(sets), Column::Float64(v)) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        sets[g as usize].insert(x.to_bits());
                    }
                }
                (DistinctSets::Str(sets), Column::Utf8(v)) => {
                    for (x, &g) in v.iter().zip(group_ids) {
                        let set = &mut sets[g as usize];
                        if !set.contains(x.as_str()) {
                            set.insert(x.clone());
                        }
                    }
                }
                (_, other) => return type_err("CountDistinct", other),
            },
        }
        Ok(())
    }

    /// Produce the final values for all groups as one typed column.
    pub fn finalize_column(&self) -> Column {
        match self {
            AggState::Sum { totals, integer } => {
                if *integer {
                    Column::Int64(totals.iter().map(|&t| t as i64).collect())
                } else {
                    Column::Float64(totals.clone())
                }
            }
            AggState::Avg { totals, counts } => Column::Float64(
                totals
                    .iter()
                    .zip(counts)
                    .map(|(&t, &c)| if c == 0 { 0.0 } else { t / c as f64 })
                    .collect(),
            ),
            AggState::Min { values, .. } | AggState::Max { values, .. } => match values {
                MinMaxValues::I64(v) => Column::Int64(v.clone()),
                MinMaxValues::F64(v) => Column::Float64(v.clone()),
                MinMaxValues::Str(v) => Column::Utf8(v.clone()),
                MinMaxValues::Bool(v) => Column::Bool(v.clone()),
                MinMaxValues::Date(v) => Column::Date(v.clone()),
            },
            AggState::Count { counts } => Column::Int64(counts.iter().map(|&c| c as i64).collect()),
            AggState::CountDistinct { sets } => Column::Int64(match sets {
                DistinctSets::I64(v) => v.iter().map(|s| s.len() as i64).collect(),
                DistinctSets::Bits(v) => v.iter().map(|s| s.len() as i64).collect(),
                DistinctSets::Str(v) => v.iter().map(|s| s.len() as i64).collect(),
            }),
        }
    }

    /// Approximate in-memory footprint, used to size state checkpoints.
    pub fn state_bytes(&self) -> usize {
        match self {
            AggState::Sum { totals, .. } => totals.len() * 16,
            AggState::Avg { totals, .. } => totals.len() * 16,
            AggState::Min { values, .. } | AggState::Max { values, .. } => match values {
                MinMaxValues::Str(v) => v.iter().map(|s| 16 + s.len()).sum(),
                MinMaxValues::Bool(v) => v.len() * 2,
                MinMaxValues::Date(v) => v.len() * 5,
                MinMaxValues::I64(v) => v.len() * 9,
                MinMaxValues::F64(v) => v.len() * 9,
            },
            AggState::Count { counts } => counts.len() * 8,
            AggState::CountDistinct { sets } => match sets {
                DistinctSets::I64(v) => v.iter().map(|s| 16 + s.len() * 8).sum(),
                DistinctSets::Bits(v) => v.iter().map(|s| 16 + s.len() * 8).sum(),
                DistinctSets::Str(v) => {
                    v.iter().map(|s| 16 + s.iter().map(|x| x.len() + 8).sum::<usize>()).sum()
                }
            },
        }
    }
}

fn update_minmax(
    values: &mut MinMaxValues,
    seen: &mut [bool],
    column: &Column,
    group_ids: &[u32],
    is_min: bool,
) -> Result<()> {
    // One macro-free typed loop per (storage, column) pairing; `is_min`
    // selects the comparison direction.
    match (values, column) {
        (MinMaxValues::I64(slots), Column::Int64(v)) => {
            for (x, &g) in v.iter().zip(group_ids) {
                let g = g as usize;
                if !seen[g] || (is_min && *x < slots[g]) || (!is_min && *x > slots[g]) {
                    slots[g] = *x;
                    seen[g] = true;
                }
            }
        }
        (MinMaxValues::F64(slots), Column::Float64(v)) => {
            for (x, &g) in v.iter().zip(group_ids) {
                let g = g as usize;
                let better = if is_min {
                    x.total_cmp(&slots[g]) == std::cmp::Ordering::Less
                } else {
                    x.total_cmp(&slots[g]) == std::cmp::Ordering::Greater
                };
                if !seen[g] || better {
                    slots[g] = *x;
                    seen[g] = true;
                }
            }
        }
        (MinMaxValues::Str(slots), Column::Utf8(v)) => {
            for (x, &g) in v.iter().zip(group_ids) {
                let g = g as usize;
                let better = if is_min {
                    x.as_str() < slots[g].as_str()
                } else {
                    x.as_str() > slots[g].as_str()
                };
                if !seen[g] || better {
                    slots[g].clear();
                    slots[g].push_str(x);
                    seen[g] = true;
                }
            }
        }
        (MinMaxValues::Bool(slots), Column::Bool(v)) => {
            for (x, &g) in v.iter().zip(group_ids) {
                let g = g as usize;
                if !seen[g] || (is_min && !*x & slots[g]) || (!is_min && *x & !slots[g]) {
                    slots[g] = *x;
                    seen[g] = true;
                }
            }
        }
        (MinMaxValues::Date(slots), Column::Date(v)) => {
            for (x, &g) in v.iter().zip(group_ids) {
                let g = g as usize;
                if !seen[g] || (is_min && *x < slots[g]) || (!is_min && *x > slots[g]) {
                    slots[g] = *x;
                    seen[g] = true;
                }
            }
        }
        (_, other) => {
            return Err(QuokkaError::TypeError(format!(
                "Min/Max aggregate input type changed mid-stream to {}",
                other.data_type()
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    #[test]
    fn sum_int_and_float() {
        let mut int_sum = Accumulator::new(AggFunc::Sum, DataType::Int64);
        int_sum.update(&ScalarValue::Int64(3)).unwrap();
        int_sum.update(&ScalarValue::Int64(4)).unwrap();
        assert_eq!(int_sum.finalize(), ScalarValue::Int64(7));

        let mut float_sum = Accumulator::new(AggFunc::Sum, DataType::Float64);
        float_sum.update(&ScalarValue::Float64(1.5)).unwrap();
        float_sum.update(&ScalarValue::Float64(2.5)).unwrap();
        assert_eq!(float_sum.finalize(), ScalarValue::Float64(4.0));
    }

    #[test]
    fn avg_min_max_count() {
        let mut a = Accumulator::new(AggFunc::Avg, DataType::Float64);
        for v in [2.0, 4.0, 6.0] {
            a.update(&ScalarValue::Float64(v)).unwrap();
        }
        assert_eq!(a.finalize(), ScalarValue::Float64(4.0));

        let mut mn = Accumulator::new(AggFunc::Min, DataType::Utf8);
        let mut mx = Accumulator::new(AggFunc::Max, DataType::Utf8);
        for s in ["banana", "apple", "cherry"] {
            mn.update(&ScalarValue::from(s)).unwrap();
            mx.update(&ScalarValue::from(s)).unwrap();
        }
        assert_eq!(mn.finalize(), ScalarValue::from("apple"));
        assert_eq!(mx.finalize(), ScalarValue::from("cherry"));

        let mut c = Accumulator::new(AggFunc::Count, DataType::Int64);
        c.update(&ScalarValue::Int64(9)).unwrap();
        c.update(&ScalarValue::Int64(9)).unwrap();
        assert_eq!(c.finalize(), ScalarValue::Int64(2));
    }

    #[test]
    fn count_distinct_dedups() {
        let mut c = Accumulator::new(AggFunc::CountDistinct, DataType::Utf8);
        for s in ["a", "b", "a", "c", "b"] {
            c.update(&ScalarValue::from(s)).unwrap();
        }
        assert_eq!(c.finalize(), ScalarValue::Int64(3));
        assert!(c.state_bytes() > 16);
    }

    #[test]
    fn merge_partials() {
        let mut a = Accumulator::new(AggFunc::Avg, DataType::Float64);
        a.update(&ScalarValue::Float64(1.0)).unwrap();
        let mut b = Accumulator::new(AggFunc::Avg, DataType::Float64);
        b.update(&ScalarValue::Float64(3.0)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finalize(), ScalarValue::Float64(2.0));

        let mut m = Accumulator::new(AggFunc::Min, DataType::Int64);
        m.merge(&Accumulator::Min(Some(ScalarValue::Int64(5)))).unwrap();
        m.merge(&Accumulator::Min(None)).unwrap();
        assert_eq!(m.finalize(), ScalarValue::Int64(5));

        let mut bad = Accumulator::new(AggFunc::Count, DataType::Int64);
        assert!(bad.merge(&Accumulator::Min(None)).is_err());
    }

    #[test]
    fn agg_expr_output_types() {
        let schema = Schema::from_pairs(&[
            ("qty", DataType::Int64),
            ("price", DataType::Float64),
            ("name", DataType::Utf8),
        ]);
        assert_eq!(sum(col("qty"), "s").data_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(sum(col("price"), "s").data_type(&schema).unwrap(), DataType::Float64);
        assert_eq!(avg(col("qty"), "a").data_type(&schema).unwrap(), DataType::Float64);
        assert_eq!(count(col("name"), "c").data_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(min(col("name"), "m").data_type(&schema).unwrap(), DataType::Utf8);
        assert_eq!(max(col("qty"), "m").data_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(count_distinct(col("name"), "cd").data_type(&schema).unwrap(), DataType::Int64);
    }

    #[test]
    fn empty_group_finalizers() {
        assert_eq!(
            Accumulator::new(AggFunc::Count, DataType::Int64).finalize(),
            ScalarValue::Int64(0)
        );
        assert_eq!(
            Accumulator::new(AggFunc::Avg, DataType::Float64).finalize(),
            ScalarValue::Float64(0.0)
        );
        assert_eq!(
            Accumulator::new(AggFunc::Sum, DataType::Int64).finalize(),
            ScalarValue::Int64(0)
        );
    }
}
