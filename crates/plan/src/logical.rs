//! The logical plan DSL.
//!
//! The hand-built TPC-H queries are expressed with [`PlanBuilder`]; the SQL
//! frontend (`quokka-sql`) and the facade crate's lazy DataFrame API lower
//! to the same [`LogicalPlan`] nodes (the paper's Quokka likewise exposes a
//! DataFrame-style API). The hand-built plans decorrelate subqueries into
//! joins and aggregations as they are written; SQL-born plans may instead
//! carry subquery expressions ([`Expr::Exists`](crate::expr::Expr) and
//! friends), which the optimizer's decorrelation pass lowers to the same
//! join shapes before execution.

use crate::aggregate::AggExpr;
use crate::expr::Expr;
use quokka_batch::{Field, Schema};
use quokka_common::{QuokkaError, Result};

/// Join variants used by the TPC-H plans.
///
/// By convention the **first** child of a join is the *build* side and the
/// **second** is the *probe* side. The probe side is the preserved side for
/// the outer-ish variants:
///
/// * `Inner` — emit build ++ probe columns for every match.
/// * `Left` — like `Inner`, but probe rows without a match are also emitted
///   with the build columns filled with type defaults (0 / empty string /
///   epoch / false). The engine does not model SQL NULLs; the TPC-H plans
///   that use this (Q13) are written so the default values are
///   distinguishable from real matches.
/// * `Semi` — emit probe rows that have at least one build match (used for
///   decorrelated `EXISTS` / `IN`).
/// * `Anti` — emit probe rows that have no build match (decorrelated `NOT
///   EXISTS` / `NOT IN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
    Semi,
    Anti,
}

/// A relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base table.
    Scan { table: String, schema: Schema },
    /// Keep rows satisfying `predicate`.
    Filter { input: Box<LogicalPlan>, predicate: Expr },
    /// Compute named expressions.
    Project { input: Box<LogicalPlan>, exprs: Vec<(Expr, String)> },
    /// Hash join; see [`JoinType`] for the build/probe convention.
    Join {
        build: Box<LogicalPlan>,
        probe: Box<LogicalPlan>,
        /// Equality keys as `(build column, probe column)` pairs.
        on: Vec<(String, String)>,
        join_type: JoinType,
    },
    /// Grouped aggregation (an empty `group_by` produces a single row).
    Aggregate { input: Box<LogicalPlan>, group_by: Vec<(Expr, String)>, aggregates: Vec<AggExpr> },
    /// Sort by output columns; `limit` turns it into a top-k.
    Sort { input: Box<LogicalPlan>, keys: Vec<(String, bool)>, limit: Option<usize> },
    /// Keep the first `n` rows.
    Limit { input: Box<LogicalPlan>, n: usize },
}

impl LogicalPlan {
    /// The output schema of this plan node.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. } => Ok(schema.clone()),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let input_schema = input.schema()?;
                let fields = exprs
                    .iter()
                    .map(|(e, name)| Ok(Field::new(name.clone(), e.data_type(&input_schema)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Schema::new(fields))
            }
            LogicalPlan::Join { build, probe, join_type, .. } => {
                let probe_schema = probe.schema()?;
                match join_type {
                    JoinType::Semi | JoinType::Anti => Ok(probe_schema),
                    JoinType::Inner | JoinType::Left => Ok(build.schema()?.join(&probe_schema)),
                }
            }
            LogicalPlan::Aggregate { input, group_by, aggregates } => {
                let input_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
                for (expr, name) in group_by {
                    fields.push(Field::new(name.clone(), expr.data_type(&input_schema)?));
                }
                for agg in aggregates {
                    fields.push(Field::new(agg.alias.clone(), agg.data_type(&input_schema)?));
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Immediate children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { build, probe, .. } => vec![build, probe],
        }
    }

    /// Rebuild this node with `f` applied to each direct child.
    pub fn map_children(
        self,
        f: &mut impl FnMut(LogicalPlan) -> Result<LogicalPlan>,
    ) -> Result<LogicalPlan> {
        Ok(match self {
            LogicalPlan::Scan { .. } => self,
            LogicalPlan::Filter { input, predicate } => {
                LogicalPlan::Filter { input: Box::new(f(*input)?), predicate }
            }
            LogicalPlan::Project { input, exprs } => {
                LogicalPlan::Project { input: Box::new(f(*input)?), exprs }
            }
            LogicalPlan::Join { build, probe, on, join_type } => LogicalPlan::Join {
                build: Box::new(f(*build)?),
                probe: Box::new(f(*probe)?),
                on,
                join_type,
            },
            LogicalPlan::Aggregate { input, group_by, aggregates } => {
                LogicalPlan::Aggregate { input: Box::new(f(*input)?), group_by, aggregates }
            }
            LogicalPlan::Sort { input, keys, limit } => {
                LogicalPlan::Sort { input: Box::new(f(*input)?), keys, limit }
            }
            LogicalPlan::Limit { input, n } => {
                LogicalPlan::Limit { input: Box::new(f(*input)?), n }
            }
        })
    }

    /// Bottom-up rewrite: children are rewritten first, then `f` runs on the
    /// rebuilt node. This is the traversal every optimizer rule is written
    /// against.
    pub fn transform_up(
        self,
        f: &mut impl FnMut(LogicalPlan) -> Result<LogicalPlan>,
    ) -> Result<LogicalPlan> {
        let node = self.map_children(&mut |child| child.transform_up(f))?;
        f(node)
    }

    /// Top-down rewrite: `f` runs on the node first, then its (possibly
    /// replaced) children are rewritten.
    pub fn transform_down(
        self,
        f: &mut impl FnMut(LogicalPlan) -> Result<LogicalPlan>,
    ) -> Result<LogicalPlan> {
        f(self)?.map_children(&mut |child| child.transform_down(f))
    }

    /// Apply `f` to every expression held by this single node (not its
    /// children's expressions).
    pub fn map_expressions(self, f: &mut impl FnMut(Expr) -> Expr) -> LogicalPlan {
        match self {
            LogicalPlan::Filter { input, predicate } => {
                LogicalPlan::Filter { input, predicate: f(predicate) }
            }
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input,
                exprs: exprs.into_iter().map(|(e, n)| (f(e), n)).collect(),
            },
            LogicalPlan::Aggregate { input, group_by, aggregates } => LogicalPlan::Aggregate {
                input,
                group_by: group_by.into_iter().map(|(e, n)| (f(e), n)).collect(),
                aggregates: aggregates
                    .into_iter()
                    .map(|a| AggExpr { func: a.func, expr: f(a.expr), alias: a.alias })
                    .collect(),
            },
            other => other,
        }
    }

    /// The expressions held directly by this node (not its children's).
    pub fn expressions(&self) -> Vec<&Expr> {
        match self {
            LogicalPlan::Filter { predicate, .. } => vec![predicate],
            LogicalPlan::Project { exprs, .. } => exprs.iter().map(|(e, _)| e).collect(),
            LogicalPlan::Aggregate { group_by, aggregates, .. } => {
                group_by.iter().map(|(e, _)| e).chain(aggregates.iter().map(|a| &a.expr)).collect()
            }
            LogicalPlan::Scan { .. }
            | LogicalPlan::Join { .. }
            | LogicalPlan::Sort { .. }
            | LogicalPlan::Limit { .. } => vec![],
        }
    }

    /// Names of every base table referenced by the plan, in first-use order.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        if let LogicalPlan::Scan { table, .. } = self {
            if !out.contains(table) {
                out.push(table.clone());
            }
        }
        for child in self.children() {
            child.collect_tables(out);
        }
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// A short human-readable name for the node kind.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
        }
    }

    /// A multi-line indented rendering of the plan (EXPLAIN-style).
    pub fn display_indent(&self) -> String {
        fn walk(plan: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            match plan {
                LogicalPlan::Scan { table, schema } => {
                    out.push_str(&format!("Scan: {table} [{}]\n", schema.column_names().join(", ")))
                }
                LogicalPlan::Filter { predicate, .. } => {
                    let cols = predicate.referenced_columns();
                    out.push_str(&format!("Filter: on [{}]\n", cols.join(", ")));
                }
                LogicalPlan::Project { exprs, .. } => {
                    let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                    out.push_str(&format!("Project: {}\n", names.join(", ")));
                }
                LogicalPlan::Join { on, join_type, .. } => {
                    out.push_str(&format!("Join({join_type:?}): {on:?}\n"))
                }
                LogicalPlan::Aggregate { group_by, aggregates, .. } => {
                    let groups: Vec<&str> = group_by.iter().map(|(_, n)| n.as_str()).collect();
                    let aggs: Vec<&str> = aggregates.iter().map(|a| a.alias.as_str()).collect();
                    out.push_str(&format!(
                        "Aggregate: group=[{}] aggs=[{}]\n",
                        groups.join(", "),
                        aggs.join(", ")
                    ));
                }
                LogicalPlan::Sort { keys, limit, .. } => {
                    out.push_str(&format!("Sort: {keys:?} limit={limit:?}\n"))
                }
                LogicalPlan::Limit { n, .. } => out.push_str(&format!("Limit: {n}\n")),
            }
            for child in plan.children() {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

/// Lower a sort over arbitrary key expressions onto the engine's
/// column-name [`LogicalPlan::Sort`].
///
/// Keys that are plain references to the input's output columns sort
/// directly. Computed keys are materialized as hidden `__sort_{i}` columns
/// by a projection below the sort, and a projection above it restores the
/// original schema — so the result schema is always the input schema. This
/// is the single sort path shared by the DataFrame `sort()` and the SQL
/// frontend's `ORDER BY` on expressions.
pub fn sort_by_exprs(
    input: LogicalPlan,
    keys: Vec<(Expr, bool)>,
    limit: Option<usize>,
) -> Result<LogicalPlan> {
    let schema = input.schema()?;
    let is_output_column = |e: &Expr| match e {
        Expr::Column(name) => schema.index_of(name).is_ok(),
        _ => false,
    };
    if keys.iter().all(|(e, _)| is_output_column(e)) {
        let keys = keys
            .into_iter()
            .map(|(e, asc)| match e {
                Expr::Column(name) => (name, asc),
                _ => unreachable!("checked above"),
            })
            .collect();
        return Ok(LogicalPlan::Sort { input: Box::new(input), keys, limit });
    }

    // Hidden-key path: Project(input columns + computed keys) -> Sort ->
    // Project(input columns).
    let passthrough: Vec<(Expr, String)> = schema
        .column_names()
        .iter()
        .map(|n| (Expr::Column(n.to_string()), n.to_string()))
        .collect();
    let mut exprs = passthrough.clone();
    let mut sort_keys = Vec::with_capacity(keys.len());
    for (i, (e, asc)) in keys.into_iter().enumerate() {
        if is_output_column(&e) {
            if let Expr::Column(name) = e {
                sort_keys.push((name, asc));
            }
            continue;
        }
        let mut name = format!("__sort_{i}");
        while schema.index_of(&name).is_ok() {
            name.push('_');
        }
        exprs.push((e, name.clone()));
        sort_keys.push((name, asc));
    }
    let projected = LogicalPlan::Project { input: Box::new(input), exprs };
    let sorted = LogicalPlan::Sort { input: Box::new(projected), keys: sort_keys, limit };
    let plan = LogicalPlan::Project { input: Box::new(sorted), exprs: passthrough };
    // Surface type errors in the key expressions now, not at execution.
    plan.schema()?;
    Ok(plan)
}

/// Fluent builder for [`LogicalPlan`]s.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Start from a base-table scan.
    pub fn scan(table: impl Into<String>, schema: Schema) -> Self {
        PlanBuilder { plan: LogicalPlan::Scan { table: table.into(), schema } }
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        PlanBuilder { plan }
    }

    pub fn filter(self, predicate: Expr) -> Self {
        PlanBuilder { plan: LogicalPlan::Filter { input: Box::new(self.plan), predicate } }
    }

    /// Project expressions with output names.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
            },
        }
    }

    /// Join with `probe`; `self` is the build side. `on` pairs are
    /// `(build column, probe column)`.
    pub fn join(self, probe: PlanBuilder, on: Vec<(&str, &str)>, join_type: JoinType) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Join {
                build: Box::new(self.plan),
                probe: Box::new(probe.plan),
                on: on.into_iter().map(|(a, b)| (a.to_string(), b.to_string())).collect(),
                join_type,
            },
        }
    }

    pub fn aggregate(self, group_by: Vec<(Expr, &str)>, aggregates: Vec<AggExpr>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by: group_by.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
                aggregates,
            },
        }
    }

    /// Sort by named output columns (`true` = ascending).
    pub fn sort(self, keys: Vec<(&str, bool)>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys: keys.into_iter().map(|(k, asc)| (k.to_string(), asc)).collect(),
                limit: None,
            },
        }
    }

    /// Sort by arbitrary key expressions (via [`sort_by_exprs`]): plain
    /// column keys sort directly, computed keys go through hidden sort
    /// columns that are projected away again. Fails immediately if a key
    /// does not type-check against the current schema.
    pub fn sort_by(self, keys: Vec<(Expr, bool)>, limit: Option<usize>) -> Result<Self> {
        Ok(PlanBuilder { plan: sort_by_exprs(self.plan, keys, limit)? })
    }

    /// Sort with a top-k limit.
    pub fn sort_limit(self, keys: Vec<(&str, bool)>, limit: usize) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys: keys.into_iter().map(|(k, asc)| (k.to_string(), asc)).collect(),
                limit: Some(limit),
            },
        }
    }

    pub fn limit(self, n: usize) -> Self {
        PlanBuilder { plan: LogicalPlan::Limit { input: Box::new(self.plan), n } }
    }

    /// Validate and return the built plan.
    pub fn build(self) -> Result<LogicalPlan> {
        // Computing the schema exercises name resolution over the whole tree.
        self.plan.schema().map_err(|e| {
            QuokkaError::PlanError(format!("invalid plan: {e}\n{}", self.plan.display_indent()))
        })?;
        Ok(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{count, sum};
    use crate::expr::{col, lit};
    use quokka_batch::DataType;

    fn orders_schema() -> Schema {
        Schema::from_pairs(&[
            ("o_orderkey", DataType::Int64),
            ("o_custkey", DataType::Int64),
            ("o_totalprice", DataType::Float64),
        ])
    }

    fn customer_schema() -> Schema {
        Schema::from_pairs(&[("c_custkey", DataType::Int64), ("c_name", DataType::Utf8)])
    }

    #[test]
    fn builder_produces_expected_schema() {
        let plan = PlanBuilder::scan("customer", customer_schema())
            .join(
                PlanBuilder::scan("orders", orders_schema()),
                vec![("c_custkey", "o_custkey")],
                JoinType::Inner,
            )
            .filter(col("o_totalprice").gt(lit(100.0f64)))
            .aggregate(
                vec![(col("c_name"), "c_name")],
                vec![sum(col("o_totalprice"), "revenue"), count(col("o_orderkey"), "n")],
            )
            .sort_limit(vec![("revenue", false)], 10)
            .build()
            .unwrap();

        let schema = plan.schema().unwrap();
        assert_eq!(schema.column_names(), vec!["c_name", "revenue", "n"]);
        assert_eq!(schema.data_type("revenue").unwrap(), DataType::Float64);
        assert_eq!(schema.data_type("n").unwrap(), DataType::Int64);
        assert_eq!(plan.referenced_tables(), vec!["customer", "orders"]);
        assert_eq!(plan.node_count(), 6);
        let display = plan.display_indent();
        assert!(display.contains("Scan: orders"));
        assert!(display.contains("Aggregate"));
    }

    #[test]
    fn join_schema_depends_on_join_type() {
        let inner = PlanBuilder::scan("customer", customer_schema())
            .join(
                PlanBuilder::scan("orders", orders_schema()),
                vec![("c_custkey", "o_custkey")],
                JoinType::Inner,
            )
            .build()
            .unwrap();
        assert_eq!(inner.schema().unwrap().len(), 5);

        let semi = PlanBuilder::scan("customer", customer_schema())
            .join(
                PlanBuilder::scan("orders", orders_schema()),
                vec![("c_custkey", "o_custkey")],
                JoinType::Semi,
            )
            .build()
            .unwrap();
        assert_eq!(
            semi.schema().unwrap().column_names(),
            vec!["o_orderkey", "o_custkey", "o_totalprice"]
        );
    }

    #[test]
    fn invalid_column_reference_fails_at_build_time() {
        let result = PlanBuilder::scan("orders", orders_schema())
            .project(vec![(col("missing_column"), "x")])
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn projection_and_filter_preserve_or_rename() {
        let plan = PlanBuilder::scan("orders", orders_schema())
            .filter(col("o_orderkey").gt(lit(5i64)))
            .project(vec![
                (col("o_totalprice").mul(lit(2.0f64)), "double_price"),
                (col("o_orderkey"), "key"),
            ])
            .build()
            .unwrap();
        let schema = plan.schema().unwrap();
        assert_eq!(schema.column_names(), vec!["double_price", "key"]);
        assert_eq!(schema.data_type("double_price").unwrap(), DataType::Float64);
        assert_eq!(plan.name(), "Project");
        assert_eq!(plan.children().len(), 1);
    }

    #[test]
    fn sort_by_expressions_projects_hidden_keys_and_restores_schema() {
        // Plain column keys lower to a bare Sort.
        let direct = PlanBuilder::scan("orders", orders_schema())
            .sort_by(vec![(col("o_totalprice"), false)], None)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(direct.name(), "Sort");

        // Computed keys go through hidden sort columns.
        let computed = PlanBuilder::scan("orders", orders_schema())
            .sort_by(vec![(col("o_totalprice").mul(lit(-1.0f64)), true)], Some(5))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(computed.name(), "Project");
        assert_eq!(
            computed.schema().unwrap().column_names(),
            orders_schema().column_names(),
            "the hidden sort key must not leak into the output schema"
        );
        let display = computed.display_indent();
        assert!(display.contains("__sort_0"), "{display}");

        // Key expressions that do not type-check fail at build time.
        assert!(PlanBuilder::scan("orders", orders_schema())
            .sort_by(vec![(col("missing"), true)], None)
            .is_err());
    }

    #[test]
    fn global_aggregate_has_no_group_columns() {
        let plan = PlanBuilder::scan("orders", orders_schema())
            .aggregate(vec![], vec![sum(col("o_totalprice"), "total")])
            .build()
            .unwrap();
        assert_eq!(plan.schema().unwrap().column_names(), vec!["total"]);
    }
}
