/root/repo/target/debug/deps/quokka_storage-d9c998243b419f84.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/quokka_storage-d9c998243b419f84: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
