/root/repo/target/debug/deps/quokka_common-eadaa23381e83910.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs

/root/repo/target/debug/deps/libquokka_common-eadaa23381e83910.rlib: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs

/root/repo/target/debug/deps/libquokka_common-eadaa23381e83910.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/rng.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/metrics.rs:
crates/common/src/rng.rs:
