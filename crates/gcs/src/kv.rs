//! A transactional, versioned key-value store.
//!
//! This is the substrate under the typed GCS tables. It intentionally mimics
//! the subset of Redis semantics the paper relies on:
//!
//! * values are opaque byte strings addressed by string keys;
//! * a *transaction* groups reads (with optional version preconditions) and
//!   writes; the write set is applied atomically, and the transaction aborts
//!   if any watched key changed since it was read (optimistic concurrency,
//!   like `WATCH`/`MULTI`/`EXEC`);
//! * prefix scans support listing, e.g. "all committed lineage of channel X";
//! * an optional per-operation latency models the network round trip to the
//!   head node, so GCS traffic shows up in the cost model.
//!
//! The store has two backends behind one API. [`KvStore::new`] is the
//! authoritative in-memory store the driver owns. [`KvStore::remote`] is a
//! thin proxy used by worker processes in process mode: every operation
//! becomes one RPC to the driver's control server (see
//! [`remote`]), and transactions ship their read/write/delete
//! sets for server-side validation — exactly how a TaskManager talks to the
//! head-node Redis in the paper's deployment. The typed tables layer never
//! knows which backend it is running on.
//!
//! Remote semantics note: like a Ray worker that loses its GCS connection, a
//! proxy whose driver becomes unreachable is dead — infallible accessors
//! (`get`, `put`, ...) panic on connection loss, which tears down the worker
//! process and lets the driver-side failure detector reconcile it. Only the
//! transaction commit path reports errors, because aborts are part of its
//! contract.

use crate::remote::{self, ControlClient};
use bytes::Bytes;
use parking_lot::Mutex;
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotonically increasing version of one key. Version 0 means "never
/// written".
pub type Version = u64;

#[derive(Debug, Clone)]
struct Entry {
    value: Bytes,
    version: Version,
}

#[derive(Debug)]
enum Backend {
    /// The authoritative store: an in-memory versioned map.
    Local(Mutex<BTreeMap<String, Entry>>),
    /// A proxy: every operation is an RPC against the driver's store.
    Remote(Arc<ControlClient>),
}

/// The key-value store. Cheap to share: wrap it in an `Arc`.
#[derive(Debug)]
pub struct KvStore {
    backend: Backend,
    /// Total number of committed transactions (including single-op writes).
    committed: AtomicU64,
    /// Total number of aborted transactions.
    aborted: AtomicU64,
    /// Latency charged per GCS round trip (scaled sleep); zero disables it.
    /// Remote stores pay the real network round trip instead.
    op_latency: Duration,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new(Duration::ZERO)
    }
}

/// What a remote proxy does when the driver is unreachable: die loudly.
fn gcs_lost<T>(err: QuokkaError) -> T {
    panic!("GCS connection lost: {err}");
}

impl KvStore {
    /// Create an authoritative local store charging `op_latency` per
    /// operation (use `Duration::ZERO` to disable the simulated round trip).
    pub fn new(op_latency: Duration) -> Self {
        KvStore {
            backend: Backend::Local(Mutex::new(BTreeMap::new())),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            op_latency,
        }
    }

    /// Create a proxy store that forwards every operation to the driver's
    /// control server. No simulated latency: the wire is real here.
    pub fn remote(client: Arc<ControlClient>) -> Self {
        KvStore {
            backend: Backend::Remote(client),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            op_latency: Duration::ZERO,
        }
    }

    /// Whether this store is a remote proxy.
    pub fn is_remote(&self) -> bool {
        matches!(self.backend, Backend::Remote(_))
    }

    fn charge(&self) {
        if !self.op_latency.is_zero() {
            std::thread::sleep(self.op_latency);
        }
    }

    /// Read one key (value and version). Returns `None` if absent.
    pub fn get(&self, key: &str) -> Option<(Bytes, Version)> {
        self.charge();
        match &self.backend {
            Backend::Local(map) => map.lock().get(key).map(|e| (e.value.clone(), e.version)),
            Backend::Remote(c) => remote::remote_get(c, key).unwrap_or_else(gcs_lost),
        }
    }

    /// Read only the value of one key.
    pub fn get_value(&self, key: &str) -> Option<Bytes> {
        self.get(key).map(|(v, _)| v)
    }

    /// Whether a key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.charge();
        match &self.backend {
            Backend::Local(map) => map.lock().contains_key(key),
            Backend::Remote(c) => remote::remote_contains(c, key).unwrap_or_else(gcs_lost),
        }
    }

    /// Unconditionally write one key (a single-operation transaction).
    pub fn put(&self, key: impl Into<String>, value: impl Into<Bytes>) {
        self.charge();
        let key = key.into();
        let value = value.into();
        match &self.backend {
            Backend::Local(map) => {
                let mut map = map.lock();
                let version = map.get(&key).map(|e| e.version).unwrap_or(0) + 1;
                map.insert(key, Entry { value, version });
            }
            Backend::Remote(c) => remote::remote_put(c, &key, &value).unwrap_or_else(gcs_lost),
        }
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Unconditionally delete one key. Returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.charge();
        let removed = match &self.backend {
            Backend::Local(map) => map.lock().remove(key).is_some(),
            Backend::Remote(c) => remote::remote_delete(c, key).unwrap_or_else(gcs_lost),
        };
        if removed {
            self.committed.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Bytes)> {
        self.charge();
        match &self.backend {
            Backend::Local(map) => map
                .lock()
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, e)| (k.clone(), e.value.clone()))
                .collect(),
            Backend::Remote(c) => remote::remote_scan_prefix(c, prefix).unwrap_or_else(gcs_lost),
        }
    }

    /// Number of keys with the given prefix.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.charge();
        match &self.backend {
            Backend::Local(map) => {
                let map = map.lock();
                map.range(prefix.to_string()..).take_while(|(k, _)| k.starts_with(prefix)).count()
            }
            Backend::Remote(c) => remote::remote_count_prefix(c, prefix).unwrap_or_else(gcs_lost),
        }
    }

    /// Begin a transaction. Reads performed through the transaction record
    /// the observed versions; the commit aborts if any of them changed.
    pub fn begin(&self) -> Transaction<'_> {
        Transaction {
            store: self,
            read_set: Vec::new(),
            write_set: Vec::new(),
            delete_set: Vec::new(),
        }
    }

    /// Run `body` inside a transaction, retrying on abort up to `retries`
    /// times. This is the convenience most engine code uses: Algorithm 1
    /// commits its lineage, removes the finished task and enqueues the next
    /// task "in a single transaction".
    pub fn with_transaction<T>(
        &self,
        retries: usize,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 0;
        loop {
            let mut txn = self.begin();
            let out = body(&mut txn)?;
            match txn.commit() {
                Ok(()) => return Ok(out),
                Err(QuokkaError::TransactionAborted(_)) if attempt < retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Validate a read set's versions and, if none changed, apply the write
    /// and delete sets atomically. This is the commit both backends funnel
    /// into: locally it runs under the map lock; in process mode the proxy
    /// ships the sets here on the driver.
    pub fn commit_sets(
        &self,
        read_set: Vec<(String, Version)>,
        write_set: Vec<(String, Bytes)>,
        delete_set: Vec<String>,
    ) -> Result<()> {
        self.charge();
        let outcome = match &self.backend {
            Backend::Local(map) => {
                let mut map = map.lock();
                let conflict = read_set.iter().find_map(|(key, seen_version)| {
                    let current = map.get(key).map(|e| e.version).unwrap_or(0);
                    (current != *seen_version).then(|| (key.clone(), *seen_version, current))
                });
                match conflict {
                    Some((key, seen, current)) => Err(QuokkaError::TransactionAborted(format!(
                        "key '{key}' changed (saw v{seen}, now v{current})"
                    ))),
                    None => {
                        for (key, value) in write_set {
                            let version = map.get(&key).map(|e| e.version).unwrap_or(0) + 1;
                            map.insert(key, Entry { value, version });
                        }
                        for key in delete_set {
                            map.remove(&key);
                        }
                        Ok(())
                    }
                }
            }
            Backend::Remote(c) => remote::remote_commit(c, &read_set, &write_set, &delete_set),
        };
        match &outcome {
            Ok(()) => {
                self.committed.fetch_add(1, Ordering::Relaxed);
            }
            Err(QuokkaError::TransactionAborted(_)) => {
                self.aborted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
        outcome
    }

    /// Number of committed transactions so far.
    pub fn committed_transactions(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of aborted transactions so far.
    pub fn aborted_transactions(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Total number of keys currently stored.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Local(map) => map.lock().len(),
            Backend::Remote(c) => {
                remote::remote_u64(c, remote::OP_KV_LEN).unwrap_or_else(gcs_lost) as usize
            }
        }
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint of the stored metadata in bytes (keys +
    /// values). The paper argues the GCS footprint stays negligible thanks
    /// to the compact lineage naming scheme; tests assert on this.
    pub fn byte_size(&self) -> usize {
        match &self.backend {
            Backend::Local(map) => map.lock().iter().map(|(k, e)| k.len() + e.value.len()).sum(),
            Backend::Remote(c) => {
                remote::remote_u64(c, remote::OP_KV_BYTE_SIZE).unwrap_or_else(gcs_lost) as usize
            }
        }
    }

    /// Drop every key. Used between queries when a cluster is reused.
    pub fn clear(&self) {
        match &self.backend {
            Backend::Local(map) => map.lock().clear(),
            Backend::Remote(c) => remote::remote_clear(c).unwrap_or_else(gcs_lost),
        }
    }
}

/// An optimistic transaction against a [`KvStore`].
pub struct Transaction<'a> {
    store: &'a KvStore,
    /// Keys read through the transaction and the version observed.
    read_set: Vec<(String, Version)>,
    write_set: Vec<(String, Bytes)>,
    delete_set: Vec<String>,
}

impl<'a> Transaction<'a> {
    /// Read a key and watch it: if its version changes before commit, the
    /// transaction aborts.
    pub fn get(&mut self, key: &str) -> Option<Bytes> {
        let current = self.store.get(key);
        let version = current.as_ref().map(|(_, v)| *v).unwrap_or(0);
        self.read_set.push((key.to_string(), version));
        current.map(|(v, _)| v)
    }

    /// Queue a write.
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Bytes>) {
        self.write_set.push((key.into(), value.into()));
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: impl Into<String>) {
        self.delete_set.push(key.into());
    }

    /// Bytes queued for writing (used to account lineage bytes).
    pub fn pending_write_bytes(&self) -> usize {
        self.write_set.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// Atomically apply the write and delete sets, provided no watched key
    /// has changed since it was read.
    pub fn commit(self) -> Result<()> {
        self.store.commit_sets(self.read_set, self.write_set, self.delete_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_delete_roundtrip() {
        let kv = KvStore::default();
        assert!(kv.is_empty());
        assert!(!kv.is_remote());
        kv.put("a", Bytes::from_static(b"1"));
        assert_eq!(kv.get_value("a").unwrap(), Bytes::from_static(b"1"));
        assert!(kv.contains("a"));
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));
        assert!(kv.get("a").is_none());
    }

    #[test]
    fn versions_increase_monotonically() {
        let kv = KvStore::default();
        kv.put("k", Bytes::from_static(b"1"));
        let (_, v1) = kv.get("k").unwrap();
        kv.put("k", Bytes::from_static(b"2"));
        let (_, v2) = kv.get("k").unwrap();
        assert!(v2 > v1);
    }

    #[test]
    fn prefix_scan_in_order() {
        let kv = KvStore::default();
        kv.put("lineage/1", Bytes::from_static(b"a"));
        kv.put("lineage/2", Bytes::from_static(b"b"));
        kv.put("task/1", Bytes::from_static(b"c"));
        let rows = kv.scan_prefix("lineage/");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "lineage/1");
        assert_eq!(kv.count_prefix("task/"), 1);
        assert_eq!(kv.count_prefix("nope/"), 0);
    }

    #[test]
    fn transaction_commits_atomically() {
        let kv = KvStore::default();
        let mut txn = kv.begin();
        txn.put("x", Bytes::from_static(b"1"));
        txn.put("y", Bytes::from_static(b"2"));
        txn.delete("z");
        assert!(txn.pending_write_bytes() > 0);
        txn.commit().unwrap();
        assert_eq!(kv.get_value("x").unwrap(), Bytes::from_static(b"1"));
        assert_eq!(kv.get_value("y").unwrap(), Bytes::from_static(b"2"));
    }

    #[test]
    fn transaction_aborts_on_conflict() {
        let kv = KvStore::default();
        kv.put("counter", Bytes::from_static(b"0"));
        let mut txn = kv.begin();
        let _ = txn.get("counter");
        // Concurrent writer sneaks in.
        kv.put("counter", Bytes::from_static(b"9"));
        txn.put("counter", Bytes::from_static(b"1"));
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, QuokkaError::TransactionAborted(_)));
        assert_eq!(kv.get_value("counter").unwrap(), Bytes::from_static(b"9"));
        assert_eq!(kv.aborted_transactions(), 1);
    }

    #[test]
    fn with_transaction_retries_until_success() {
        let kv = Arc::new(KvStore::default());
        kv.put("n", Bytes::from_static(b"0"));
        // 8 threads increment a counter 50 times each with CAS semantics.
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        kv.with_transaction(1000, |txn| {
                            let current = txn.get("n").unwrap();
                            let value: u64 =
                                std::str::from_utf8(&current).unwrap().parse().unwrap();
                            txn.put("n", Bytes::from((value + 1).to_string()));
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let final_value: u64 =
            std::str::from_utf8(&kv.get_value("n").unwrap()).unwrap().parse().unwrap();
        assert_eq!(final_value, 400);
    }

    #[test]
    fn byte_size_tracks_contents() {
        let kv = KvStore::default();
        assert_eq!(kv.byte_size(), 0);
        kv.put("abc", Bytes::from_static(b"12345"));
        assert_eq!(kv.byte_size(), 8);
        kv.clear();
        assert_eq!(kv.byte_size(), 0);
        assert_eq!(kv.len(), 0);
    }

    #[test]
    fn op_latency_is_applied() {
        let kv = KvStore::new(Duration::from_millis(2));
        let start = std::time::Instant::now();
        kv.put("a", Bytes::from_static(b"1"));
        let _ = kv.get("a");
        assert!(start.elapsed() >= Duration::from_millis(4));
    }
}
