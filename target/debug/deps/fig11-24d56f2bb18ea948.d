/root/repo/target/debug/deps/fig11-24d56f2bb18ea948.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-24d56f2bb18ea948.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
