/root/repo/target/debug/deps/quokka_engine-364be007910e09c4.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/libquokka_engine-364be007910e09c4.rmeta: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
