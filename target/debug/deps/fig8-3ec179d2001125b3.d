/root/repo/target/debug/deps/fig8-3ec179d2001125b3.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-3ec179d2001125b3.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
