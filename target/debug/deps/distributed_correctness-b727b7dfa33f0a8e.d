/root/repo/target/debug/deps/distributed_correctness-b727b7dfa33f0a8e.d: tests/distributed_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_correctness-b727b7dfa33f0a8e.rmeta: tests/distributed_correctness.rs Cargo.toml

tests/distributed_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
