//! Property tests for SQL normalization — the plan cache's keying function.
//!
//! The cache key of a statement is its normalized **template** (literals
//! parameterized out, plus catalog generation and config fingerprint). Two
//! properties make that keying sound and useful, and both are checked on
//! randomized variants of all 22 TPC-H SQL statements:
//!
//! * **Insensitivity** — whitespace, comments, identifier/keyword case and
//!   literal *values* must not change the template: every such variant of a
//!   statement produces the identical cache key, so a serving workload that
//!   varies only parameters always hits.
//! * **Injectivity** — semantically different statements must not collide:
//!   distinct TPC-H queries have pairwise distinct templates, and any
//!   structural mutation of a statement's token stream (a token deleted or
//!   an operator swapped) changes its template.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use quokka::sql::lexer::{tokenize, Token, TokenKind};
use quokka::sql::{normalize, LiteralValue};
use quokka::tpch::queries::sql::{sql_text, SQL_QUERIES};

/// Re-render a token stream as concrete SQL with randomized inter-token
/// whitespace and comments, randomized identifier/keyword case, and —
/// when `perturb` is set — randomized literal values. Returns the text and
/// whether any literal actually changed.
fn render_variant(tokens: &[Token], rng: &mut TestRng, perturb: bool) -> (String, bool) {
    let mut text = String::new();
    let mut changed = false;
    for token in tokens {
        let piece = match &token.kind {
            TokenKind::Eof => break,
            TokenKind::Ident(name) => name
                .chars()
                .map(|c| if rng.below(2) == 0 { c.to_ascii_uppercase() } else { c })
                .collect::<String>(),
            TokenKind::Int(v) => {
                if perturb && rng.below(2) == 0 {
                    // Stay non-negative: a negative value would render as a
                    // Minus token plus an Int token — a different template.
                    let new = (v.unsigned_abs() % 10_000) as i64 + rng.below(97) as i64 + 1;
                    changed = changed || new != *v;
                    new.to_string()
                } else {
                    v.to_string()
                }
            }
            TokenKind::Float(v) => {
                if perturb && rng.below(2) == 0 {
                    let new = (v.abs() % 100.0) + (rng.below(900) as f64 + 1.0) / 100.0;
                    changed = changed || new != *v;
                    // `{:?}` keeps a decimal point ("1.0", not "1"), so the
                    // variant lexes back to a Float token.
                    format!("{new:?}")
                } else {
                    format!("{v:?}")
                }
            }
            TokenKind::Str(s) => {
                if perturb && rng.below(2) == 0 {
                    changed = true;
                    format!("'{s}{}'", char::from(b'a' + rng.below(26) as u8))
                } else {
                    format!("'{s}'")
                }
            }
            TokenKind::Semi => ";".to_string(),
            TokenKind::LParen => "(".to_string(),
            TokenKind::RParen => ")".to_string(),
            TokenKind::Comma => ",".to_string(),
            TokenKind::Dot => ".".to_string(),
            TokenKind::Star => "*".to_string(),
            TokenKind::Plus => "+".to_string(),
            TokenKind::Minus => "-".to_string(),
            TokenKind::Slash => "/".to_string(),
            TokenKind::Eq => "=".to_string(),
            TokenKind::NotEq => "<>".to_string(),
            TokenKind::Lt => "<".to_string(),
            TokenKind::LtEq => "<=".to_string(),
            TokenKind::Gt => ">".to_string(),
            TokenKind::GtEq => ">=".to_string(),
        };
        // Random separator (always at least one space, so adjacent tokens
        // never fuse): plain runs of whitespace or a line comment.
        let sep = match rng.below(6) {
            0 => " ",
            1 => "  ",
            2 => "\n",
            3 => "\t ",
            4 => " -- a comment\n ",
            _ => "\n\t",
        };
        text.push_str(sep);
        text.push_str(&piece);
    }
    if rng.below(2) == 0 {
        text.push_str(" ;");
    }
    (text, changed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whitespace/comment/case variants of a TPC-H statement normalize to
    /// the identical template *and* literal vector — byte-for-byte the same
    /// cache key as the original.
    #[test]
    fn tpch_variants_produce_identical_cache_keys(seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        let number = SQL_QUERIES[rng.below(SQL_QUERIES.len() as u64) as usize];
        let text = sql_text(number).unwrap();
        let base = normalize(text).unwrap();
        let tokens = tokenize(text).unwrap();
        for _ in 0..4 {
            let (variant, _) = render_variant(&tokens, &mut rng, false);
            let normalized = normalize(&variant)
                .unwrap_or_else(|e| panic!("Q{number} variant failed to lex: {e}\n{variant}"));
            prop_assert_eq!(
                &normalized.template, &base.template,
                "Q{} variant changed the template:\n{}", number, variant
            );
            prop_assert_eq!(
                &normalized.literals, &base.literals,
                "Q{} variant changed the literals:\n{}", number, variant
            );
        }
    }

    /// Literal-value variants keep the template (the cache key) but carry
    /// their own literal vector — a template hit that re-plans, never a
    /// false full hit.
    #[test]
    fn literal_variants_share_the_template_but_not_the_literals(seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        let number = SQL_QUERIES[rng.below(SQL_QUERIES.len() as u64) as usize];
        let text = sql_text(number).unwrap();
        let base = normalize(text).unwrap();
        let tokens = tokenize(text).unwrap();
        let (variant, changed) = render_variant(&tokens, &mut rng, true);
        let normalized = normalize(&variant).unwrap();
        prop_assert_eq!(
            &normalized.template, &base.template,
            "Q{}: literal values leaked into the template:\n{}", number, variant
        );
        prop_assert_eq!(normalized.literals.len(), base.literals.len());
        if changed {
            prop_assert!(
                normalized.literals != base.literals,
                "Q{}: a perturbed literal survived normalization unchanged", number
            );
        }
    }

    /// Structural mutations collide with nothing: deleting any single token
    /// (or swapping a comparison operator) yields a different template.
    #[test]
    fn structural_mutations_change_the_template(seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        let number = SQL_QUERIES[rng.below(SQL_QUERIES.len() as u64) as usize];
        let text = sql_text(number).unwrap();
        let base = normalize(text).unwrap();
        let mut tokens = tokenize(text).unwrap();
        // Drop the Eof sentinel, then delete one random real token.
        tokens.retain(|t| !matches!(t.kind, TokenKind::Eof));
        prop_assert!(tokens.len() > 2);
        if rng.below(2) == 0 {
            tokens.remove(rng.below(tokens.len() as u64) as usize);
        } else if let Some(token) = tokens
            .iter_mut()
            .filter(|t| matches!(t.kind, TokenKind::Lt | TokenKind::Gt))
            .nth(rng.below(4) as usize)
        {
            token.kind = match token.kind {
                TokenKind::Lt => TokenKind::LtEq,
                _ => TokenKind::GtEq,
            };
        } else {
            tokens.remove(rng.below(tokens.len() as u64) as usize);
        }
        let (mutated, _) = render_variant(&tokens, &mut rng, false);
        // Some deletions produce text the lexer itself rejects (e.g. a lone
        // quote) — those trivially cannot collide in the cache.
        if let Ok(normalized) = normalize(&mutated) {
            prop_assert!(
                normalized.template != base.template,
                "Q{}: a structurally mutated statement collided with the original:\n{}",
                number, mutated
            );
        }
    }
}

/// All 22 TPC-H statements key to pairwise-distinct templates: no two
/// benchmark queries can ever share a cache entry.
#[test]
fn all_22_tpch_templates_are_pairwise_distinct() {
    let templates: Vec<(usize, String)> = SQL_QUERIES
        .iter()
        .map(|&q| (q, normalize(sql_text(q).unwrap()).unwrap().template))
        .collect();
    for (i, (qa, a)) in templates.iter().enumerate() {
        for (qb, b) in &templates[i + 1..] {
            assert_ne!(a, b, "Q{qa} and Q{qb} share a cache template");
        }
    }
}

/// The normalized literal count matches what the statement visibly carries
/// (a smoke check that extraction walks the whole statement).
#[test]
fn every_tpch_query_parameterizes_its_literals() {
    for &q in &SQL_QUERIES {
        let normalized = normalize(sql_text(q).unwrap()).unwrap();
        assert!(
            !normalized.template.contains('\''),
            "Q{q}: a string literal survived in the template"
        );
        assert_eq!(
            normalized.template.matches('?').count(),
            normalized.literals.len(),
            "Q{q}: placeholder/literal count mismatch"
        );
        assert!(
            normalized.literals.iter().any(|l| matches!(
                l,
                LiteralValue::Int(_) | LiteralValue::Float(_) | LiteralValue::Str(_)
            )) || normalized.literals.is_empty(),
            "Q{q}: literal extraction produced nothing usable"
        );
    }
}
