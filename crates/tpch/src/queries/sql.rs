//! TPC-H queries as SQL text for the `quokka-sql` frontend.
//!
//! Nine queries are expressible in the frontend's grammar (no subqueries,
//! no self-joins, no outer joins) and are kept in batch-level parity with
//! their hand-built [`PlanBuilder`](quokka_plan::logical::PlanBuilder)
//! twins by the tests in this module. The SELECT lists deliberately match
//! the hand-built plans' output column order so results compare
//! positionally.
//!
//! The remaining queries need rewrites the frontend does not perform
//! (decorrelation into semi/anti joins, scalar subqueries as constant-key
//! joins, self-joins with aliased schemas); they stay hand-built in the
//! sibling `q01_q11` / `q12_q22` modules.
//!
//! The same nine queries also exist in the lazy DataFrame API
//! (`quokka::dataframe::tpch` in the facade crate); the workspace test
//! `tests/dataframe_tpch.rs` keeps all three forms in batch-level parity.

/// Query numbers available as SQL text.
pub const SQL_QUERIES: [usize; 9] = [1, 3, 5, 6, 9, 10, 12, 14, 19];

/// The SQL text for TPC-H query `number`, when the frontend's grammar can
/// express it.
pub fn sql_text(number: usize) -> Option<&'static str> {
    Some(match number {
        1 => Q1,
        3 => Q3,
        5 => Q5,
        6 => Q6,
        9 => Q9,
        10 => Q10,
        12 => Q12,
        14 => Q14,
        19 => Q19,
        _ => return None,
    })
}

const Q1: &str = "\
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus";

const Q3: &str = "\
SELECT l_orderkey, o_orderdate, o_shippriority,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10";

const Q5: &str = "\
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM region
JOIN nation ON r_regionkey = n_regionkey
JOIN customer ON n_nationkey = c_nationkey
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
JOIN supplier ON l_suppkey = s_suppkey
WHERE r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
  AND s_nationkey = c_nationkey
GROUP BY n_name
ORDER BY revenue DESC";

const Q6: &str = "\
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24";

const Q9: &str = "\
SELECT n_name AS nation,
       EXTRACT(YEAR FROM o_orderdate) AS o_year,
       sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit
FROM part
JOIN lineitem ON p_partkey = l_partkey
JOIN partsupp ON ps_partkey = l_partkey AND ps_suppkey = l_suppkey
JOIN supplier ON l_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN orders ON l_orderkey = o_orderkey
WHERE p_name LIKE '%green%'
GROUP BY nation, o_year
ORDER BY nation, o_year DESC";

const Q10: &str = "\
SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM nation
JOIN customer ON n_nationkey = c_nationkey
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20";

const Q12: &str = "\
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 0 ELSE 1 END) AS low_line_count
FROM orders
JOIN lineitem ON o_orderkey = l_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode";

const Q14: &str = "\
SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0.0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM part
JOIN lineitem ON p_partkey = l_partkey
WHERE l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-10-01'";

/// The generator spells the air ship modes `"AIR"` / `"REG AIR"`, matching
/// the hand-built plan (see `q12_q22::q19`).
const Q19: &str = "\
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM part
JOIN lineitem ON p_partkey = l_partkey
WHERE l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11
        AND p_size BETWEEN 1 AND 5)
    OR (p_brand = 'Brand#23'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= 10 AND l_quantity <= 20
        AND p_size BETWEEN 1 AND 10)
    OR (p_brand = 'Brand#34'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= 20 AND l_quantity <= 30
        AND p_size BETWEEN 1 AND 15))";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TpchGenerator;
    use quokka_plan::reference::{same_result, ReferenceExecutor};

    #[test]
    fn sql_texts_exist_exactly_for_the_sql_queries() {
        for q in 1..=22 {
            assert_eq!(sql_text(q).is_some(), SQL_QUERIES.contains(&q), "query {q}");
        }
        assert!(sql_text(0).is_none());
        assert!(sql_text(23).is_none());
    }

    /// Every SQL query must produce batch-identical results to its
    /// hand-built `PlanBuilder` twin on generated TPC-H data.
    #[test]
    fn sql_queries_match_their_plan_builder_twins() {
        let generator = TpchGenerator::new(0.005, 7).with_batch_rows(1024);
        let catalog = generator.catalog().unwrap();
        let executor = ReferenceExecutor::new(&catalog);
        for q in SQL_QUERIES {
            let sql = sql_text(q).unwrap();
            let sql_plan = quokka_sql::plan_query(sql, &catalog)
                .unwrap_or_else(|e| panic!("Q{q} failed to plan from SQL: {e}"));
            let hand_plan = super::super::query(q).unwrap();
            assert_eq!(
                sql_plan.schema().unwrap().column_names(),
                hand_plan.schema().unwrap().column_names(),
                "Q{q} output columns diverge from the hand-built plan"
            );
            let sql_result = executor
                .execute(&sql_plan)
                .unwrap_or_else(|e| panic!("Q{q} (SQL) failed to execute: {e}"));
            let hand_result = executor.execute(&hand_plan).unwrap();
            assert!(
                same_result(&sql_result, &hand_result),
                "Q{q}: SQL result ({} rows) != PlanBuilder result ({} rows)\nSQL plan:\n{}",
                sql_result.num_rows(),
                hand_result.num_rows(),
                sql_plan.display_indent(),
            );
        }
    }
}
