//! Compilation of a logical plan into a DAG of pipeline stages.
//!
//! This is the structure the paper's execution model is built around: a
//! query is a sequence of **stages**, each executed by data-parallel
//! **channels**, connected by hash-partitioned shuffles. Stateless
//! filter/project work is fused into the producing stage; every stateful
//! operator (join, aggregation, sort, limit) becomes its own stage.
//!
//! Tasks are later named `(stage, channel, sequence)` by the engine, so the
//! stage ids assigned here are the first component of every lineage record.

use crate::logical::LogicalPlan;
use crate::physical::{CoreOp, OperatorSpec, Transform};
use quokka_batch::Schema;
use quokka_common::ids::StageId;
use quokka_common::{QuokkaError, Result};

/// How many channels a stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One channel per configured slot (the cluster decides the number).
    DataParallel,
    /// Exactly one channel (global aggregates, sorts, limits).
    Single,
}

/// A base-table scan feeding a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    pub table: String,
    pub schema: Schema,
}

/// One stage of the compiled query.
#[derive(Debug, Clone)]
pub struct StageSpec {
    pub id: StageId,
    /// Upstream stage ids in operator-input order (for a join: `[build,
    /// probe]`).
    pub inputs: Vec<StageId>,
    /// The operator every channel of this stage runs.
    pub op: OperatorSpec,
    /// For leaf stages, the table being scanned.
    pub scan: Option<ScanSpec>,
    /// Column indices (into this stage's output schema) used to hash-
    /// partition output for the consuming stage. Empty means "everything to
    /// the consumer's channel 0" (the consumer is single-channel).
    pub partition_by: Vec<usize>,
    pub parallelism: Parallelism,
}

impl StageSpec {
    /// Output schema of this stage.
    pub fn output_schema(&self) -> Result<Schema> {
        self.op.output_schema()
    }

    /// Whether this stage reads a base table.
    pub fn is_scan(&self) -> bool {
        self.scan.is_some()
    }

    /// Whether the stage's operator carries state across tasks.
    pub fn is_stateful(&self) -> bool {
        self.op.is_stateful()
    }
}

/// The compiled stage DAG. Stages are stored in topological order (every
/// stage appears after all of its inputs); the last stage is the sink whose
/// output is the query result.
#[derive(Debug, Clone)]
pub struct StageGraph {
    pub stages: Vec<StageSpec>,
    pub sink: StageId,
}

impl StageGraph {
    /// Compile a logical plan.
    pub fn compile(plan: &LogicalPlan) -> Result<StageGraph> {
        let mut planner = Planner { stages: Vec::new() };
        let sink = planner.build(plan)?;
        Ok(StageGraph { stages: planner.stages, sink })
    }

    pub fn stage(&self, id: StageId) -> &StageSpec {
        &self.stages[id as usize]
    }

    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Stage ids that consume the output of `id` (0 or 1 for tree plans).
    pub fn consumers(&self, id: StageId) -> Vec<StageId> {
        self.stages.iter().filter(|s| s.inputs.contains(&id)).map(|s| s.id).collect()
    }

    /// The input position (operator input index) at which `producer` feeds
    /// `consumer`.
    pub fn input_index(&self, consumer: StageId, producer: StageId) -> Result<usize> {
        self.stage(consumer).inputs.iter().position(|&i| i == producer).ok_or_else(|| {
            QuokkaError::internal(format!("stage {producer} does not feed stage {consumer}"))
        })
    }

    /// Ids of stages in reverse topological order (sink first) — the order
    /// the paper's recovery algorithm (Algorithm 2) walks the stages in.
    pub fn reverse_topological(&self) -> Vec<StageId> {
        (0..self.stages.len() as StageId).rev().collect()
    }

    /// Number of stages whose operator is stateful — the paper's bound on
    /// pipeline-parallel recovery parallelism (§III-B).
    pub fn stateful_stage_count(&self) -> usize {
        self.stages.iter().filter(|s| s.is_stateful()).count()
    }

    /// An EXPLAIN-style rendering of the stage DAG.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for stage in &self.stages {
            let kind = match &stage.op.core {
                CoreOp::Map { .. } => "Map",
                CoreOp::HashJoin { .. } => "HashJoin",
                CoreOp::HashAggregate { .. } => "HashAggregate",
                CoreOp::Sort { .. } => "Sort",
                CoreOp::Limit { .. } => "Limit",
            };
            let scan =
                stage.scan.as_ref().map(|s| format!(" scan={}", s.table)).unwrap_or_default();
            out.push_str(&format!(
                "stage {}: {}{} inputs={:?} partition_by={:?} parallelism={:?} post={}\n",
                stage.id,
                kind,
                scan,
                stage.inputs,
                stage.partition_by,
                stage.parallelism,
                stage.op.post.len(),
            ));
        }
        out
    }
}

struct Planner {
    stages: Vec<StageSpec>,
}

impl Planner {
    fn push_stage(
        &mut self,
        inputs: Vec<StageId>,
        op: OperatorSpec,
        scan: Option<ScanSpec>,
        parallelism: Parallelism,
    ) -> StageId {
        let id = self.stages.len() as StageId;
        self.stages.push(StageSpec { id, inputs, op, scan, partition_by: Vec::new(), parallelism });
        id
    }

    fn build(&mut self, plan: &LogicalPlan) -> Result<StageId> {
        match plan {
            LogicalPlan::Scan { table, schema } => Ok(self.push_stage(
                vec![],
                OperatorSpec::new(CoreOp::Map { input_schema: schema.clone() }),
                Some(ScanSpec { table: table.clone(), schema: schema.clone() }),
                Parallelism::DataParallel,
            )),
            LogicalPlan::Filter { input, predicate } => {
                let child = self.build(input)?;
                self.stages[child as usize].op.post.push(Transform::Filter(predicate.clone()));
                Ok(child)
            }
            LogicalPlan::Project { input, exprs } => {
                let child = self.build(input)?;
                self.stages[child as usize].op.post.push(Transform::Project(exprs.clone()));
                Ok(child)
            }
            LogicalPlan::Join { build, probe, on, join_type } => {
                let build_stage = self.build(build)?;
                let probe_stage = self.build(probe)?;
                let build_schema = self.stages[build_stage as usize].output_schema()?;
                let probe_schema = self.stages[probe_stage as usize].output_schema()?;
                let mut build_keys = Vec::with_capacity(on.len());
                let mut probe_keys = Vec::with_capacity(on.len());
                for (b, p) in on {
                    build_keys.push(build_schema.index_of(b)?);
                    probe_keys.push(probe_schema.index_of(p)?);
                }
                self.stages[build_stage as usize].partition_by = build_keys.clone();
                self.stages[probe_stage as usize].partition_by = probe_keys.clone();
                // A keyless (cross) join cannot hash-partition its inputs:
                // every probe row must see every build row, so the join runs
                // on a single channel and both producers send it everything.
                let parallelism =
                    if on.is_empty() { Parallelism::Single } else { Parallelism::DataParallel };
                Ok(self.push_stage(
                    vec![build_stage, probe_stage],
                    OperatorSpec::new(CoreOp::HashJoin {
                        build_schema,
                        probe_schema,
                        build_keys,
                        probe_keys,
                        join_type: *join_type,
                    }),
                    None,
                    parallelism,
                ))
            }
            LogicalPlan::Aggregate { input, group_by, aggregates } => {
                let child = self.build(input)?;
                let input_schema = self.stages[child as usize].output_schema()?;
                // Data-parallel aggregation is only possible when the group
                // keys are plain columns the child's output can be hash
                // partitioned on; otherwise the aggregate runs on a single
                // channel.
                let key_indices: Option<Vec<usize>> = group_by
                    .iter()
                    .map(|(e, _)| match e {
                        crate::expr::Expr::Column(name) => input_schema.index_of(name).ok(),
                        _ => None,
                    })
                    .collect();
                let (parallelism, partition_by) = match key_indices {
                    Some(keys) if !keys.is_empty() => (Parallelism::DataParallel, keys),
                    _ => (Parallelism::Single, Vec::new()),
                };
                self.stages[child as usize].partition_by = partition_by;
                Ok(self.push_stage(
                    vec![child],
                    OperatorSpec::new(CoreOp::HashAggregate {
                        input_schema,
                        group_by: group_by.clone(),
                        aggregates: aggregates.clone(),
                    }),
                    None,
                    parallelism,
                ))
            }
            LogicalPlan::Sort { input, keys, limit } => {
                let child = self.build(input)?;
                let input_schema = self.stages[child as usize].output_schema()?;
                self.stages[child as usize].partition_by = Vec::new();
                Ok(self.push_stage(
                    vec![child],
                    OperatorSpec::new(CoreOp::Sort {
                        input_schema,
                        keys: keys.clone(),
                        limit: *limit,
                    }),
                    None,
                    Parallelism::Single,
                ))
            }
            LogicalPlan::Limit { input, n } => {
                let child = self.build(input)?;
                let input_schema = self.stages[child as usize].output_schema()?;
                self.stages[child as usize].partition_by = Vec::new();
                Ok(self.push_stage(
                    vec![child],
                    OperatorSpec::new(CoreOp::Limit { input_schema, n: *n }),
                    None,
                    Parallelism::Single,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::sum;
    use crate::expr::{col, lit};
    use crate::logical::{JoinType, PlanBuilder};
    use quokka_batch::DataType;

    fn lineitem() -> Schema {
        Schema::from_pairs(&[
            ("l_orderkey", DataType::Int64),
            ("l_extendedprice", DataType::Float64),
            ("l_discount", DataType::Float64),
        ])
    }

    fn orders() -> Schema {
        Schema::from_pairs(&[("o_orderkey", DataType::Int64), ("o_orderdate", DataType::Date)])
    }

    #[test]
    fn scan_filter_project_fuse_into_one_stage() {
        let plan = PlanBuilder::scan("lineitem", lineitem())
            .filter(col("l_discount").gt(lit(0.05f64)))
            .project(vec![(col("l_extendedprice"), "p")])
            .build()
            .unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        assert_eq!(graph.num_stages(), 1);
        let stage = graph.stage(0);
        assert!(stage.is_scan());
        assert!(!stage.is_stateful());
        assert_eq!(stage.op.post.len(), 2);
        assert_eq!(stage.output_schema().unwrap().column_names(), vec!["p"]);
    }

    #[test]
    fn join_creates_three_stages_with_key_partitioning() {
        let plan = PlanBuilder::scan("orders", orders())
            .join(
                PlanBuilder::scan("lineitem", lineitem()),
                vec![("o_orderkey", "l_orderkey")],
                JoinType::Inner,
            )
            .build()
            .unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        assert_eq!(graph.num_stages(), 3);
        assert_eq!(graph.sink, 2);
        // Build side (orders) partitions on o_orderkey (index 0), probe side
        // on l_orderkey (index 0).
        assert_eq!(graph.stage(0).partition_by, vec![0]);
        assert_eq!(graph.stage(1).partition_by, vec![0]);
        assert_eq!(graph.stage(2).inputs, vec![0, 1]);
        assert_eq!(graph.input_index(2, 0).unwrap(), 0);
        assert_eq!(graph.input_index(2, 1).unwrap(), 1);
        assert!(graph.input_index(1, 0).is_err());
        assert_eq!(graph.consumers(0), vec![2]);
        assert_eq!(graph.consumers(2), Vec::<StageId>::new());
        assert_eq!(graph.stateful_stage_count(), 1);
        assert_eq!(graph.reverse_topological(), vec![2, 1, 0]);
        assert!(graph.display().contains("HashJoin"));
    }

    #[test]
    fn aggregate_on_columns_is_data_parallel() {
        let plan = PlanBuilder::scan("lineitem", lineitem())
            .aggregate(
                vec![(col("l_orderkey"), "l_orderkey")],
                vec![sum(col("l_extendedprice"), "rev")],
            )
            .build()
            .unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        assert_eq!(graph.num_stages(), 2);
        assert_eq!(graph.stage(1).parallelism, Parallelism::DataParallel);
        assert_eq!(graph.stage(0).partition_by, vec![0]);
    }

    #[test]
    fn global_aggregate_and_sort_are_single_channel() {
        let plan = PlanBuilder::scan("lineitem", lineitem())
            .aggregate(vec![], vec![sum(col("l_extendedprice"), "rev")])
            .sort(vec![("rev", false)])
            .build()
            .unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        assert_eq!(graph.num_stages(), 3);
        assert_eq!(graph.stage(1).parallelism, Parallelism::Single);
        assert_eq!(graph.stage(2).parallelism, Parallelism::Single);
        assert!(graph.stage(0).partition_by.is_empty());
    }

    #[test]
    fn expression_group_keys_force_single_channel() {
        let plan = PlanBuilder::scan("orders", orders())
            .aggregate(vec![(col("o_orderdate").year(), "year")], vec![sum(col("o_orderkey"), "s")])
            .build()
            .unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        assert_eq!(graph.stage(1).parallelism, Parallelism::Single);
    }
}
