/root/repo/target/debug/deps/fig6-c142cb58181e3627.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-c142cb58181e3627.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
