//! The typed SQL abstract syntax tree produced by the parser.
//!
//! Every expression node carries the [`Pos`] of its first token so the
//! binder can report name-resolution and type errors against the original
//! SQL text.

use crate::error::Pos;
use quokka_batch::DataType;

/// Binary operators, covering arithmetic, comparison, and boolean logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// A scalar SQL expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlExpr {
    pub kind: ExprKind,
    pub pos: Pos,
}

impl SqlExpr {
    pub fn new(kind: ExprKind, pos: Pos) -> Self {
        SqlExpr { kind, pos }
    }
}

/// The expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `column` or `table.column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// `DATE 'YYYY-MM-DD'`, already validated and converted to days since
    /// the Unix epoch.
    Date(i32),
    Binary {
        op: BinOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    Not(Box<SqlExpr>),
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        expr: Box<SqlExpr>,
        pattern: String,
        negated: bool,
    },
    /// `expr [NOT] IN (item, ...)` — items must bind to literals.
    InList {
        expr: Box<SqlExpr>,
        items: Vec<SqlExpr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` — bounds must bind to literals.
    Between {
        expr: Box<SqlExpr>,
        low: Box<SqlExpr>,
        high: Box<SqlExpr>,
        negated: bool,
    },
    /// Searched `CASE WHEN cond THEN value ... ELSE otherwise END`.
    Case {
        branches: Vec<(SqlExpr, SqlExpr)>,
        else_expr: Box<SqlExpr>,
    },
    /// Function call: aggregates (`sum`, `avg`, `min`, `max`, `count`) and
    /// scalar functions (`substr`). `star` is set for `COUNT(*)`.
    Function {
        name: String,
        distinct: bool,
        star: bool,
        args: Vec<SqlExpr>,
    },
    /// `EXTRACT(YEAR FROM expr)`.
    ExtractYear(Box<SqlExpr>),
    /// `SUBSTRING(expr FROM start FOR len)` with 1-based start.
    Substring {
        expr: Box<SqlExpr>,
        start: usize,
        len: usize,
    },
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<SqlExpr>,
        to: DataType,
    },
    /// A scalar subquery `(SELECT ...)` used as a value in an expression.
    Subquery(Box<SelectStatement>),
    /// `EXISTS (SELECT ...)`; `NOT EXISTS` parses as `Not(Exists(..))` and
    /// is normalized by the binder.
    Exists(Box<SelectStatement>),
    /// `expr [NOT] IN (SELECT ...)` over a one-column subquery.
    InSubquery {
        expr: Box<SqlExpr>,
        statement: Box<SelectStatement>,
        negated: bool,
    },
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *` (only valid as the sole item).
    Wildcard,
    /// An expression with an optional `AS alias`.
    Expr { expr: SqlExpr, alias: Option<String> },
}

/// What a FROM-clause entry reads from: a named base table or a derived
/// table (a parenthesized subquery, which always requires an alias).
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    Named(String),
    Subquery(Box<SelectStatement>),
}

/// A table in the FROM clause: `name [AS alias]` or `(SELECT ...) alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub source: TableSource,
    pub alias: Option<String>,
    pub pos: Pos,
}

impl TableRef {
    /// The name the table's columns are qualified by. Derived tables always
    /// carry an alias (the parser enforces it), so the fallback only
    /// applies to named tables.
    pub fn binding_name(&self) -> &str {
        if let Some(alias) = &self.alias {
            return alias;
        }
        match &self.source {
            TableSource::Named(name) => name,
            TableSource::Subquery(_) => "<derived>",
        }
    }
}

/// How a FROM-clause entry joins the tables before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN ... ON ...`.
    Inner,
    /// `CROSS JOIN` or a comma-separated FROM entry: no ON condition; the
    /// optimizer's filter-to-join rule recovers equi-joins from WHERE
    /// equalities.
    Cross,
    /// `LEFT [OUTER] JOIN ... ON ...` — preserves the accumulated (left)
    /// side; unmatched rows carry type-default values for the right table's
    /// columns (the engine has no NULLs).
    Left,
}

/// One join step in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub kind: JoinKind,
    pub on: Option<SqlExpr>,
}

/// One ORDER BY key: an output column reference plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: SqlExpr,
    pub ascending: bool,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Whether the statement was prefixed with `EXPLAIN` (print the plan
    /// before and after optimization instead of executing).
    pub explain: bool,
    /// `SELECT DISTINCT` — lowered to an aggregation over every projected
    /// column with no aggregate calls.
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    pub selection: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<usize>,
}
