/root/repo/target/release/deps/criterion-ea78188a04eb7fd2.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ea78188a04eb7fd2.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ea78188a04eb7fd2.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
