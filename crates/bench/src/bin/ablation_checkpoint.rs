//! §V-C ablation: the overhead of periodic state checkpointing, swept over
//! the checkpoint interval, compared against spooling and write-ahead
//! lineage. The paper reports that even incremental checkpointing performs
//! much worse than spooling for operators whose state grows (join hash
//! tables); this harness shows the same ordering.

use quokka::FaultStrategy;
use quokka_bench::{print_header, print_row, queries_from_env, workers_from_env, Harness};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let workers = workers_from_env(&[4])[0];
    let queries = queries_from_env(&[3, 5, 9]);

    print_header(
        &format!("Checkpointing ablation on {workers} workers (overhead vs no fault tolerance)"),
        &["wal", "spool", "ckpt-16", "ckpt-4", "ckpt bytes MB"],
    );
    for &q in &queries {
        let base = harness.run(
            "none",
            q,
            &harness.quokka_config(workers).with_fault(FaultStrategy::None),
        )?;
        let wal = harness.run("wal", q, &harness.quokka_config(workers))?;
        let spool = harness.run(
            "spool",
            q,
            &harness.quokka_config(workers).with_fault(FaultStrategy::Spooling),
        )?;
        let ckpt16 = harness.run(
            "ckpt16",
            q,
            &harness
                .quokka_config(workers)
                .with_fault(FaultStrategy::Checkpointing { interval_tasks: 16 }),
        )?;
        let ckpt4 = harness.run(
            "ckpt4",
            q,
            &harness
                .quokka_config(workers)
                .with_fault(FaultStrategy::Checkpointing { interval_tasks: 4 }),
        )?;
        print_row(
            q,
            &[
                wal.seconds / base.seconds.max(1e-9),
                spool.seconds / base.seconds.max(1e-9),
                ckpt16.seconds / base.seconds.max(1e-9),
                ckpt4.seconds / base.seconds.max(1e-9),
                ckpt4.metrics.checkpoint_bytes as f64 / 1e6,
            ],
        );
    }
    println!("paper shape: checkpointing > spooling >> write-ahead lineage in overhead");
    Ok(())
}
