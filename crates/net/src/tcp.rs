//! The TCP transport: shuffle pushes over real sockets.
//!
//! Modelled on timely-dataflow's communication stack: every push is encoded
//! into a pooled byte slab ([`SlabPool`]) and handed to the destination
//! peer's *send lane* — one dedicated send thread behind a bounded queue.
//! A full queue blocks the producer in [`Transport::send`], which is the
//! end-to-end backpressure story: a stalled consumer stops reading, the
//! peer's TCP window fills, the send thread blocks in `write`, the queue
//! fills, and producers stall instead of buffering without bound.
//!
//! One listener serves the whole process; a recv thread per accepted
//! connection reassembles length-prefixed frames and hands them to the
//! delivery callback (in the engine: an insert into the destination
//! worker's [`FlightServer`](crate::FlightServer) inbox — idempotent, so
//! duplicate frames from publish retries are harmless).
//!
//! Sends are fire-and-forget: `send` returns once the frame is queued.
//! That is safe under write-ahead lineage because a frame that is queued on
//! a live connection always arrives (TCP is reliable), and frames lost with
//! a dying peer are exactly the slices the recovery machinery replays from
//! lineage and local backups. Connection teardown surfaces as the typed
//! [`QuokkaError::WorkerFailed`] the retry/suspicion machinery already
//! understands.
//!
//! [`QuokkaError::WorkerFailed`]: quokka_common::QuokkaError::WorkerFailed

use crate::slab::SlabPool;
use crate::transport::Transport;
use parking_lot::RwLock;
use quokka_batch::{wire, Batch};
use quokka_common::ids::{ChannelAddr, PartitionName, TaskName, WorkerId};
use quokka_common::metrics::MetricsRegistry;
use quokka_common::{QuokkaError, Result, TransportConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Frame tag for a shuffle push (the data plane's only frame type; the tag
/// byte keeps the framing extensible).
const FRAME_PUSH: u8 = 1;

/// Upper bound on a single frame, as a corruption guard: a length prefix
/// beyond this aborts the connection instead of sizing an allocation.
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Delivery callback invoked by recv threads for every reassembled frame:
/// `(source, destination, consumer, producer, batches)`.
pub type DeliverFn =
    Arc<dyn Fn(WorkerId, WorkerId, ChannelAddr, PartitionName, Vec<Batch>) + Send + Sync>;

/// The per-peer send side: a bounded queue drained by one send thread.
#[derive(Clone)]
struct SendLane {
    queue: SyncSender<Vec<u8>>,
    /// Current queue occupancy (incremented at enqueue, decremented by the
    /// send thread), used for the backpressure high-water mark.
    depth: Arc<AtomicU64>,
}

struct TcpInner {
    queue_frames: usize,
    pool: SlabPool,
    metrics: Arc<MetricsRegistry>,
    deliver: DeliverFn,
    /// Send lane per worker; `None` means the worker is local to this
    /// process (delivery is a direct call) or its lane was torn down.
    lanes: RwLock<Vec<Option<SendLane>>>,
    /// Workers whose connections were torn down; sends fail immediately.
    dead: Vec<AtomicBool>,
    shutdown: AtomicBool,
    listen_addr: SocketAddr,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Clones of every live socket, so shutdown can abort transport threads
    /// blocked in `read`/`write` by shutting the sockets down hard.
    socks: Mutex<Vec<TcpStream>>,
}

/// TCP transport handle. Dropping it tears down every connection and joins
/// all transport threads.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("listen_addr", &self.inner.listen_addr)
            .field("workers", &self.inner.dead.len())
            .finish()
    }
}

impl TcpTransport {
    /// Bind a listener for this process and start accepting connections.
    /// No send lanes exist yet; wire peers up with
    /// [`connect_peer`](Self::connect_peer) (or use
    /// [`loopback`](Self::loopback) for the single-process case).
    pub fn bind(
        workers: u32,
        config: &TransportConfig,
        metrics: Arc<MetricsRegistry>,
        deliver: DeliverFn,
    ) -> Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| QuokkaError::Transient(format!("transport bind failed: {e}")))?;
        let listen_addr = listener
            .local_addr()
            .map_err(|e| QuokkaError::Transient(format!("transport local_addr failed: {e}")))?;
        let inner = Arc::new(TcpInner {
            queue_frames: config.send_queue_frames.max(1),
            pool: SlabPool::new(config.slab_bytes, config.max_pooled_slabs),
            metrics,
            deliver,
            lanes: RwLock::new((0..workers).map(|_| None).collect()),
            dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            shutdown: AtomicBool::new(false),
            listen_addr,
            threads: Mutex::new(Vec::new()),
            socks: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = thread::Builder::new()
            .name("quokka-tcp-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))
            .map_err(|e| QuokkaError::Transient(format!("transport accept spawn failed: {e}")))?;
        inner.threads.lock().expect("transport thread list poisoned").push(accept);
        Ok(TcpTransport { inner })
    }

    /// A fully wired single-process transport: every worker's lane connects
    /// back to this process's own listener, so all cross-worker pushes
    /// travel over real loopback sockets.
    pub fn loopback(
        workers: u32,
        config: &TransportConfig,
        metrics: Arc<MetricsRegistry>,
        deliver: DeliverFn,
    ) -> Result<Self> {
        let t = Self::bind(workers, config, metrics, deliver)?;
        let addr = t.local_addr();
        for w in 0..workers {
            t.connect_peer(w, addr)?;
        }
        Ok(t)
    }

    /// The address of this process's listener (hand it to peer processes).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.listen_addr
    }

    /// Open the send lane towards `worker`, hosted at `addr`: one TCP
    /// connection, one bounded queue, one send thread.
    pub fn connect_peer(&self, worker: WorkerId, addr: SocketAddr) -> Result<()> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            QuokkaError::Transient(format!("transport connect to worker {worker} failed: {e}"))
        })?;
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            self.inner.socks.lock().expect("transport sock list poisoned").push(clone);
        }
        let (tx, rx) = sync_channel::<Vec<u8>>(self.inner.queue_frames);
        let depth = Arc::new(AtomicU64::new(0));
        let lane = SendLane { queue: tx, depth: Arc::clone(&depth) };
        let send_inner = Arc::clone(&self.inner);
        let handle = thread::Builder::new()
            .name(format!("quokka-tcp-send-{worker}"))
            .spawn(move || {
                let mut stream = stream;
                while let Ok(slab) = rx.recv() {
                    depth.fetch_sub(1, Ordering::SeqCst);
                    let header = (slab.len() as u32).to_be_bytes();
                    if stream.write_all(&header).and_then(|_| stream.write_all(&slab)).is_err() {
                        // The peer's end of the wire is gone: poison the
                        // lane so producers see WorkerFailed, and drain the
                        // queue so blocked producers wake up.
                        send_inner.dead[worker as usize].store(true, Ordering::SeqCst);
                        break;
                    }
                    send_inner.pool.release(slab);
                }
                // Dropping `rx` disconnects the queue; producers blocked in
                // send() observe SendError and map it to WorkerFailed.
            })
            .map_err(|e| QuokkaError::Transient(format!("transport send spawn failed: {e}")))?;
        self.inner.threads.lock().expect("transport thread list poisoned").push(handle);
        let mut lanes = self.inner.lanes.write();
        if (worker as usize) < lanes.len() {
            lanes[worker as usize] = Some(lane);
        }
        Ok(())
    }

    /// Observability for tests/benches: slab-pool allocation count.
    pub fn slab_allocations(&self) -> u64 {
        self.inner.pool.allocations()
    }

    fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drop every lane: send threads drain and exit, closing their
        // sockets, which EOFs the matching recv threads.
        for lane in self.inner.lanes.write().iter_mut() {
            *lane = None;
        }
        // Abort any transport thread blocked in a socket read or write: a
        // hard shutdown on every connection errors those calls out.
        for sock in self.inner.socks.lock().expect("transport sock list poisoned").drain(..) {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
        // Poke the listener so the accept loop observes the flag.
        let _ = TcpStream::connect(self.inner.listen_addr);
        loop {
            let handles =
                std::mem::take(&mut *self.inner.threads.lock().expect("thread list poisoned"));
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpTransport {
    fn send(
        &self,
        source: WorkerId,
        destination: WorkerId,
        consumer: ChannelAddr,
        producer: PartitionName,
        batches: Vec<Batch>,
    ) -> Result<()> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(QuokkaError::Transient("transport is shut down".into()));
        }
        if inner.dead.get(destination as usize).is_some_and(|d| d.load(Ordering::SeqCst)) {
            return Err(QuokkaError::WorkerFailed(destination));
        }
        // Same-worker transfers never touch the wire (the paper's
        // same-machine flight path), and neither do workers local to this
        // process (no lane).
        let lane = if source == destination {
            None
        } else {
            inner.lanes.read().get(destination as usize).and_then(|l| l.clone())
        };
        let Some(lane) = lane else {
            (inner.deliver)(source, destination, consumer, producer, batches);
            return Ok(());
        };
        let mut slab = inner.pool.acquire();
        encode_push(&mut slab, source, destination, consumer, producer, &batches);
        let frame_bytes = slab.len() as u64;
        // Depth is sampled *before* the (possibly blocking) enqueue, so the
        // high-water mark records how full the bounded queue got.
        let depth = lane.depth.fetch_add(1, Ordering::SeqCst) + 1;
        inner.metrics.add_wire_send(destination, frame_bytes, depth);
        if let Err(err) = lane.queue.send(slab) {
            lane.depth.fetch_sub(1, Ordering::SeqCst);
            inner.dead[destination as usize].store(true, Ordering::SeqCst);
            inner.pool.release(err.0);
            return Err(QuokkaError::WorkerFailed(destination));
        }
        Ok(())
    }

    fn fail_peer(&self, worker: WorkerId) {
        if let Some(d) = self.inner.dead.get(worker as usize) {
            d.store(true, Ordering::SeqCst);
        }
        // Dropping the lane disconnects the queue: the send thread drains
        // and exits, closing the connection towards the dead worker.
        if let Some(lane) = self.inner.lanes.write().get_mut(worker as usize) {
            *lane = None;
        }
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<TcpInner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(1));
            continue;
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            inner.socks.lock().expect("transport sock list poisoned").push(clone);
        }
        let recv_inner = Arc::clone(&inner);
        let handle = thread::Builder::new()
            .name("quokka-tcp-recv".into())
            .spawn(move || recv_loop(stream, recv_inner));
        if let Ok(handle) = handle {
            inner.threads.lock().expect("transport thread list poisoned").push(handle);
        }
    }
}

/// Read length-prefixed frames off one connection until EOF (peer closed or
/// died) or a malformed frame, delivering each to the callback.
fn recv_loop(mut stream: TcpStream, inner: Arc<TcpInner>) {
    let mut payload = Vec::new();
    loop {
        let mut header = [0u8; 4];
        if stream.read_exact(&mut header).is_err() {
            return; // EOF: the peer closed the connection (or died).
        }
        let len = u32::from_be_bytes(header);
        if len > MAX_FRAME_BYTES {
            return; // Corrupt length prefix: abort the connection.
        }
        payload.clear();
        payload.resize(len as usize, 0);
        if stream.read_exact(&mut payload).is_err() {
            return; // Truncated mid-frame: the peer died while sending.
        }
        let Ok((source, destination, consumer, producer, batches)) = decode_push(&payload) else {
            return; // Malformed frame: typed decode error, never a panic.
        };
        inner.metrics.add_wire_recv(source, len as u64);
        (inner.deliver)(source, destination, consumer, producer, batches);
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn encode_push(
    slab: &mut Vec<u8>,
    source: WorkerId,
    destination: WorkerId,
    consumer: ChannelAddr,
    producer: PartitionName,
    batches: &[Batch],
) {
    wire::put_u8(slab, FRAME_PUSH);
    wire::put_u32(slab, source);
    wire::put_u32(slab, destination);
    wire::put_u32(slab, consumer.stage);
    wire::put_u32(slab, consumer.channel);
    wire::put_u32(slab, producer.stage);
    wire::put_u32(slab, producer.channel);
    wire::put_u32(slab, producer.seq);
    wire::encode_batches_into(batches, slab);
}

#[allow(clippy::type_complexity)]
fn decode_push(
    payload: &[u8],
) -> Result<(WorkerId, WorkerId, ChannelAddr, PartitionName, Vec<Batch>)> {
    let mut r = wire::WireReader::new(payload);
    let tag = r.u8()?;
    if tag != FRAME_PUSH {
        return Err(QuokkaError::Storage(format!("unknown transport frame tag {tag}")));
    }
    let source = r.u32()?;
    let destination = r.u32()?;
    let consumer = ChannelAddr::new(r.u32()?, r.u32()?);
    let producer = TaskName::new(r.u32()?, r.u32()?, r.u32()?);
    let batches = wire::decode_batches_from(&mut r)?;
    r.expect_end()?;
    Ok((source, destination, consumer, producer, batches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType, Schema};
    use std::sync::Condvar;

    fn big_batch(tag: i64, rows: usize) -> Batch {
        Batch::try_new(
            Schema::from_pairs(&[("x", DataType::Int64)]),
            vec![Column::Int64((0..rows as i64).map(|i| i ^ tag).collect())],
        )
        .unwrap()
    }

    type SeenDeliveries = Arc<Mutex<Vec<(WorkerId, PartitionName, Vec<Batch>)>>>;

    fn collecting_deliver() -> (DeliverFn, SeenDeliveries) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let deliver: DeliverFn = Arc::new(move |_src, dest, _consumer, producer, batches| {
            sink.lock().unwrap().push((dest, producer, batches));
        });
        (deliver, seen)
    }

    #[test]
    fn frames_cross_the_wire_and_arrive_intact() {
        let (deliver, seen) = collecting_deliver();
        let t = TcpTransport::loopback(3, &TransportConfig::tcp(), MetricsRegistry::new(), deliver)
            .unwrap();
        let consumer = ChannelAddr::new(1, 2);
        let batch = big_batch(7, 100);
        for seq in 0..4u32 {
            t.send(0, 2, consumer, TaskName::new(0, 0, seq), vec![batch.clone()]).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().unwrap().len() < 4 {
            assert!(std::time::Instant::now() < deadline, "frames never arrived");
            thread::sleep(Duration::from_millis(1));
        }
        let got = seen.lock().unwrap();
        assert!(got.iter().all(|(dest, _, b)| *dest == 2 && b[0] == batch));
        let seqs: Vec<u32> = got.iter().map(|(_, p, _)| p.seq).collect();
        assert_eq!(seqs.len(), 4);
    }

    #[test]
    fn same_worker_pushes_skip_the_wire() {
        let (deliver, seen) = collecting_deliver();
        let metrics = MetricsRegistry::new();
        let t = TcpTransport::loopback(2, &TransportConfig::tcp(), Arc::clone(&metrics), deliver)
            .unwrap();
        t.send(1, 1, ChannelAddr::new(0, 0), TaskName::new(0, 0, 0), vec![big_batch(1, 10)])
            .unwrap();
        // Delivered synchronously, and no wire counters moved.
        assert_eq!(seen.lock().unwrap().len(), 1);
        assert!(metrics.snapshot(Duration::ZERO).transport_peers.is_empty());
    }

    #[test]
    fn failed_peer_rejects_sends_with_typed_error() {
        let (deliver, _) = collecting_deliver();
        let t = TcpTransport::loopback(2, &TransportConfig::tcp(), MetricsRegistry::new(), deliver)
            .unwrap();
        t.fail_peer(1);
        let err = t.send(0, 1, ChannelAddr::new(0, 0), TaskName::new(0, 0, 0), vec![]);
        assert!(matches!(err, Err(QuokkaError::WorkerFailed(1))));
        // Unrelated peers still work.
        t.send(1, 0, ChannelAddr::new(0, 0), TaskName::new(0, 0, 0), vec![]).unwrap();
    }

    #[test]
    fn corrupt_frames_drop_the_connection_not_the_process() {
        let (deliver, seen) = collecting_deliver();
        let t = TcpTransport::loopback(2, &TransportConfig::tcp(), MetricsRegistry::new(), deliver)
            .unwrap();
        // A raw connection spraying garbage at the listener must be torn
        // down by the typed decode error without affecting real lanes.
        let mut rogue = TcpStream::connect(t.local_addr()).unwrap();
        rogue.write_all(&8u32.to_be_bytes()).unwrap();
        rogue.write_all(&[0xFF; 8]).unwrap();
        rogue.flush().unwrap();
        t.send(0, 1, ChannelAddr::new(0, 0), TaskName::new(0, 0, 9), vec![big_batch(3, 5)])
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().unwrap().is_empty() {
            assert!(std::time::Instant::now() < deadline, "legit frame never arrived");
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(seen.lock().unwrap()[0].1, TaskName::new(0, 0, 9));
    }

    /// The acceptance-criteria backpressure test: with the delivery side
    /// stalled, producers block once the bounded queue (plus the frames a
    /// loopback socket can absorb) is full — the send-queue depth never
    /// exceeds its configured limit and nothing is buffered without bound.
    /// Releasing the consumer drains every frame without loss.
    #[test]
    fn bounded_queue_blocks_producers_and_drains_without_loss() {
        const QUEUE_FRAMES: usize = 2;
        const TOTAL: usize = 10;
        // ~8MB per frame: larger than anything the loopback socket buffers
        // can absorb (tcp_wmem caps at a few MB and a never-reading
        // receiver's window stays small), so the bounded queue is what
        // producers feel.
        const ROWS: usize = 1_000_000;

        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let delivered = Arc::new(Mutex::new(Vec::<(PartitionName, Vec<Batch>)>::new()));
        let deliver: DeliverFn = {
            let gate = Arc::clone(&gate);
            let delivered = Arc::clone(&delivered);
            Arc::new(move |_src, _dest, _consumer, producer, batches| {
                let (open, cv) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                drop(open);
                delivered.lock().unwrap().push((producer, batches));
            })
        };
        let config = TransportConfig {
            send_queue_frames: QUEUE_FRAMES,
            ..quokka_common::TransportConfig::tcp()
        };
        let metrics = MetricsRegistry::new();
        let t =
            Arc::new(TcpTransport::loopback(2, &config, Arc::clone(&metrics), deliver).unwrap());
        // If an assertion below fails, the unwind must open the gate before
        // the transport's Drop joins its threads, or a recv thread parked
        // in the stalled deliver callback would deadlock the teardown.
        struct GateOpener(Arc<(Mutex<bool>, Condvar)>);
        impl Drop for GateOpener {
            fn drop(&mut self) {
                let (open, cv) = &*self.0;
                *open.lock().unwrap() = true;
                cv.notify_all();
            }
        }
        let opener = GateOpener(Arc::clone(&gate));

        let completed = Arc::new(AtomicU64::new(0));
        let producer = {
            let t = Arc::clone(&t);
            let completed = Arc::clone(&completed);
            thread::spawn(move || {
                for seq in 0..TOTAL as u32 {
                    t.send(
                        0,
                        1,
                        ChannelAddr::new(2, 0),
                        TaskName::new(1, 0, seq),
                        vec![big_batch(seq as i64, ROWS)],
                    )
                    .unwrap();
                    completed.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        // With the consumer stalled, the producer must wedge well short of
        // TOTAL: the queue holds QUEUE_FRAMES, the send thread one more,
        // and the socket a bounded few. Wait until progress stops.
        let mut last = u64::MAX;
        let mut stable = 0;
        for _ in 0..500 {
            let now = completed.load(Ordering::SeqCst);
            stable = if now == last { stable + 1 } else { 0 };
            last = now;
            if stable >= 20 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(
            last < TOTAL as u64,
            "producer never blocked: all {TOTAL} sends completed with the consumer stalled"
        );
        assert!(delivered.lock().unwrap().is_empty());

        // Release the consumer: everything drains, nothing is lost, and
        // the recorded queue high-water mark respected the bound.
        drop(opener);
        producer.join().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while delivered.lock().unwrap().len() < TOTAL {
            assert!(std::time::Instant::now() < deadline, "frames lost after release");
            thread::sleep(Duration::from_millis(2));
        }
        let got = delivered.lock().unwrap();
        let mut seqs: Vec<u32> = got.iter().map(|(p, _)| p.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..TOTAL as u32).collect::<Vec<_>>());
        for (p, batches) in got.iter() {
            assert_eq!(batches[0], big_batch(p.seq as i64, ROWS), "frame {p} corrupted");
        }
        let snap = metrics.snapshot(Duration::ZERO);
        let peer = snap.transport_peers.iter().find(|s| s.peer == 1).unwrap();
        assert_eq!(peer.frames_sent, TOTAL as u64);
        assert!(
            peer.send_queue_peak <= QUEUE_FRAMES as u64 + 1,
            "queue depth {} exceeded its bound {}",
            peer.send_queue_peak,
            QUEUE_FRAMES
        );
    }

    #[test]
    fn push_frame_roundtrip() {
        let mut slab = Vec::new();
        let batch = big_batch(42, 17);
        encode_push(
            &mut slab,
            3,
            5,
            ChannelAddr::new(2, 1),
            TaskName::new(1, 4, 9),
            std::slice::from_ref(&batch),
        );
        let (src, dest, consumer, producer, batches) = decode_push(&slab).unwrap();
        assert_eq!((src, dest), (3, 5));
        assert_eq!(consumer, ChannelAddr::new(2, 1));
        assert_eq!(producer, TaskName::new(1, 4, 9));
        assert_eq!(batches, vec![batch]);
        // Truncated and mis-tagged payloads are typed errors.
        assert!(decode_push(&slab[..slab.len() - 1]).is_err());
        let mut bad = slab.clone();
        bad[0] = 99;
        assert!(decode_push(&bad).is_err());
    }
}
