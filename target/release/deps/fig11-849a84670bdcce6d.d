/root/repo/target/release/deps/fig11-849a84670bdcce6d.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-849a84670bdcce6d: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
