//! Integration test: the `QUOKKA_WATCHDOG_SECS` override path.
//!
//! Environment variables are process-global, so every scenario lives in one
//! test function (and this file is its own test binary): set → run →
//! restore, with no other test racing the variable.

use quokka::{EngineConfig, QuokkaError, QuokkaSession};
use std::time::Duration;

const VAR: &str = "QUOKKA_WATCHDOG_SECS";

#[test]
fn watchdog_env_override_is_validated_loudly_and_reported() {
    let session = QuokkaSession::tpch(0.002, 2).expect("generate TPC-H data");
    let plan = quokka::tpch::query(6).unwrap();
    let config = EngineConfig::quokka(2);

    // A malformed override used to be swallowed by `.ok()` and silently
    // fall back to the default; now the query refuses to start.
    std::env::set_var(VAR, "five");
    match session.run_with(&plan, &config) {
        Err(QuokkaError::Config(message)) => {
            assert!(message.contains(VAR), "error must name the variable: {message}");
            assert!(message.contains("five"), "error must echo the bad value: {message}");
        }
        Err(other) => panic!("expected a Config error for a malformed {VAR}, got: {other}"),
        Ok(_) => panic!("a malformed {VAR} must abort the query before it starts"),
    }

    // Zero would disable the stall detector entirely — also rejected.
    std::env::set_var(VAR, "0");
    assert!(
        matches!(session.run_with(&plan, &config), Err(QuokkaError::Config(_))),
        "{VAR}=0 must be rejected"
    );

    // A valid override takes effect and is visible in the run's metrics.
    std::env::set_var(VAR, "99");
    let outcome = session.run_with(&plan, &config).expect("valid override");
    assert_eq!(outcome.metrics.effective_watchdog, Duration::from_secs(99));

    // Without the variable the builder/default value is used and reported.
    std::env::remove_var(VAR);
    let outcome = session.run_with(&plan, &config).expect("no override");
    assert_eq!(outcome.metrics.effective_watchdog, config.watchdog);
}
