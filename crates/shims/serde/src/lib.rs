//! Offline stand-in for `serde` (see `serde_derive` shim for rationale).
//!
//! Only the derive macro names are consumed by this codebase; the traits are
//! provided so `T: Serialize` bounds would still compile if introduced.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait SerializeTrait {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait DeserializeTrait {}
