//! Compute kernels over [`Column`]s and [`Batch`]es.
//!
//! These are the "single-node kernels" the paper's implementation borrows
//! from DuckDB/Polars: element-wise arithmetic and comparisons, boolean
//! logic, LIKE matching, row hashing, hash partitioning (the basis of every
//! shuffle) and multi-key sorting.

use crate::batch::Batch;
use crate::column::{xor_or_plain, Column};
use crate::datatype::{DataType, ScalarValue};
use crate::encoding::{DictColumn, PackedIntColumn, PackedLogical};
use quokka_common::{QuokkaError, Result};
use std::borrow::Cow;
use std::cmp::Ordering;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// The operator with its operands swapped: `a < b` iff `b > a`.
    pub fn mirror(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

/// Element-wise arithmetic between two columns of equal length.
///
/// Integer inputs stay integer for `+ - *`; division and any float input
/// produce `Float64`.
pub fn arith(op: ArithOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(QuokkaError::internal(format!(
            "arith length mismatch: {} vs {}",
            left.len(),
            right.len()
        )));
    }
    // Arithmetic needs the typed Int64/Int64 dispatch below to keep integer
    // results integer, so encoded inputs decode up front rather than falling
    // through `to_f64_vec` into the float path.
    if left.is_encoded() || right.is_encoded() {
        return arith(op, left.decoded().as_ref(), right.decoded().as_ref());
    }
    match (left, right, op) {
        (Column::Int64(a), Column::Int64(b), ArithOp::Add) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x + y).collect()))
        }
        (Column::Int64(a), Column::Int64(b), ArithOp::Sub) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x - y).collect()))
        }
        (Column::Int64(a), Column::Int64(b), ArithOp::Mul) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x * y).collect()))
        }
        _ => {
            let a = left.to_f64_vec()?;
            let b = right.to_f64_vec()?;
            let out: Vec<f64> = a
                .iter()
                .zip(&b)
                .map(|(x, y)| match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                })
                .collect();
            Ok(Column::Float64(out))
        }
    }
}

/// Element-wise comparison between two columns of equal length, producing a
/// boolean mask. Numeric types (Int64/Float64/Date) are coerced to f64;
/// strings and booleans compare directly.
pub fn compare(op: CmpOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(QuokkaError::internal(format!(
            "compare length mismatch: {} vs {}",
            left.len(),
            right.len()
        )));
    }
    let mask: Vec<bool> = match (left, right) {
        // Dictionary columns sharing one sorted dictionary compare by code.
        (Column::Dict(a), Column::Dict(b)) if a.same_dict(b) => {
            a.codes.iter().zip(&b.codes).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        (Column::Dict(_), _) | (_, Column::Dict(_)) => {
            return compare(op, left.decoded().as_ref(), right.decoded().as_ref());
        }
        (Column::Utf8(a), Column::Utf8(b)) => {
            a.iter().zip(b).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        (Column::Bool(a), Column::Bool(b)) => {
            a.iter().zip(b).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        _ => {
            // `to_f64_vec` reads Packed/Xor columns directly, so numeric
            // encodings need no special casing here.
            let a = left.to_f64_vec()?;
            let b = right.to_f64_vec()?;
            a.iter().zip(&b).map(|(x, y)| apply_ord(op, x.total_cmp(y))).collect()
        }
    };
    Ok(Column::Bool(mask))
}

/// Compare a column against one scalar — the shape every TPC-H predicate
/// takes. Encoded columns are handled without decoding: a dictionary column
/// evaluates the comparison once per *dictionary entry* and maps codes
/// through the resulting lookup table; a packed column streams its values.
/// Plain columns fall back to [`broadcast`] + [`compare`], so the result is
/// always identical to the decode-first path.
pub fn compare_scalar(op: CmpOp, col: &Column, value: &ScalarValue) -> Result<Column> {
    match (col, value) {
        (Column::Dict(d), ScalarValue::Utf8(s)) => {
            let lut: Vec<bool> =
                d.values.iter().map(|v| apply_ord(op, v.as_str().cmp(s.as_str()))).collect();
            Ok(Column::Bool(d.codes.iter().map(|&c| lut[c as usize]).collect()))
        }
        (Column::Packed(p), ScalarValue::Int64(x)) if p.logical == PackedLogical::Int64 => {
            // Mirror the generic path's f64 coercion exactly.
            let y = *x as f64;
            Ok(Column::Bool(p.iter().map(|v| apply_ord(op, (v as f64).total_cmp(&y))).collect()))
        }
        (Column::Packed(p), ScalarValue::Date(x)) if p.logical == PackedLogical::Date => {
            let y = *x as f64;
            Ok(Column::Bool(p.iter().map(|v| apply_ord(op, (v as f64).total_cmp(&y))).collect()))
        }
        _ => compare(op, col, &broadcast(value, col.len())),
    }
}

fn apply_ord(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::NotEq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::LtEq => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::GtEq => ord != Ordering::Less,
    }
}

/// Broadcast a scalar to a column of length `len`.
pub fn broadcast(value: &ScalarValue, len: usize) -> Column {
    match value {
        ScalarValue::Int64(v) => Column::Int64(vec![*v; len]),
        ScalarValue::Float64(v) => Column::Float64(vec![*v; len]),
        ScalarValue::Utf8(v) => Column::Utf8(vec![v.clone(); len]),
        ScalarValue::Bool(v) => Column::Bool(vec![*v; len]),
        ScalarValue::Date(v) => Column::Date(vec![*v; len]),
    }
}

/// Element-wise logical AND.
pub fn and(left: &Column, right: &Column) -> Result<Column> {
    let a = left.as_bool()?;
    let b = right.as_bool()?;
    Ok(Column::Bool(a.iter().zip(b).map(|(x, y)| *x && *y).collect()))
}

/// Element-wise logical OR.
pub fn or(left: &Column, right: &Column) -> Result<Column> {
    let a = left.as_bool()?;
    let b = right.as_bool()?;
    Ok(Column::Bool(a.iter().zip(b).map(|(x, y)| *x || *y).collect()))
}

/// Element-wise logical NOT.
pub fn not(col: &Column) -> Result<Column> {
    Ok(Column::Bool(col.as_bool()?.iter().map(|x| !x).collect()))
}

/// SQL `LIKE` with `%` (any substring) and `_` (any single char) wildcards.
pub fn like(col: &Column, pattern: &str) -> Result<Column> {
    // Dictionary columns match the pattern once per dictionary entry.
    if let Column::Dict(d) = col {
        let lut: Vec<bool> = d.values.iter().map(|v| like_match(v, pattern)).collect();
        return Ok(Column::Bool(d.codes.iter().map(|&c| lut[c as usize]).collect()));
    }
    let values = col.as_utf8()?;
    Ok(Column::Bool(values.iter().map(|v| like_match(v, pattern)).collect()))
}

/// Whether `value` matches the SQL LIKE `pattern`.
///
/// Iterative two-pointer algorithm: on a mismatch after a `%`, restart the
/// value one character past the position where the `%` last matched, instead
/// of recursing over every split point. Linear-ish in practice and immune to
/// the exponential backtracking the old recursive matcher exhibited on
/// patterns like `%a%a%a%b` against long non-matching strings.
pub fn like_match(value: &str, pattern: &str) -> bool {
    let v = value.as_bytes();
    let p = pattern.as_bytes();
    let (mut vi, mut pi) = (0usize, 0usize);
    // Position of the last `%` seen, and the value index its match resumed at.
    let mut star: Option<usize> = None;
    let mut star_vi = 0usize;
    while vi < v.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == v[vi]) {
            vi += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some(pi);
            star_vi = vi;
            pi += 1;
        } else if let Some(star_pi) = star {
            // Mismatch: let the last `%` swallow one more character.
            pi = star_pi + 1;
            star_vi += 1;
            vi = star_vi;
        } else {
            return false;
        }
    }
    // Value exhausted: remaining pattern must be all `%`.
    p[pi..].iter().all(|&c| c == b'%')
}

/// `value IN (list)` membership test.
///
/// The list is folded into a typed `HashSet` once, so the per-row cost is a
/// single hash probe instead of a `total_cmp` scan of the whole list.
/// Int64/Float64 list items coerce against numeric columns through the same
/// [`crate::rowkey::canonical_i64`] rule the hash operators use, and items of a
/// non-coercible type simply never match. (Like the key encoding, integers
/// beyond 2^53 compare exactly rather than through `total_cmp`'s lossy
/// f64 coercion.)
pub fn in_list(col: &Column, list: &[ScalarValue]) -> Result<Column> {
    use std::collections::HashSet;

    // Integral list items (Int64, or Float64 holding an exact integer) as
    // i64; used by Int64 columns and by integral values of Float64 columns.
    let int_items = || -> HashSet<i64> {
        list.iter()
            .filter_map(|item| match item {
                ScalarValue::Int64(x) => Some(*x),
                ScalarValue::Float64(x) => crate::rowkey::canonical_i64(*x),
                _ => None,
            })
            .collect()
    };

    let mask: Vec<bool> = match col {
        Column::Utf8(values) => {
            let set: HashSet<&str> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Utf8(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            values.iter().map(|v| set.contains(v.as_str())).collect()
        }
        Column::Int64(values) => {
            let set = int_items();
            values.iter().map(|v| set.contains(v)).collect()
        }
        Column::Date(values) => {
            let set: HashSet<i32> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Date(d) => Some(*d),
                    _ => None,
                })
                .collect();
            values.iter().map(|v| set.contains(v)).collect()
        }
        Column::Float64(values) => {
            // Split the list into exact-integer items (compared after the
            // same canonicalization) and everything else by bit pattern;
            // total_cmp equality on floats is bit equality.
            let ints = int_items();
            let bits: HashSet<u64> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Float64(x) => Some(x.to_bits()),
                    _ => None,
                })
                .collect();
            values
                .iter()
                .map(|v| {
                    let as_int = crate::rowkey::canonical_i64(*v);
                    as_int.is_some_and(|i| ints.contains(&i)) || bits.contains(&v.to_bits())
                })
                .collect()
        }
        Column::Bool(values) => {
            let set: HashSet<bool> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Bool(b) => Some(*b),
                    _ => None,
                })
                .collect();
            values.iter().map(|v| set.contains(v)).collect()
        }
        Column::Dict(d) => {
            // Membership is decided once per dictionary entry, then fanned
            // out over the codes.
            let set: HashSet<&str> = list
                .iter()
                .filter_map(|item| match item {
                    ScalarValue::Utf8(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            let lut: Vec<bool> = d.values.iter().map(|v| set.contains(v.as_str())).collect();
            d.codes.iter().map(|&c| lut[c as usize]).collect()
        }
        Column::Packed(_) | Column::Xor(_) => {
            return in_list(col.decoded().as_ref(), list);
        }
    };
    Ok(Column::Bool(mask))
}

/// Row-wise hash of the key columns at `key_indices`.
pub fn hash_rows(batch: &Batch, key_indices: &[usize]) -> Vec<u64> {
    let mut hashes = vec![0xA5A5_5A5A_DEAD_BEEFu64; batch.num_rows()];
    for &k in key_indices {
        batch.column(k).hash_into(&mut hashes);
    }
    hashes
}

/// Partition a batch into `partitions` output batches by hashing the key
/// columns. Every input row lands in exactly one output batch; rows keep
/// their relative order within a partition (important for determinism of
/// lineage replay).
///
/// Single-pass: each column is scattered directly into per-partition typed
/// builders sized from a count pass over the hashes, instead of building
/// per-partition row-index lists and `take`-ing each partition separately.
pub fn hash_partition(
    batch: &Batch,
    key_indices: &[usize],
    partitions: usize,
) -> Result<Vec<Batch>> {
    assert!(partitions > 0);
    if partitions == 1 {
        return Ok(vec![batch.clone()]);
    }
    let hashes = hash_rows(batch, key_indices);
    let part_of: Vec<u32> = hashes.iter().map(|h| (h % partitions as u64) as u32).collect();
    let mut counts = vec![0usize; partitions];
    for &p in &part_of {
        counts[p as usize] += 1;
    }

    fn scatter<T: Clone>(values: &[T], part_of: &[u32], counts: &[usize]) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (value, &p) in values.iter().zip(part_of) {
            out[p as usize].push(value.clone());
        }
        out
    }

    let mut columns_per_part: Vec<Vec<Column>> =
        (0..partitions).map(|_| Vec::with_capacity(batch.num_columns())).collect();
    for col in batch.columns() {
        let scattered: Vec<Column> = match col {
            Column::Int64(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Int64).collect()
            }
            Column::Float64(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Float64).collect()
            }
            Column::Utf8(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Utf8).collect()
            }
            Column::Bool(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Bool).collect()
            }
            Column::Date(v) => {
                scatter(v, &part_of, &counts).into_iter().map(Column::Date).collect()
            }
            // Encoded columns scatter without losing their encoding: codes
            // keep sharing the dictionary Arc, packed values repack at the
            // same base/width, and floats re-compress per partition.
            Column::Dict(d) => scatter(&d.codes, &part_of, &counts)
                .into_iter()
                .map(|codes| Column::Dict(DictColumn::from_parts(codes, d.values.clone())))
                .collect(),
            Column::Packed(p) => {
                let values: Vec<i64> = p.iter().collect();
                scatter(&values, &part_of, &counts)
                    .into_iter()
                    .map(|v| Column::Packed(PackedIntColumn::pack(p.logical, p.base, p.width, &v)))
                    .collect()
            }
            Column::Xor(x) => {
                scatter(&x.to_vec(), &part_of, &counts).into_iter().map(xor_or_plain).collect()
            }
        };
        for (part, piece) in columns_per_part.iter_mut().zip(scattered) {
            part.push(piece);
        }
    }
    columns_per_part
        .into_iter()
        .map(|columns| Batch::try_new(batch.schema().clone(), columns))
        .collect()
}

/// A sort key: column index plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(column: usize) -> Self {
        SortKey { column, ascending: true }
    }
    pub fn desc(column: usize) -> Self {
        SortKey { column, ascending: false }
    }
}

/// Compare `left[a]` with `right[b]` directly on the typed column storage —
/// no `ScalarValue` is materialized (the old path cloned strings on every
/// comparison). The ordering mirrors [`ScalarValue::total_cmp`], including
/// the Int64/Float64 coercion and the type-rank fallback for non-coercible
/// type pairs.
/// A borrowed view of one cell, used to compare across representations
/// without materializing a `ScalarValue`.
enum ValView<'a> {
    B(bool),
    I(i64),
    F(f64),
    D(i32),
    S(&'a str),
}

fn view(col: &Column, i: usize) -> ValView<'_> {
    match col {
        Column::Int64(v) => ValView::I(v[i]),
        Column::Float64(v) => ValView::F(v[i]),
        Column::Utf8(v) => ValView::S(&v[i]),
        Column::Bool(v) => ValView::B(v[i]),
        Column::Date(v) => ValView::D(v[i]),
        Column::Dict(d) => ValView::S(d.str_at(i)),
        Column::Packed(p) => match p.logical {
            PackedLogical::Int64 => ValView::I(p.get(i)),
            PackedLogical::Date => ValView::D(p.get(i) as i32),
        },
        // O(i) stream walk — sort/merge callers must pre-decode Xor columns.
        Column::Xor(x) => ValView::F(x.get_slow(i)),
    }
}

pub fn cmp_values(left: &Column, a: usize, right: &Column, b: usize) -> Ordering {
    fn rank(v: &ValView<'_>) -> u8 {
        match v {
            ValView::B(_) => 0,
            ValView::I(_) => 1,
            ValView::F(_) => 2,
            ValView::D(_) => 3,
            ValView::S(_) => 4,
        }
    }
    // Same sorted dictionary: code order is lexicographic order.
    if let (Column::Dict(x), Column::Dict(y)) = (left, right) {
        if x.same_dict(y) {
            return x.codes[a].cmp(&y.codes[b]);
        }
    }
    match (view(left, a), view(right, b)) {
        (ValView::I(x), ValView::I(y)) => x.cmp(&y),
        (ValView::F(x), ValView::F(y)) => x.total_cmp(&y),
        (ValView::S(x), ValView::S(y)) => x.cmp(y),
        (ValView::B(x), ValView::B(y)) => x.cmp(&y),
        (ValView::D(x), ValView::D(y)) => x.cmp(&y),
        (ValView::I(x), ValView::F(y)) => (x as f64).total_cmp(&y),
        (ValView::F(x), ValView::I(y)) => x.total_cmp(&(y as f64)),
        (x, y) => rank(&x).cmp(&rank(&y)),
    }
}

/// Stable argsort of a batch by the given sort keys. Comparisons read the
/// typed column slices directly; no per-comparison allocation. Dictionary
/// key columns sort by code (the dictionary is sorted); XOR float keys are
/// decoded once up front since they have no random access.
pub fn sort_indices(batch: &Batch, keys: &[SortKey]) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    let key_columns: Vec<(Cow<'_, Column>, bool)> = keys
        .iter()
        .map(|k| {
            let col = batch.column(k.column);
            let col =
                if matches!(col, Column::Xor(_)) { col.decoded() } else { Cow::Borrowed(col) };
            (col, k.ascending)
        })
        .collect();
    indices.sort_by(|&a, &b| {
        for (col, ascending) in &key_columns {
            let ord = cmp_values(col, a, col, b);
            let ord = if *ascending { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    indices
}

/// Compare row `a` of `left` with row `b` of `right` under `keys` (the
/// column indices refer to both batches, which must share a schema).
pub fn compare_rows(left: &Batch, a: usize, right: &Batch, b: usize, keys: &[SortKey]) -> Ordering {
    for key in keys {
        let ord = cmp_values(left.column(key.column), a, right.column(key.column), b);
        let ord = if key.ascending { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a batch by the given keys.
pub fn sort_batch(batch: &Batch, keys: &[SortKey]) -> Result<Batch> {
    let idx = sort_indices(batch, keys);
    batch.take(&idx)
}

/// Cast a column to another data type. Supports the numeric/date coercions
/// the TPC-H plans need.
pub fn cast(col: &Column, to: DataType) -> Result<Column> {
    if col.data_type() == to {
        return Ok(col.clone());
    }
    // Encoded inputs decode on demand so mixed-encoding batches can't hit
    // the unsupported-cast error below.
    if col.is_encoded() {
        return cast(col.decoded().as_ref(), to);
    }
    match (col, to) {
        (Column::Int64(v), DataType::Float64) => {
            Ok(Column::Float64(v.iter().map(|&x| x as f64).collect()))
        }
        (Column::Float64(v), DataType::Int64) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        (Column::Date(v), DataType::Int64) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        (Column::Int64(v), DataType::Date) => {
            Ok(Column::Date(v.iter().map(|&x| x as i32).collect()))
        }
        (from, to) => {
            Err(QuokkaError::TypeError(format!("unsupported cast {} -> {}", from.data_type(), to)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn batch() -> Batch {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int64),
            ("v", DataType::Float64),
            ("s", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![3, 1, 2, 1]),
                Column::Float64(vec![1.0, 4.0, 2.0, 3.0]),
                Column::Utf8(vec!["c".into(), "a".into(), "b".into(), "a".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_integer_and_float() {
        let a = Column::Int64(vec![4, 9]);
        let b = Column::Int64(vec![2, 3]);
        assert_eq!(arith(ArithOp::Add, &a, &b).unwrap(), Column::Int64(vec![6, 12]));
        assert_eq!(arith(ArithOp::Mul, &a, &b).unwrap(), Column::Int64(vec![8, 27]));
        assert_eq!(arith(ArithOp::Div, &a, &b).unwrap(), Column::Float64(vec![2.0, 3.0]));
        let f = Column::Float64(vec![0.5, 0.5]);
        assert_eq!(arith(ArithOp::Sub, &a, &f).unwrap(), Column::Float64(vec![3.5, 8.5]));
        assert!(arith(ArithOp::Add, &a, &Column::Int64(vec![1])).is_err());
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let a = Column::Int64(vec![1, 2, 3]);
        let b = Column::Float64(vec![2.0, 2.0, 2.0]);
        assert_eq!(compare(CmpOp::Lt, &a, &b).unwrap(), Column::Bool(vec![true, false, false]));
        assert_eq!(compare(CmpOp::GtEq, &a, &b).unwrap(), Column::Bool(vec![false, true, true]));
        let s1 = Column::Utf8(vec!["x".into(), "y".into()]);
        let s2 = Column::Utf8(vec!["x".into(), "z".into()]);
        assert_eq!(compare(CmpOp::Eq, &s1, &s2).unwrap(), Column::Bool(vec![true, false]));

        let t = Column::Bool(vec![true, false]);
        let f = Column::Bool(vec![true, true]);
        assert_eq!(and(&t, &f).unwrap(), Column::Bool(vec![true, false]));
        assert_eq!(or(&t, &f).unwrap(), Column::Bool(vec![true, true]));
        assert_eq!(not(&t).unwrap(), Column::Bool(vec![false, true]));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO BRUSHED STEEL", "PROMO%"));
        assert!(like_match("small shiny gold", "%shiny%"));
        assert!(!like_match("ECONOMY ANODIZED", "PROMO%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(like_match("anything at all", "%"));
        let col = Column::Utf8(vec!["MEDIUM POLISHED".into(), "SMALL PLATED".into()]);
        assert_eq!(like(&col, "MEDIUM%").unwrap(), Column::Bool(vec![true, false]));
        // Multi-wildcard patterns where later literals force re-matching.
        assert!(like_match("xayazb", "%a%b"));
        assert!(!like_match("xayaz", "%a%b"));
        assert!(like_match("aab", "a%b"));
        assert!(like_match("ab", "a%%b"));
        assert!(!like_match("a", "a_"));
        assert!(like_match("abc", "%c"));
        assert!(!like_match("abc", "%d"));
    }

    #[test]
    fn like_pathological_pattern_completes_instantly() {
        // The old recursive matcher was exponential in the number of `%`s on
        // non-matching inputs: each `%` tried every split point. The
        // two-pointer matcher must dispatch this in well under a second.
        let value = "a".repeat(2000);
        let pattern = "%a%a%a%a%a%b";
        let start = std::time::Instant::now();
        assert!(!like_match(&value, pattern));
        assert!(like_match(&format!("{value}b"), pattern));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "pathological LIKE pattern took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn in_list_membership() {
        let col = Column::Utf8(vec!["MAIL".into(), "SHIP".into(), "AIR".into()]);
        let list = vec![ScalarValue::from("MAIL"), ScalarValue::from("SHIP")];
        assert_eq!(in_list(&col, &list).unwrap(), Column::Bool(vec![true, true, false]));
        let nums = Column::Int64(vec![1, 5, 9]);
        let list = vec![ScalarValue::Int64(5)];
        assert_eq!(in_list(&nums, &list).unwrap(), Column::Bool(vec![false, true, false]));
    }

    #[test]
    fn in_list_coerces_numerics_like_total_cmp() {
        // Int64 column against Float64 list items: integral floats match,
        // fractional ones never do.
        let ints = Column::Int64(vec![2, 3, 4]);
        let list = vec![ScalarValue::Float64(2.0), ScalarValue::Float64(3.5)];
        assert_eq!(in_list(&ints, &list).unwrap(), Column::Bool(vec![true, false, false]));

        // Float64 column against mixed Int64/Float64 items.
        let floats = Column::Float64(vec![2.0, 2.5, -0.0, 7.25]);
        let list = vec![ScalarValue::Int64(2), ScalarValue::Int64(0), ScalarValue::Float64(7.25)];
        // -0.0 != Int64(0) under total_cmp; 2.0 == Int64(2); 7.25 matches by bits.
        assert_eq!(in_list(&floats, &list).unwrap(), Column::Bool(vec![true, false, false, true]));

        // Dates only match Date items, never numerically-equal Int64s.
        let dates = Column::Date(vec![10, 20]);
        let list = vec![ScalarValue::Int64(10), ScalarValue::Date(20)];
        assert_eq!(in_list(&dates, &list).unwrap(), Column::Bool(vec![false, true]));

        // A string column ignores non-string items entirely.
        let tags = Column::Utf8(vec!["5".into()]);
        assert_eq!(in_list(&tags, &[ScalarValue::Int64(5)]).unwrap(), Column::Bool(vec![false]));
    }

    #[test]
    fn in_list_scales_past_linear_scans() {
        // 20k rows against a 1k-item string list; the per-row HashSet probe
        // keeps this far under a second even in debug builds.
        let items: Vec<ScalarValue> =
            (0..1000).map(|i| ScalarValue::from(format!("tag-{i}"))).collect();
        let col = Column::Utf8((0..20_000).map(|i| format!("tag-{}", i % 2000)).collect());
        let start = std::time::Instant::now();
        let mask = in_list(&col, &items).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        let hits = mask.as_bool().unwrap().iter().filter(|&&b| b).count();
        assert_eq!(hits, 10_000);
    }

    #[test]
    fn hash_partition_is_complete_and_disjoint() {
        let b = batch();
        let parts = hash_partition(&b, &[0], 3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, b.num_rows());
        // Equal keys land in the same partition.
        let key_part: Vec<Option<usize>> = (0..4)
            .map(|row| {
                let key = b.value(row, 0);
                parts.iter().position(|p| {
                    (0..p.num_rows())
                        .any(|r| p.value(r, 0) == key && p.value(r, 2) == b.value(row, 2))
                })
            })
            .collect();
        assert_eq!(key_part[1], key_part[3], "rows with key=1 must co-locate");
    }

    #[test]
    fn single_partition_shortcut() {
        let b = batch();
        let parts = hash_partition(&b, &[0], 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], b);
    }

    #[test]
    fn sorting_multi_key() {
        let b = batch();
        let sorted = sort_batch(&b, &[SortKey::asc(0), SortKey::desc(1)]).unwrap();
        assert_eq!(sorted.column(0), &Column::Int64(vec![1, 1, 2, 3]));
        assert_eq!(sorted.column(1), &Column::Float64(vec![4.0, 3.0, 2.0, 1.0]));
        let idx = sort_indices(&b, &[SortKey::desc(2)]);
        assert_eq!(idx[0], 0); // "c" first
    }

    #[test]
    fn cast_kernels() {
        assert_eq!(
            cast(&Column::Int64(vec![1, 2]), DataType::Float64).unwrap(),
            Column::Float64(vec![1.0, 2.0])
        );
        assert_eq!(
            cast(&Column::Float64(vec![1.9]), DataType::Int64).unwrap(),
            Column::Int64(vec![1])
        );
        assert_eq!(cast(&Column::Date(vec![3]), DataType::Int64).unwrap(), Column::Int64(vec![3]));
        assert!(cast(&Column::Utf8(vec![]), DataType::Int64).is_err());
        // identity cast
        assert_eq!(
            cast(&Column::Bool(vec![true]), DataType::Bool).unwrap(),
            Column::Bool(vec![true])
        );
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast(&ScalarValue::Int64(7), 3), Column::Int64(vec![7, 7, 7]));
        assert_eq!(broadcast(&ScalarValue::from("x"), 2).len(), 2);
    }
}
