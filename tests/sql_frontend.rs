//! End-to-end tests for the SQL frontend through the session facade:
//! SQL text → parse → bind → logical plan → distributed execution on the
//! simulated cluster, verified against the reference executor and against
//! the hand-built TPC-H plans.

use quokka::{same_result, QuokkaSession, SqlError};

/// A small TPC-H session; each test generates its own (SF 0.002 is cheap).
fn tpch_session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).unwrap()
}

#[test]
fn sql_tpch_queries_run_distributed_and_match_hand_built_plans() {
    let session = tpch_session();
    // Two aggregation shapes and a multi-join; the full 9-query parity
    // sweep runs on the reference executor in quokka-tpch's unit tests.
    for q in [1, 6, 3] {
        let sql = quokka::tpch::queries::sql::sql_text(q).unwrap();
        let handle = session.sql(sql).unwrap();
        let outcome = handle.collect().unwrap_or_else(|e| panic!("Q{q} failed: {e}"));
        let hand = session.run_reference(&quokka::tpch::query(q).unwrap()).unwrap();
        assert!(
            same_result(&outcome.batch, &hand),
            "Q{q}: distributed SQL result diverges from the hand-built plan"
        );
        assert!(outcome.metrics.tasks_executed > 0);
    }
}

#[test]
fn query_handle_exposes_plan_and_reference_execution() {
    let session = tpch_session();
    let handle = session
        .sql(
            "SELECT l_shipmode, count(*) AS n FROM lineitem \
             GROUP BY l_shipmode ORDER BY l_shipmode",
        )
        .unwrap();
    assert!(handle.explain().contains("Aggregate"));
    assert_eq!(handle.plan().schema().unwrap().column_names(), vec!["l_shipmode", "n"]);
    let reference = handle.collect_reference().unwrap();
    let distributed = handle.collect().unwrap();
    assert!(same_result(&reference, &distributed.batch));
    assert!(reference.num_rows() > 0);
}

#[test]
fn malformed_sql_returns_positioned_errors_not_panics() {
    let session = tpch_session();
    // (sql, expected substring) — parse and bind failures, all positioned.
    for (sql, needle) in [
        ("SELEC l_orderkey FROM lineitem", "expected SELECT"),
        ("SELECT l_orderkey FROM", "expected a table name"),
        ("SELECT l_orderkey FROM lineitem WHERE", "expected an expression"),
        ("SELECT l_orderkey FROM lineitems", "did you mean 'lineitem'"),
        ("SELECT l_orderkeyy FROM lineitem", "did you mean 'l_orderkey'"),
        ("SELECT l_orderkey FROM lineitem WHERE l_shipdate > 'nope'", "not a valid date"),
        ("SELECT sum(l_comment) AS s FROM lineitem", "numeric"),
        ("SELECT l_orderkey FROM lineitem ORDER BY missing_col", "not in the output"),
        ("SELECT * FROM lineitem LEFT JOIN orders ON a = b", "outer joins"),
    ] {
        let err = session.sql(sql).expect_err(sql);
        let message = err.to_string();
        assert!(message.contains(needle), "{sql}: {message}");
        assert!(message.contains("line "), "{sql}: no position in: {message}");
    }
}

#[test]
fn sql_error_type_carries_structured_position() {
    let session = tpch_session();
    let err = quokka::sql::plan_query("SELECT nope FROM lineitem", session.catalog())
        .expect_err("should not bind");
    assert_eq!(err.kind, quokka::sql::SqlErrorKind::Bind);
    assert_eq!((err.pos.line, err.pos.column), (1, 8));
    let _: SqlError = err; // the structured type is part of the facade API
}

#[test]
fn sql_runs_under_fault_injection() {
    use quokka::{EngineConfig, FailureSpec};

    let session = tpch_session();
    let handle = session.sql(quokka::tpch::queries::sql::sql_text(6).unwrap()).unwrap();
    let expected = handle.collect_reference().unwrap();
    // Kill a worker mid-query; recovery must still produce the right rows.
    let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
    let outcome = handle.collect_with(&config).unwrap();
    assert!(same_result(&outcome.batch, &expected));
}
