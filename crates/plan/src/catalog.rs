//! Table providers.

use parking_lot::RwLock;
use quokka_batch::{Batch, Schema};
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeMap;

/// A source of base tables.
///
/// Both the reference executor and the distributed engine resolve `Scan`
/// nodes through this trait; the distributed engine additionally splits each
/// table into input partitions served from the durable object store.
pub trait Catalog: Send + Sync {
    /// Schema of the named table.
    fn table_schema(&self, name: &str) -> Result<Schema>;
    /// All data of the named table, as batches.
    fn table_batches(&self, name: &str) -> Result<Vec<Batch>>;
    /// Names of every registered table.
    fn table_names(&self) -> Vec<String>;
    /// Total number of rows in the named table.
    fn table_rows(&self, name: &str) -> Result<usize> {
        Ok(self.table_batches(name)?.iter().map(Batch::num_rows).sum())
    }
    /// Approximate in-memory footprint of the named table, in bytes. Used
    /// by admission control to estimate a query's memory demand from the
    /// tables it reads.
    fn table_bytes(&self, name: &str) -> Result<u64> {
        Ok(self.table_batches(name)?.iter().map(|b| b.byte_size() as u64).sum())
    }
    /// A counter that advances whenever the set of tables (or any table's
    /// contents) changes. Plan caches key on it: a bumped generation means
    /// every previously planned statement is stale. The default (always 0)
    /// suits immutable catalogs.
    fn generation(&self) -> u64 {
        0
    }
}

/// A simple in-memory catalog.
#[derive(Debug, Default)]
pub struct MemoryCatalog {
    tables: RwLock<BTreeMap<String, (Schema, Vec<Batch>)>>,
    /// Bumped on every registration so dependent caches can detect change.
    generation: std::sync::atomic::AtomicU64,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table, advancing the catalog generation.
    pub fn register(&self, name: impl Into<String>, schema: Schema, batches: Vec<Batch>) {
        let mut tables = self.tables.write();
        tables.insert(name.into(), (schema, batches));
        // Bumped under the write lock so a reader never observes new data
        // with an old generation.
        self.generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}

impl Catalog for MemoryCatalog {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.tables
            .read()
            .get(name)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| QuokkaError::PlanError(format!("unknown table '{name}'")))
    }

    fn table_batches(&self, name: &str) -> Result<Vec<Batch>> {
        self.tables
            .read()
            .get(name)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| QuokkaError::PlanError(format!("unknown table '{name}'")))
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Computed under the read lock without cloning the batches (the
    /// default implementation would deep-copy the whole table; admission
    /// control calls this on every query). Measures the *encoded* footprint:
    /// a dictionary/bit-packed table admits more concurrent queries than its
    /// plain decoding would.
    fn table_bytes(&self, name: &str) -> Result<u64> {
        self.tables
            .read()
            .get(name)
            .map(|(_, b)| b.iter().map(|batch| batch.memory_bytes() as u64).sum())
            .ok_or_else(|| QuokkaError::PlanError(format!("unknown table '{name}'")))
    }

    fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType};

    #[test]
    fn register_and_lookup() {
        let catalog = MemoryCatalog::new();
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        let batch = Batch::try_new(schema.clone(), vec![Column::Int64(vec![1, 2, 3])]).unwrap();
        catalog.register("t", schema.clone(), vec![batch.clone(), batch]);
        assert_eq!(catalog.table_schema("t").unwrap(), schema);
        assert_eq!(catalog.table_batches("t").unwrap().len(), 2);
        assert_eq!(catalog.table_rows("t").unwrap(), 6);
        assert_eq!(catalog.table_names(), vec!["t".to_string()]);
        assert!(catalog.table_schema("missing").is_err());
        assert!(catalog.table_batches("missing").is_err());
    }

    #[test]
    fn generation_advances_on_registration_and_bytes_are_estimated() {
        let catalog = MemoryCatalog::new();
        assert_eq!(catalog.generation(), 0);
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        let batch = Batch::try_new(schema.clone(), vec![Column::Int64(vec![1, 2, 3])]).unwrap();
        catalog.register("t", schema.clone(), vec![batch.clone()]);
        assert_eq!(catalog.generation(), 1);
        assert_eq!(catalog.table_bytes("t").unwrap(), batch.byte_size() as u64);
        assert!(catalog.table_bytes("missing").is_err());
        // Re-registering the *same* name still bumps: contents may differ.
        catalog.register("t", schema, vec![batch]);
        assert_eq!(catalog.generation(), 2);
    }

    #[test]
    fn table_bytes_reflects_encoded_footprint() {
        let catalog = MemoryCatalog::new();
        let schema = Schema::from_pairs(&[("mode", DataType::Utf8)]);
        let plain = Column::Utf8(
            (0..256).map(|i| ["TRUCK", "AIRMAIL", "RAIL"][i % 3].to_string()).collect(),
        );
        let encoded = plain.encode_auto();
        assert!(encoded.is_encoded(), "repetitive strings must dictionary-encode");
        let batch = Batch::try_new(schema.clone(), vec![encoded]).unwrap();
        catalog.register("t", schema, vec![batch.clone()]);
        let bytes = catalog.table_bytes("t").unwrap();
        assert_eq!(bytes, batch.memory_bytes() as u64);
        assert!(
            bytes < batch.byte_size() as u64,
            "admission estimate should see the encoded footprint ({bytes} vs {})",
            batch.byte_size()
        );
    }
}
