//! SQL statement normalization for plan-cache keying.
//!
//! Two statements that differ only in whitespace, comments, keyword or
//! identifier case, or literal *values* should plan identically (up to the
//! literals), so the plan cache must key them together. [`normalize`]
//! produces that key: a canonical **template** in which every literal is
//! replaced by a `?` placeholder, plus the extracted literal values in
//! occurrence order.
//!
//! The template alone is the *cache key* (the unit the cache's LRU operates
//! on); the literal vector is the secondary index within a template's entry
//! — plans are only reused when both match, because the literals are baked
//! into the lowered plan (constant folding may even have merged them).
//! Structurally different statements can never share a template: every
//! identifier, operator and parenthesis appears verbatim, so the mapping
//! from token stream to template is injective once literals are factored
//! out.
//!
//! ```
//! use quokka_sql::normalize::normalize;
//!
//! let a = normalize("SELECT a FROM t WHERE x < 10").unwrap();
//! let b = normalize("select  A from T\n where x<99 -- comment").unwrap();
//! assert_eq!(a.template, b.template);
//! assert_ne!(a.literals, b.literals);
//! assert_eq!(a.template, "select a from t where x < ?");
//! ```

use crate::error::SqlError;
use crate::lexer::{tokenize, TokenKind};

/// A literal value factored out of a normalized statement, in occurrence
/// order. Compared (never hashed — it contains floats) when deciding
/// whether a cached plan can be reused verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum LiteralValue {
    Int(i64),
    Float(f64),
    Str(String),
}

impl std::fmt::Display for LiteralValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiteralValue::Int(v) => write!(f, "{v}"),
            LiteralValue::Float(v) => write!(f, "{v}"),
            LiteralValue::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// The result of [`normalize`]: a whitespace/case/literal-insensitive
/// template plus the literals that were parameterized out.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedSql {
    /// Canonical single-spaced rendering of the token stream with literals
    /// replaced by `?`. Identifiers and keywords are lowercase (the lexer
    /// lowercases them; string literals keep their case but are factored
    /// out anyway).
    pub template: String,
    /// The literal values, in occurrence order.
    pub literals: Vec<LiteralValue>,
}

impl NormalizedSql {
    /// Whether the statement carries an `EXPLAIN` prefix (such statements
    /// render plans instead of executing, so the cache skips them).
    pub fn is_explain(&self) -> bool {
        self.template == "explain" || self.template.starts_with("explain ")
    }
}

/// Normalize one SQL statement. Fails only where the lexer fails (the
/// parser would report the identical positioned error, so callers can fall
/// back to the regular planning path for error reporting).
pub fn normalize(sql: &str) -> Result<NormalizedSql, SqlError> {
    let tokens = tokenize(sql)?;
    let mut template = String::new();
    let mut literals = Vec::new();
    for token in &tokens {
        let rendered: &str = match &token.kind {
            TokenKind::Eof => break,
            // A trailing semicolon is insignificant; an embedded one ends
            // the statement for the parser, so keeping it in the template
            // for that (error) case is harmless.
            TokenKind::Semi => ";",
            TokenKind::Ident(name) => name,
            TokenKind::Int(v) => {
                literals.push(LiteralValue::Int(*v));
                "?"
            }
            TokenKind::Float(v) => {
                literals.push(LiteralValue::Float(*v));
                "?"
            }
            TokenKind::Str(s) => {
                literals.push(LiteralValue::Str(s.clone()));
                "?"
            }
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Star => "*",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Slash => "/",
            TokenKind::Eq => "=",
            TokenKind::NotEq => "<>",
            TokenKind::Lt => "<",
            TokenKind::LtEq => "<=",
            TokenKind::Gt => ">",
            TokenKind::GtEq => ">=",
        };
        if !template.is_empty() {
            template.push(' ');
        }
        template.push_str(rendered);
    }
    // Trailing semicolons never change meaning; strip them so `...;` and
    // `...` share a template.
    while template.ends_with(" ;") {
        template.truncate(template.len() - 2);
    }
    if template == ";" {
        template.clear();
    }
    Ok(NormalizedSql { template, literals })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_case_and_comments_are_insignificant() {
        let variants = [
            "SELECT o_orderkey FROM orders WHERE o_totalprice > 100.5",
            "select   O_ORDERKEY\nfrom ORDERS\nwhere o_totalprice>100.5",
            "Select o_orderkey -- projection\n FROM\torders WHERE (o_totalprice)>(100.5)",
        ];
        let first = normalize(variants[0]).unwrap();
        let second = normalize(variants[1]).unwrap();
        assert_eq!(first, second);
        // The parenthesized variant differs structurally (extra tokens) —
        // normalization is token-faithful, not parse-aware.
        let third = normalize(variants[2]).unwrap();
        assert_ne!(first.template, third.template);
    }

    #[test]
    fn literals_are_parameterized_out_in_order() {
        let n = normalize("SELECT a FROM t WHERE x < 10 AND name LIKE 'b%' AND y = 2.5").unwrap();
        assert_eq!(n.template, "select a from t where x < ? and name like ? and y = ?");
        assert_eq!(
            n.literals,
            vec![LiteralValue::Int(10), LiteralValue::Str("b%".into()), LiteralValue::Float(2.5),]
        );
        let other =
            normalize("SELECT a FROM t WHERE x < 99 AND name LIKE 'q' AND y = 0.5").unwrap();
        assert_eq!(n.template, other.template);
        assert_ne!(n.literals, other.literals);
    }

    #[test]
    fn structural_differences_change_the_template() {
        let base = normalize("SELECT a FROM t WHERE x < 1").unwrap().template;
        for different in [
            "SELECT a FROM t WHERE x <= 1",          // operator
            "SELECT b FROM t WHERE x < 1",           // column
            "SELECT a FROM u WHERE x < 1",           // table
            "SELECT a FROM t",                       // clause dropped
            "SELECT a FROM t WHERE x < 1 AND x < 2", // arity
        ] {
            assert_ne!(base, normalize(different).unwrap().template, "{different}");
        }
    }

    #[test]
    fn trailing_semicolons_and_explain_are_recognized() {
        let a = normalize("SELECT a FROM t").unwrap();
        let b = normalize("SELECT a FROM t ;").unwrap();
        assert_eq!(a.template, b.template);
        assert!(!a.is_explain());
        assert!(normalize("EXPLAIN SELECT a FROM t").unwrap().is_explain());
        assert!(normalize("explain").unwrap().is_explain());
        // A column merely *named* like the keyword does not confuse it.
        assert!(!normalize("SELECT explain FROM t").unwrap().is_explain());
    }

    #[test]
    fn lex_errors_propagate() {
        assert!(normalize("SELECT 'unterminated").is_err());
    }
}
