/root/repo/target/release/deps/kernels-56b5891001c0c05d.d: crates/bench/src/bin/kernels.rs

/root/repo/target/release/deps/kernels-56b5891001c0c05d: crates/bench/src/bin/kernels.rs

crates/bench/src/bin/kernels.rs:
