/root/repo/target/release/examples/fault_recovery-6e94866f14905705.d: examples/fault_recovery.rs

/root/repo/target/release/examples/fault_recovery-6e94866f14905705: examples/fault_recovery.rs

examples/fault_recovery.rs:
