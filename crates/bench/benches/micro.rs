//! Criterion micro-benchmarks for the mechanisms whose costs the paper's
//! argument rests on:
//!
//! * committing a write-ahead lineage record to the GCS (the per-task cost
//!   Quokka adds to normal execution),
//! * encoding a shuffle partition for upstream backup / spooling (the cost
//!   the competing strategies add),
//! * hash partitioning (the shuffle itself),
//! * the hash-join and aggregation kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quokka::batch::codec::encode_partition;
use quokka::batch::compute::{hash_partition, in_list, like, sort_batch, SortKey};
use quokka::common::ids::ChannelAddr;
use quokka::gcs::tables::{
    ChannelState, Gcs, LineageRecord, LineageSource, PartitionEntry, TaskCommit, TaskEntry,
};
use quokka::plan::aggregate::sum;
use quokka::plan::expr::col;
use quokka::plan::logical::JoinType;
use quokka::plan::physical::{CoreOp, OperatorSpec};
use quokka::ScalarValue;
use quokka::{Batch, Column, DataType, Schema};

fn sample_batch(rows: usize) -> Batch {
    let schema = Schema::from_pairs(&[
        ("key", DataType::Int64),
        ("value", DataType::Float64),
        ("tag", DataType::Utf8),
    ]);
    Batch::try_new(
        schema,
        vec![
            Column::Int64((0..rows as i64).map(|i| i % 1024).collect()),
            Column::Float64((0..rows).map(|i| i as f64 * 0.25).collect()),
            Column::Utf8((0..rows).map(|i| format!("tag-{}", i % 97)).collect()),
        ],
    )
    .unwrap()
}

fn bench_lineage_commit(c: &mut Criterion) {
    let gcs = Gcs::default();
    let channel = ChannelAddr::new(1, 0);
    gcs.put_channel(&ChannelState::new(channel, 0, 4));
    let mut seq = 0u32;
    c.bench_function("gcs_commit_task_lineage", |b| {
        b.iter(|| {
            let task = channel.task(seq);
            let mut state = ChannelState::new(channel, 0, 4);
            state.committed_seq = Some(seq);
            let commit = TaskCommit {
                worker: 0,
                lineage: LineageRecord {
                    task,
                    source: LineageSource::Upstream {
                        upstream: ChannelAddr::new(0, 3),
                        start_seq: seq,
                        count: 8,
                    },
                    finished_inputs: vec![],
                    finalize: false,
                    output_rows: 8192,
                    output_bytes: 1 << 20,
                },
                partition: PartitionEntry {
                    name: task,
                    owner: 0,
                    backed_up: true,
                    spooled: false,
                    bytes: 1 << 20,
                },
                channel_state: state,
                prev_channel: None,
                next_task: Some(TaskEntry { task: channel.task(seq + 1), worker: 0 }),
            };
            gcs.commit_task(&commit).unwrap();
            seq += 1;
        })
    });
}

fn bench_partition_encode(c: &mut Criterion) {
    let batch = sample_batch(8192);
    let bytes = batch.byte_size() as u64;
    let mut group = c.benchmark_group("partition_encode");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("encode_8k_rows", |b| {
        b.iter(|| encode_partition(std::slice::from_ref(&batch)))
    });
    group.finish();
}

fn bench_hash_partition(c: &mut Criterion) {
    let batch = sample_batch(8192);
    let mut group = c.benchmark_group("hash_partition");
    group.throughput(Throughput::Elements(batch.num_rows() as u64));
    for parts in [4usize, 16] {
        group.bench_function(format!("8k_rows_into_{parts}"), |b| {
            b.iter(|| hash_partition(&batch, &[0], parts).unwrap())
        });
    }
    group.finish();
}

fn bench_join_and_aggregate(c: &mut Criterion) {
    let build = sample_batch(1024);
    let probe = sample_batch(8192);
    let spec = OperatorSpec::new(CoreOp::HashJoin {
        build_schema: build.schema().clone(),
        probe_schema: probe.schema().clone(),
        build_keys: vec![0],
        probe_keys: vec![0],
        join_type: JoinType::Inner,
    });
    c.bench_function("hash_join_build_and_probe", |b| {
        b.iter(|| {
            let mut op = spec.instantiate().unwrap();
            op.push(0, &build).unwrap();
            op.finish_input(0).unwrap();
            op.push(1, &probe).unwrap()
        })
    });

    let agg_spec = OperatorSpec::new(CoreOp::HashAggregate {
        input_schema: probe.schema().clone(),
        group_by: vec![(col("tag"), "tag".to_string())],
        aggregates: vec![sum(col("value"), "total")],
    });
    c.bench_function("hash_aggregate_8k_rows", |b| {
        b.iter(|| {
            let mut op = agg_spec.instantiate().unwrap();
            op.push(0, &probe).unwrap();
            op.finish().unwrap()
        })
    });
}

fn bench_scalar_free_kernels(c: &mut Criterion) {
    let batch = sample_batch(8192);
    c.bench_function("sort_8k_rows_two_keys", |b| {
        b.iter(|| sort_batch(&batch, &[SortKey::asc(0), SortKey::desc(2)]).unwrap())
    });
    let tags = batch.column_by_name("tag").unwrap();
    c.bench_function("like_8k_rows", |b| b.iter(|| like(tags, "tag-1%").unwrap()));
    let list: Vec<ScalarValue> = (0..64).map(|i| ScalarValue::from(format!("tag-{i}"))).collect();
    c.bench_function("in_list_8k_rows_64_items", |b| b.iter(|| in_list(tags, &list).unwrap()));
}

criterion_group!(
    benches,
    bench_lineage_commit,
    bench_partition_encode,
    bench_hash_partition,
    bench_join_and_aggregate,
    bench_scalar_free_kernels
);
criterion_main!(benches);
