/root/repo/target/debug/deps/session_api-6a39f10c03a77b16.d: tests/session_api.rs

/root/repo/target/debug/deps/libsession_api-6a39f10c03a77b16.rmeta: tests/session_api.rs

tests/session_api.rs:
