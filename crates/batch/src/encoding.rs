//! Compressed column encodings: dictionary strings, bit-packed integers,
//! and XOR-compressed floats.
//!
//! Every encoding is *lossless* over the logical column it represents and
//! carries enough metadata to decode without external context:
//!
//! * [`DictColumn`] — logical `Utf8`. Row values are `u32` codes into a
//!   **sorted, deduplicated** dictionary, so code order equals lexicographic
//!   order and equality/ordering kernels can work on codes directly. The
//!   dictionary lives behind an `Arc`: slicing, filtering and scattering a
//!   dictionary column shares the dictionary instead of copying it, and
//!   `Arc::ptr_eq` lets kernels detect "same dictionary" in O(1).
//! * [`PackedIntColumn`] — logical `Int64` or `Date`. Values are stored as
//!   `value - base` deltas bit-packed at a fixed width, giving O(1) random
//!   access. A width of 0 encodes an all-equal column in one `i64`.
//! * [`XorFloatColumn`] — logical `Float64`. Gorilla-style XOR compression
//!   of consecutive IEEE-754 bit patterns. Sequential access only: kernels
//!   must decode it once per batch (see `Column::decoded`), never index it
//!   row-by-row.
//!
//! The `encode_*` constructors are pure functions of the input values, so
//! re-encoding a decoded column reproduces identical bytes — the wire
//! format's byte-exact round-trip property depends on this.

use std::sync::Arc;

// ---------------------------------------------------------------------------
// Bit-level primitives
// ---------------------------------------------------------------------------

/// Append-only bit stream over `u64` words, LSB-first within each word.
/// Unwritten trailing bits are always zero, which keeps serialisation of a
/// partially-filled last word deterministic.
#[derive(Debug, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    bits: u64,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter { words: Vec::new(), bits: 0 }
    }

    /// Append the low `width` bits of `value`. `width` must be ≤ 64 and
    /// `value` must already be masked to `width` bits.
    pub fn put(&mut self, value: u64, width: u8) {
        debug_assert!(width as u32 <= 64);
        debug_assert!(width == 64 || value < (1u64 << width));
        if width == 0 {
            return;
        }
        let word = (self.bits / 64) as usize;
        let offset = (self.bits % 64) as u32;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << offset;
        if offset + width as u32 > 64 {
            self.words.push(value >> (64 - offset));
        }
        self.bits += width as u64;
    }

    pub fn finish(self) -> (Vec<u64>, u64) {
        (self.words, self.bits)
    }
}

/// Bounds-checked reader over a bit stream written by [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    bits: u64,
    cursor: u64,
}

impl<'a> BitReader<'a> {
    pub fn new(words: &'a [u64], bits: u64) -> Self {
        BitReader { words, bits, cursor: 0 }
    }

    /// Read `width` bits, or `None` if the stream is exhausted. Never
    /// panics on corrupt lengths.
    pub fn take(&mut self, width: u8) -> Option<u64> {
        if width == 0 {
            return Some(0);
        }
        if self.cursor + width as u64 > self.bits {
            return None;
        }
        let word = (self.cursor / 64) as usize;
        let offset = (self.cursor % 64) as u32;
        let mut value = *self.words.get(word)? >> offset;
        if offset + width as u32 > 64 {
            value |= self.words.get(word + 1)? << (64 - offset);
        }
        self.cursor += width as u64;
        Some(value & mask(width))
    }
}

/// Bit mask of the low `width` bits (`width` ≤ 64).
pub fn mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Minimum width able to represent every value in `0..=delta`.
pub fn width_for(delta: u64) -> u8 {
    (64 - delta.leading_zeros()) as u8
}

/// Random access into a packed stream laid out by repeated
/// `BitWriter::put(value, width)` calls of one fixed width.
fn packed_get(words: &[u64], width: u8, index: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit = index as u64 * width as u64;
    let word = (bit / 64) as usize;
    let offset = (bit % 64) as u32;
    let mut value = words[word] >> offset;
    if offset + width as u32 > 64 {
        value |= words[word + 1] << (64 - offset);
    }
    value & mask(width)
}

// ---------------------------------------------------------------------------
// Dictionary-encoded strings
// ---------------------------------------------------------------------------

/// Logical `Utf8` column stored as codes into a sorted dictionary.
#[derive(Debug, Clone)]
pub struct DictColumn {
    /// One code per row; every code is `< values.len()`.
    pub codes: Vec<u32>,
    /// Sorted, strictly-deduplicated dictionary. Shared across slices,
    /// filters and scatters of the same source column.
    pub values: Arc<Vec<String>>,
}

impl DictColumn {
    /// Dictionary-encode a plain string column. The dictionary is sorted
    /// and deduplicated, so equal inputs always produce identical output.
    pub fn from_plain(strings: &[String]) -> Self {
        let mut values: Vec<String> = strings.to_vec();
        values.sort_unstable();
        values.dedup();
        let codes = strings
            .iter()
            .map(|s| values.binary_search(s).expect("value present in its own dictionary") as u32)
            .collect();
        DictColumn { codes, values: Arc::new(values) }
    }

    /// Assemble from already-validated parts (wire decode). The caller must
    /// have checked that `values` is strictly ascending and every code is
    /// in range.
    pub fn from_parts(codes: Vec<u32>, values: Arc<Vec<String>>) -> Self {
        DictColumn { codes, values }
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The string a row decodes to.
    pub fn str_at(&self, row: usize) -> &str {
        &self.values[self.codes[row] as usize]
    }

    /// Decode into a plain string vector.
    pub fn to_plain(&self) -> Vec<String> {
        self.codes.iter().map(|&c| self.values[c as usize].clone()).collect()
    }

    /// Bit width of a packed code for a dictionary of this size.
    pub fn code_width(&self) -> u8 {
        width_for((self.values.len() as u64).saturating_sub(1))
    }

    /// Whether two dictionary columns share the same dictionary allocation
    /// (codes are then directly comparable).
    pub fn same_dict(&self, other: &DictColumn) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// Encoded in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        4 * self.codes.len() + self.values.iter().map(|v| v.len() + 4).sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Bit-packed integers
// ---------------------------------------------------------------------------

/// The logical type a [`PackedIntColumn`] decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedLogical {
    Int64,
    Date,
}

/// Logical `Int64`/`Date` column stored as `base + delta` with fixed-width
/// bit-packed deltas. O(1) random access.
#[derive(Debug, Clone)]
pub struct PackedIntColumn {
    pub logical: PackedLogical,
    pub base: i64,
    pub width: u8,
    len: usize,
    words: Vec<u64>,
}

impl PackedIntColumn {
    /// Pack `values` at the minimal width (`base` = min value). Returns the
    /// canonical packing: a pure function of the values, so decode+re-encode
    /// is bit-identical.
    pub fn from_values(logical: PackedLogical, values: &[i64]) -> Self {
        let base = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        // The spread can exceed i64 (e.g. MIN..MAX); compute it in u64.
        let delta = (max as i128 - base as i128) as u64;
        let width = width_for(delta);
        Self::pack(logical, base, width, values)
    }

    /// Pack `values` at a caller-chosen `base`/`width` (every value must
    /// satisfy `0 <= value - base < 2^width`). Used by filter/take/scatter
    /// to keep a column's packing stable across row-subset operations.
    pub fn pack(logical: PackedLogical, base: i64, width: u8, values: &[i64]) -> Self {
        let mut w = BitWriter::new();
        for &v in values {
            w.put((v as i128 - base as i128) as u64 & mask(width), width);
        }
        let (words, _) = w.finish();
        PackedIntColumn { logical, base, width, len: values.len(), words }
    }

    /// Assemble from wire parts. The caller validates `width <= 64` and,
    /// for `Date`, that every decoded value fits in `i32`.
    pub fn from_parts(
        logical: PackedLogical,
        base: i64,
        width: u8,
        len: usize,
        words: Vec<u64>,
    ) -> Self {
        PackedIntColumn { logical, base, width, len, words }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The logical value at `row` (O(1)).
    pub fn get(&self, row: usize) -> i64 {
        debug_assert!(row < self.len);
        (self.base as i128 + packed_get(&self.words, self.width, row) as i128) as i64
    }

    /// Sequentially iterate the logical values.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    pub fn to_vec(&self) -> Vec<i64> {
        self.iter().collect()
    }

    /// The packed words backing this column (for serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Encoded in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        8 * self.words.len() + 16
    }
}

// ---------------------------------------------------------------------------
// XOR-compressed floats
// ---------------------------------------------------------------------------

/// Logical `Float64` column compressed by XOR-ing consecutive bit patterns
/// (the Gorilla scheme): repeats cost one bit, values sharing a "meaningful
/// bits" window with their predecessor cost only that window.
#[derive(Debug, Clone)]
pub struct XorFloatColumn {
    len: usize,
    bits: u64,
    words: Vec<u64>,
}

impl XorFloatColumn {
    /// Compress `values`. A pure function of the input bit patterns
    /// (NaN payloads and signed zeros round-trip exactly).
    pub fn from_values(values: &[f64]) -> Self {
        let mut w = BitWriter::new();
        let mut prev = 0u64;
        let mut window: Option<(u8, u8)> = None; // (leading, meaningful)
        for (i, &v) in values.iter().enumerate() {
            let bits = v.to_bits();
            if i == 0 {
                w.put(bits, 64);
                prev = bits;
                continue;
            }
            let x = bits ^ prev;
            prev = bits;
            if x == 0 {
                w.put(0, 1);
                continue;
            }
            w.put(1, 1);
            let lead = x.leading_zeros().min(63) as u8;
            let trail = x.trailing_zeros() as u8;
            let fits_window = window
                .map(|(wl, wm)| {
                    let wt = 64 - wl - wm;
                    lead >= wl && trail >= wt
                })
                .unwrap_or(false);
            if fits_window {
                let (wl, wm) = window.expect("window checked above");
                let wt = 64 - wl - wm;
                w.put(0, 1);
                w.put(x >> wt, wm);
            } else {
                let meaningful = 64 - lead - trail;
                w.put(1, 1);
                w.put(lead as u64, 6);
                w.put(meaningful as u64 - 1, 6);
                w.put(x >> trail, meaningful);
                window = Some((lead, meaningful));
            }
        }
        let (words, bits) = w.finish();
        XorFloatColumn { len: values.len(), bits, words }
    }

    /// Assemble from wire parts. Call [`XorFloatColumn::validate`] before
    /// trusting the stream.
    pub fn from_parts(len: usize, bits: u64, words: Vec<u64>) -> Self {
        XorFloatColumn { len, bits, words }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn bit_len(&self) -> u64 {
        self.bits
    }

    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Decode the full column. O(n); the only supported access pattern.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        let mut it = self.decoder();
        for _ in 0..self.len {
            // `validate` ran at every untrusted boundary, so exhaustion here
            // would be an internal logic error; fail soft with zeros rather
            // than panic.
            out.push(it.next().unwrap_or(0.0));
        }
        out
    }

    /// The value at row `i` by walking the stream — O(i). Exists only so
    /// row-at-a-time fallbacks stay correct; batch kernels must decode once
    /// with [`XorFloatColumn::to_vec`] instead.
    pub fn get_slow(&self, i: usize) -> f64 {
        self.decoder().nth(i).unwrap_or(0.0)
    }

    /// Whether the stream cleanly decodes exactly `len` values. Used at the
    /// wire boundary so corrupt frames surface as typed errors, not garbage.
    pub fn validate(&self) -> bool {
        let mut it = self.decoder();
        for _ in 0..self.len {
            if it.next().is_none() {
                return false;
            }
        }
        true
    }

    fn decoder(&self) -> XorDecoder<'_> {
        XorDecoder {
            reader: BitReader::new(&self.words, self.bits),
            first: true,
            prev: 0,
            window: (0, 64),
        }
    }

    /// Encoded in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        8 * self.words.len() + 16
    }
}

struct XorDecoder<'a> {
    reader: BitReader<'a>,
    first: bool,
    prev: u64,
    /// (leading, meaningful) of the current window.
    window: (u8, u8),
}

impl Iterator for XorDecoder<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.first {
            self.first = false;
            self.prev = self.reader.take(64)?;
            return Some(f64::from_bits(self.prev));
        }
        if self.reader.take(1)? == 0 {
            return Some(f64::from_bits(self.prev));
        }
        if self.reader.take(1)? == 1 {
            let lead = self.reader.take(6)? as u8;
            let meaningful = self.reader.take(6)? as u8 + 1;
            if lead as u32 + meaningful as u32 > 64 {
                return None;
            }
            self.window = (lead, meaningful);
        }
        let (lead, meaningful) = self.window;
        let trail = 64 - lead - meaningful;
        let x = self.reader.take(meaningful)? << trail;
        self.prev ^= x;
        Some(f64::from_bits(self.prev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_roundtrip_across_word_boundaries() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u8)> = (1..=64u8).map(|width| (mask(width), width)).collect();
        for &(v, width) in &values {
            w.put(v, width);
        }
        let (words, bits) = w.finish();
        let mut r = BitReader::new(&words, bits);
        for &(v, width) in &values {
            assert_eq!(r.take(width), Some(v), "width {width}");
        }
        assert_eq!(r.take(1), None, "stream exhausted");
    }

    #[test]
    fn dict_is_sorted_and_codes_resolve() {
        let strings: Vec<String> =
            ["MAIL", "AIR", "MAIL", "SHIP", "AIR"].iter().map(|s| s.to_string()).collect();
        let d = DictColumn::from_plain(&strings);
        assert_eq!(*d.values, vec!["AIR".to_string(), "MAIL".into(), "SHIP".into()]);
        assert_eq!(d.to_plain(), strings);
        assert_eq!(d.str_at(3), "SHIP");
        assert_eq!(d.code_width(), 2);
    }

    #[test]
    fn packed_int_extremes_roundtrip() {
        for values in [
            vec![],
            vec![42],
            vec![7, 7, 7, 7],
            vec![i64::MIN, i64::MAX, 0, -1],
            (0..1000).map(|i| i * 3 - 500).collect::<Vec<_>>(),
        ] {
            let p = PackedIntColumn::from_values(PackedLogical::Int64, &values);
            assert_eq!(p.to_vec(), values);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(p.get(i), v);
            }
        }
    }

    #[test]
    fn packed_all_equal_is_width_zero() {
        let p = PackedIntColumn::from_values(PackedLogical::Date, &[9131, 9131, 9131]);
        assert_eq!(p.width, 0);
        assert_eq!(p.words().len(), 0);
        assert_eq!(p.to_vec(), vec![9131, 9131, 9131]);
    }

    #[test]
    fn xor_float_roundtrips_edge_patterns() {
        for values in [
            vec![],
            vec![1.5],
            vec![0.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
            vec![3.25; 100],
            (0..500).map(|i| (i % 13) as f64 * 0.01).collect::<Vec<_>>(),
        ] {
            let x = XorFloatColumn::from_values(&values);
            assert!(x.validate());
            let back = x.to_vec();
            assert_eq!(back.len(), values.len());
            for (a, b) in values.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact including NaN payloads");
            }
        }
    }

    #[test]
    fn xor_float_compresses_repetitive_data() {
        // Runs of equal values cost one bit each; small-integer floats share
        // their trailing-zero window. Both shapes must compress well.
        let runs: Vec<f64> = (0..4096).map(|i| ((i / 512) as f64) * 0.25).collect();
        let x = XorFloatColumn::from_values(&runs);
        assert!(x.memory_bytes() < 8 * runs.len() / 8, "runs compress at least 8x");
        let quantities: Vec<f64> = (0..4096).map(|i| (i % 50 + 1) as f64).collect();
        let x = XorFloatColumn::from_values(&quantities);
        assert!(x.memory_bytes() < 8 * quantities.len() / 2, "small ints compress at least 2x");
    }

    #[test]
    fn xor_truncated_stream_fails_validation() {
        let values: Vec<f64> = (0..64).map(|i| i as f64 * 1.7).collect();
        let x = XorFloatColumn::from_values(&values);
        let cut = XorFloatColumn::from_parts(x.len(), x.bit_len() / 2, x.words().to_vec());
        assert!(!cut.validate());
    }
}
