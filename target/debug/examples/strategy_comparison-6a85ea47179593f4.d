/root/repo/target/debug/examples/strategy_comparison-6a85ea47179593f4.d: examples/strategy_comparison.rs

/root/repo/target/debug/examples/strategy_comparison-6a85ea47179593f4: examples/strategy_comparison.rs

examples/strategy_comparison.rs:
