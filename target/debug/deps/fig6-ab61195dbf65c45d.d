/root/repo/target/debug/deps/fig6-ab61195dbf65c45d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-ab61195dbf65c45d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
