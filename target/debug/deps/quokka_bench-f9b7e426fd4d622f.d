/root/repo/target/debug/deps/quokka_bench-f9b7e426fd4d622f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_bench-f9b7e426fd4d622f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
