/root/repo/target/debug/deps/quokka_batch-e1474b730bc15f0a.d: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

/root/repo/target/debug/deps/quokka_batch-e1474b730bc15f0a: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

crates/batch/src/lib.rs:
crates/batch/src/batch.rs:
crates/batch/src/codec.rs:
crates/batch/src/column.rs:
crates/batch/src/compute.rs:
crates/batch/src/datatype.rs:
crates/batch/src/rowkey.rs:
crates/batch/src/schema.rs:
