/root/repo/target/debug/deps/fig7-68530462a5255400.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-68530462a5255400.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
