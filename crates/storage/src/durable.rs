//! The durable object store (the S3/HDFS stand-in).

use crate::cost::CostModel;
use bytes::Bytes;
use parking_lot::RwLock;
use quokka_common::metrics::MetricsRegistry;
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What the engine needs from a durable store, as an object-safe trait.
///
/// The default implementation is the in-process [`DurableObjectStore`]. In
/// process mode each worker process substitutes a proxy that forwards these
/// calls to the driver's store over the control connection — the engine
/// holds an `Arc<dyn ObjectStore>` and cannot tell the difference, just as
/// TaskManagers in the paper are indifferent to where S3 actually is.
pub trait ObjectStore: Send + Sync + std::fmt::Debug {
    /// PUT an object, charging the durable write path.
    fn put(&self, key: String, payload: Bytes);
    /// PUT without charging cost or metrics (pre-loaded experiment inputs).
    fn put_unmetered(&self, key: String, payload: Bytes);
    /// GET an object, charging the durable read path.
    fn get(&self, key: &str) -> Result<Bytes>;
    /// Whether an object exists.
    fn contains(&self, key: &str) -> bool;
    /// Keys starting with `prefix`, in order.
    fn list_prefix(&self, prefix: &str) -> Vec<String>;
}

impl ObjectStore for DurableObjectStore {
    fn put(&self, key: String, payload: Bytes) {
        DurableObjectStore::put(self, key, payload);
    }

    fn put_unmetered(&self, key: String, payload: Bytes) {
        DurableObjectStore::put_unmetered(self, key, payload);
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        DurableObjectStore::get(self, key)
    }

    fn contains(&self, key: &str) -> bool {
        DurableObjectStore::contains(self, key)
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        DurableObjectStore::list_prefix(self, prefix)
    }
}

/// A cluster-wide, reliable object store.
///
/// Contents survive worker failures (this is where the TPC-H source tables
/// live, where Trino-style spooling writes shuffle partitions, and where the
/// checkpointing strategy writes operator state). Every request is charged
/// to the durable-path cost model, which is why spooling and checkpointing
/// show up as normal-execution overhead in the Fig. 9 reproduction.
#[derive(Debug)]
pub struct DurableObjectStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
    cost: CostModel,
    metrics: Arc<MetricsRegistry>,
}

impl DurableObjectStore {
    pub fn new(cost: CostModel, metrics: Arc<MetricsRegistry>) -> Self {
        DurableObjectStore { objects: RwLock::new(BTreeMap::new()), cost, metrics }
    }

    /// A store with no simulated delays and throw-away metrics (tests).
    pub fn in_memory() -> Self {
        Self::new(CostModel::free(), MetricsRegistry::new())
    }

    /// PUT an object, charging the durable write path and the
    /// `durable_bytes` metric.
    pub fn put(&self, key: impl Into<String>, payload: Bytes) {
        self.cost.charge_durable(payload.len() as u64);
        self.metrics.add_durable_bytes(payload.len() as u64);
        self.objects.write().insert(key.into(), payload);
    }

    /// PUT an object *without* charging the cost model or metrics. Used to
    /// load source tables before the measured part of an experiment starts
    /// (the paper's input data already sits in S3 when the query begins).
    pub fn put_unmetered(&self, key: impl Into<String>, payload: Bytes) {
        self.objects.write().insert(key.into(), payload);
    }

    /// GET an object, charging the durable read path.
    pub fn get(&self, key: &str) -> Result<Bytes> {
        let payload = self
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| QuokkaError::NotFound(format!("durable object '{key}'")))?;
        self.cost.charge_durable(payload.len() as u64);
        Ok(payload)
    }

    /// GET without charging (used by test assertions).
    pub fn get_unmetered(&self, key: &str) -> Option<Bytes> {
        self.objects.read().get(key).cloned()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    pub fn delete(&self, key: &str) -> bool {
        self.objects.write().remove(key).is_some()
    }

    /// Keys starting with `prefix`, in order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Total bytes stored.
    pub fn byte_size(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn put_get_list_delete() {
        let s = DurableObjectStore::in_memory();
        s.put("spool/q1/a", Bytes::from_static(b"one"));
        s.put("spool/q1/b", Bytes::from_static(b"two"));
        s.put("tables/lineitem/0", Bytes::from_static(b"data"));
        assert_eq!(s.get("spool/q1/a").unwrap(), Bytes::from_static(b"one"));
        assert!(s.get("missing").is_err());
        assert_eq!(s.list_prefix("spool/"), vec!["spool/q1/a", "spool/q1/b"]);
        assert_eq!(s.len(), 3);
        assert!(s.contains("tables/lineitem/0"));
        assert!(s.delete("spool/q1/a"));
        assert!(!s.delete("spool/q1/a"));
        assert_eq!(s.byte_size(), 3 + 4);
    }

    #[test]
    fn contents_survive_everything_short_of_delete() {
        // Unlike LocalBackupStore there is no fail(); durability is the point.
        let s = DurableObjectStore::in_memory();
        s.put_unmetered("k", Bytes::from_static(b"v"));
        assert_eq!(s.get_unmetered("k").unwrap(), Bytes::from_static(b"v"));
        assert!(!s.is_empty());
    }

    #[test]
    fn metered_and_unmetered_puts() {
        let metrics = MetricsRegistry::new();
        let s = DurableObjectStore::new(CostModel::free(), Arc::clone(&metrics));
        s.put_unmetered("preloaded", Bytes::from(vec![0u8; 1000]));
        s.put("spooled", Bytes::from(vec![0u8; 64]));
        let snap = metrics.snapshot(Duration::ZERO);
        assert_eq!(snap.durable_bytes, 64);
    }
}
