//! Batch-level parity between the DataFrame-built TPC-H queries and their
//! SQL twins, on both the reference executor and the distributed runtime.
//!
//! Three frontends lower to the engine's `LogicalPlan` — hand-built
//! `PlanBuilder` trees, SQL text, and the lazy DataFrame API. The SQL twins
//! are already parity-tested against the hand-built plans
//! (`tests/sql_frontend.rs`), so DataFrame == SQL here closes the triangle:
//! any frontend disagreeing with any other fails a test.

use quokka::dataframe::tpch::{query as df_query, DATAFRAME_QUERIES};
use quokka::tpch::queries::sql::sql_text;
use quokka::{same_result, EngineConfig, FailureSpec, QuokkaSession};

/// Reference-executor parity runs on a larger data set (both sides are
/// deterministic); the distributed runs use the same scale the other
/// integration suites use, inside the float tolerance `same_result` allows
/// for differing summation orders.
fn session() -> QuokkaSession {
    QuokkaSession::tpch(0.005, 3).unwrap()
}

fn distributed_session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).unwrap()
}

#[test]
fn dataframe_queries_are_a_subset_of_the_sql_surface() {
    // SQL now covers the full benchmark (22/22); every DataFrame query has
    // a SQL twin to compare against, and the DataFrame surface includes
    // the semi/anti-join shapes (Q4, Q16, Q18, Q22) on top of the original
    // nine subquery-free queries.
    for q in DATAFRAME_QUERIES {
        assert!(
            quokka::tpch::queries::sql::SQL_QUERIES.contains(&q),
            "Q{q} has no SQL twin to compare against"
        );
    }
    assert_eq!(quokka::tpch::queries::sql::SQL_QUERIES.len(), 22);
    for q in [4, 16, 18, 22] {
        assert!(DATAFRAME_QUERIES.contains(&q), "decorrelated Q{q} missing a DataFrame twin");
    }
    assert!(DATAFRAME_QUERIES.len() >= 12);
}

#[test]
fn dataframe_matches_sql_on_the_reference_executor() {
    let session = session();
    for q in DATAFRAME_QUERIES {
        let frame = df_query(&session, q).unwrap();
        let sql = session.sql(sql_text(q).unwrap()).unwrap();
        assert_eq!(
            frame.schema().column_names(),
            sql.plan().schema().unwrap().column_names(),
            "Q{q}: output columns diverge between DataFrame and SQL"
        );
        let df_result = frame
            .collect_reference()
            .unwrap_or_else(|e| panic!("Q{q} (DataFrame) failed on the reference executor: {e}"));
        let sql_result = sql.collect_reference().unwrap();
        assert!(
            same_result(&df_result, &sql_result),
            "Q{q}: DataFrame result ({} rows) != SQL result ({} rows)\nDataFrame plan:\n{}",
            df_result.num_rows(),
            sql_result.num_rows(),
            frame.plan().display_indent(),
        );
    }
}

#[test]
fn dataframe_matches_sql_on_the_distributed_runtime() {
    let session = distributed_session();
    for q in DATAFRAME_QUERIES {
        let frame = df_query(&session, q).unwrap();
        let distributed = frame
            .collect()
            .unwrap_or_else(|e| panic!("Q{q} (DataFrame) failed on the cluster: {e}"));
        let sql_result = session.sql(sql_text(q).unwrap()).unwrap().collect_reference().unwrap();
        assert!(
            same_result(&distributed.batch, &sql_result),
            "Q{q}: distributed DataFrame result diverged from the SQL oracle"
        );
        assert!(distributed.metrics.tasks_executed > 0);
        assert_eq!(
            distributed.metrics.output_rows,
            distributed.batch.num_rows() as u64,
            "Q{q}: metrics must count exactly the delivered rows"
        );
    }
}

/// The optimizer must not change DataFrame results either (frames flow
/// through the same rewrite pipeline as SQL).
#[test]
fn dataframe_results_survive_the_optimizer() {
    let session = distributed_session();
    let naive = EngineConfig::quokka(3).with_optimize(false);
    for q in [3, 9, 12] {
        let frame = df_query(&session, q).unwrap();
        let optimized = frame.collect().unwrap();
        let unoptimized = frame.collect_with(&naive).unwrap();
        assert!(
            same_result(&optimized.batch, &unoptimized.batch),
            "Q{q}: optimized and naive DataFrame runs disagree"
        );
    }
}

/// DataFrame queries recover from injected worker failures like any other
/// frontend (they share the whole execution stack).
#[test]
fn dataframe_queries_recover_from_worker_failure() {
    let session = distributed_session();
    let faulty = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
    for q in [3, 12] {
        let frame = df_query(&session, q).unwrap();
        let expected = frame.collect_reference().unwrap();
        let outcome = frame.collect_with(&faulty).unwrap();
        assert!(
            same_result(&outcome.batch, &expected),
            "Q{q}: result after fault recovery diverged"
        );
        assert_eq!(outcome.metrics.failures, 1);
    }
}
