/root/repo/target/debug/deps/session_api-68bfc4f819e68a75.d: tests/session_api.rs

/root/repo/target/debug/deps/session_api-68bfc4f819e68a75: tests/session_api.rs

tests/session_api.rs:
