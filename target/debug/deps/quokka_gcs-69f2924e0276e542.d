/root/repo/target/debug/deps/quokka_gcs-69f2924e0276e542.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_gcs-69f2924e0276e542.rmeta: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs Cargo.toml

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
