//! Property tests for the transport wire format.
//!
//! The TCP data plane ships every shuffle push as a wire frame, so the
//! encoding must round-trip *byte-exactly* (a replayed partition has to be
//! indistinguishable from the original) and must treat any corrupted or
//! truncated frame as a typed error — a malformed frame from a half-dead
//! peer must surface as a retryable failure, never a panic in the recv loop.
//!
//! Randomized batches cover all five `DataType`s, empty columns, edge
//! values (extreme integers, NaN payloads, signed zeros, empty and
//! multi-byte UTF-8 strings) and frames beyond 64KB.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use quokka::batch::wire::{
    decode_batch, decode_batches, encode_batch_into, encode_batches_into, encoded_batch_len,
};
use quokka::batch::{Batch, Column, DataType, Field, Schema};
use quokka::QuokkaError;

/// Deterministically build a randomized batch from the test RNG: random
/// column count/types/names, shared row count, values drawn from a pool of
/// adversarial edge cases mixed with uniform randoms.
fn random_batch(rng: &mut TestRng, rows: usize, cols: usize) -> Batch {
    const I64_EDGES: [i64; 5] = [i64::MIN, -1, 0, 1, i64::MAX];
    const F64_EDGES: [f64; 6] =
        [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, f64::MIN_POSITIVE];
    const I32_EDGES: [i32; 4] = [i32::MIN, -1, 0, i32::MAX];
    const STR_POOL: [&str; 6] =
        ["", "a", "hello world", "unicode ✓ß", "emoji 🦘", "newline\nand\ttab"];
    let mut fields = Vec::with_capacity(cols);
    let mut columns = Vec::with_capacity(cols);
    for c in 0..cols {
        let dtype = match rng.below(5) {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Utf8,
            3 => DataType::Bool,
            _ => DataType::Date,
        };
        fields.push(Field::new(format!("col{c}_✓"), dtype));
        columns.push(match dtype {
            DataType::Int64 => Column::Int64(
                (0..rows)
                    .map(|_| {
                        if rng.below(4) == 0 {
                            I64_EDGES[rng.below(I64_EDGES.len() as u64) as usize]
                        } else {
                            rng.next_u64() as i64
                        }
                    })
                    .collect(),
            ),
            DataType::Float64 => Column::Float64(
                (0..rows)
                    .map(|_| {
                        if rng.below(4) == 0 {
                            F64_EDGES[rng.below(F64_EDGES.len() as u64) as usize]
                        } else {
                            f64::from_bits(rng.next_u64())
                        }
                    })
                    .collect(),
            ),
            DataType::Utf8 => Column::Utf8(
                (0..rows)
                    .map(|_| {
                        let base = STR_POOL[rng.below(STR_POOL.len() as u64) as usize];
                        base.repeat(rng.below(4) as usize)
                    })
                    .collect(),
            ),
            DataType::Bool => Column::Bool((0..rows).map(|_| rng.below(2) == 1).collect()),
            DataType::Date => Column::Date(
                (0..rows)
                    .map(|_| {
                        if rng.below(4) == 0 {
                            I32_EDGES[rng.below(I32_EDGES.len() as u64) as usize]
                        } else {
                            rng.next_u64() as i32
                        }
                    })
                    .collect(),
            ),
        });
    }
    Batch::try_new(Schema::new(fields), columns).expect("generated columns are equal length")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode -> decode -> re-encode reproduces the exact frame bytes for
    /// arbitrary batches, including zero-row batches (empty columns).
    #[test]
    fn roundtrip_is_byte_exact(rows in 0usize..200, cols in 1usize..7, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        let batch = random_batch(&mut rng, rows, cols);
        let mut frame = Vec::new();
        encode_batch_into(&batch, &mut frame);
        // `encoded_batch_len` is an upper bound: the encoder may shrink a
        // plain column opportunistically (bit-packing, XOR) when that wins.
        prop_assert!(frame.len() <= encoded_batch_len(&batch));
        let decoded = decode_batch(&frame).unwrap();
        prop_assert_eq!(decoded.num_rows(), rows);
        prop_assert_eq!(decoded.schema(), batch.schema());
        let mut again = Vec::new();
        encode_batch_into(&decoded, &mut again);
        prop_assert_eq!(frame, again);
    }

    /// Multi-batch push frames (the unit the TCP transport actually ships)
    /// round-trip through a reused slab.
    #[test]
    fn multi_batch_frames_roundtrip(count in 0usize..4, rows in 0usize..80, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        let batches: Vec<Batch> =
            (0..count)
                .map(|_| {
                    let cols = 1 + rng.below(4) as usize;
                    random_batch(&mut rng, rows, cols)
                })
                .collect();
        let mut slab = Vec::with_capacity(4096);
        encode_batches_into(&batches, &mut slab);
        let first = slab.clone();
        let decoded = decode_batches(&slab).unwrap();
        prop_assert_eq!(decoded.len(), count);
        for (orig, got) in batches.iter().zip(&decoded) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            encode_batch_into(orig, &mut a);
            encode_batch_into(got, &mut b);
            prop_assert_eq!(a, b);
        }
        // Slab reuse: clear + re-encode writes the identical frame.
        slab.clear();
        encode_batches_into(&decoded, &mut slab);
        prop_assert_eq!(slab, first);
    }

    /// Every strict prefix of a frame is rejected with a typed Storage
    /// error — truncation anywhere must never panic or mis-decode.
    #[test]
    fn truncations_yield_typed_errors(rows in 1usize..40, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        let cols = 1 + rng.below(4) as usize;
        let batch = random_batch(&mut rng, rows, cols);
        let mut frame = Vec::new();
        encode_batch_into(&batch, &mut frame);
        for cut in 0..frame.len() {
            match decode_batch(&frame[..cut]) {
                Err(QuokkaError::Storage(_)) => {}
                other => panic!("truncation at {cut}/{} produced {other:?}", frame.len()),
            }
        }
    }

    /// Arbitrary single-byte corruption either decodes (the flip landed in
    /// value bytes) or fails with a typed Storage error — never a panic,
    /// never an unbounded allocation.
    #[test]
    fn corruption_never_panics(rows in 1usize..60, seed in any::<i64>(), flips in 1usize..8) {
        let mut rng = TestRng::for_case(seed as u64);
        let cols = 1 + rng.below(3) as usize;
        let batch = random_batch(&mut rng, rows, cols);
        let mut frame = Vec::new();
        encode_batch_into(&batch, &mut frame);
        for _ in 0..flips {
            let mut bad = frame.clone();
            let pos = rng.below(bad.len() as u64) as usize;
            bad[pos] ^= (1 + rng.below(255)) as u8;
            match decode_batch(&bad) {
                Ok(_) => {}
                Err(QuokkaError::Storage(_)) => {}
                Err(other) => panic!("corrupted frame produced unexpected error {other:?}"),
            }
        }
    }
}

/// Frames larger than 64KB (beyond any single read buffer) round-trip
/// byte-exactly.
#[test]
fn large_frames_roundtrip() {
    let mut rng = TestRng::for_case(0x51_4B);
    let batch = random_batch(&mut rng, 6000, 5);
    let mut frame = Vec::new();
    encode_batch_into(&batch, &mut frame);
    assert!(frame.len() > 64 * 1024, "frame only {} bytes", frame.len());
    let decoded = decode_batch(&frame).unwrap();
    let mut again = Vec::new();
    encode_batch_into(&decoded, &mut again);
    assert_eq!(frame, again);
}
