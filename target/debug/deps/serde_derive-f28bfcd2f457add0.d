/root/repo/target/debug/deps/serde_derive-f28bfcd2f457add0.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-f28bfcd2f457add0.so: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
