/root/repo/target/debug/libserde_derive.so: /root/repo/crates/shims/serde_derive/src/lib.rs
