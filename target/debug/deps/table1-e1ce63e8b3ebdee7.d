/root/repo/target/debug/deps/table1-e1ce63e8b3ebdee7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e1ce63e8b3ebdee7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
