/root/repo/target/debug/deps/ablation_checkpoint-b1f6df424a7b469e.d: crates/bench/src/bin/ablation_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libablation_checkpoint-b1f6df424a7b469e.rmeta: crates/bench/src/bin/ablation_checkpoint.rs Cargo.toml

crates/bench/src/bin/ablation_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
