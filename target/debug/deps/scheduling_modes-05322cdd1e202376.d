/root/repo/target/debug/deps/scheduling_modes-05322cdd1e202376.d: tests/scheduling_modes.rs

/root/repo/target/debug/deps/scheduling_modes-05322cdd1e202376: tests/scheduling_modes.rs

tests/scheduling_modes.rs:
