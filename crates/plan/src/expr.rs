//! The expression language and its columnar evaluator.

use crate::logical::LogicalPlan;
use quokka_batch::compute::{self, ArithOp, CmpOp};
use quokka_batch::datatype::{date_year, DataType, ScalarValue};
use quokka_batch::{Batch, Column, Schema};
use quokka_common::{QuokkaError, Result};

/// A scalar expression evaluated row-wise over a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A constant.
    Literal(ScalarValue),
    /// Arithmetic between two expressions.
    Arith { op: ArithOpKind, left: Box<Expr>, right: Box<Expr> },
    /// Comparison between two expressions, producing a boolean.
    Cmp { op: CmpOpKind, left: Box<Expr>, right: Box<Expr> },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// SQL LIKE pattern match over a string expression.
    Like { expr: Box<Expr>, pattern: String, negated: bool },
    /// SQL `IN (list)` membership test.
    InList { expr: Box<Expr>, list: Vec<ScalarValue>, negated: bool },
    /// Inclusive range test `expr BETWEEN low AND high`.
    Between { expr: Box<Expr>, low: ScalarValue, high: ScalarValue },
    /// `CASE WHEN cond THEN value ... ELSE otherwise END`.
    Case { branches: Vec<(Expr, Expr)>, otherwise: Box<Expr> },
    /// `EXTRACT(YEAR FROM date_expr)` producing an Int64.
    Year(Box<Expr>),
    /// `SUBSTRING(expr FROM start FOR len)` with 1-based `start`.
    Substr { expr: Box<Expr>, start: usize, len: usize },
    /// Cast to another data type.
    Cast { expr: Box<Expr>, to: DataType },
    /// A reference to a column of the *enclosing* query, appearing inside a
    /// subquery plan (a correlated reference). Carries the resolved type so
    /// the subquery plan still schema-checks on its own. Never executable:
    /// the optimizer's decorrelation pass turns the enclosing equality into
    /// a join key and removes this node.
    OuterRef { name: String, dtype: DataType },
    /// `EXISTS (subquery)` — true for rows where the subquery (with this
    /// row's [`Expr::OuterRef`]s substituted) returns at least one row.
    /// Decorrelated into a [`JoinType::Semi`](crate::logical::JoinType)
    /// (or `Anti` when `negated`) join before execution.
    Exists { plan: Box<LogicalPlan>, negated: bool },
    /// `expr [NOT] IN (subquery)` over a one-column subquery. Decorrelated
    /// into a semi (anti when `negated`) join before execution.
    InSubquery { expr: Box<Expr>, plan: Box<LogicalPlan>, negated: bool },
    /// A scalar subquery: a one-column aggregate plan producing (at most)
    /// one value per binding of its outer references. Decorrelated into a
    /// group-by + join (correlated) or a constant-key join (uncorrelated).
    ScalarSubquery(Box<LogicalPlan>),
}

/// Arithmetic operators (mirrors [`quokka_batch::compute::ArithOp`], kept
/// separate so plans serialise/compare independently of the kernel crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOpKind {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOpKind {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl From<ArithOpKind> for ArithOp {
    fn from(op: ArithOpKind) -> ArithOp {
        match op {
            ArithOpKind::Add => ArithOp::Add,
            ArithOpKind::Sub => ArithOp::Sub,
            ArithOpKind::Mul => ArithOp::Mul,
            ArithOpKind::Div => ArithOp::Div,
        }
    }
}

impl From<CmpOpKind> for CmpOp {
    fn from(op: CmpOpKind) -> CmpOp {
        match op {
            CmpOpKind::Eq => CmpOp::Eq,
            CmpOpKind::NotEq => CmpOp::NotEq,
            CmpOpKind::Lt => CmpOp::Lt,
            CmpOpKind::LtEq => CmpOp::LtEq,
            CmpOpKind::Gt => CmpOp::Gt,
            CmpOpKind::GtEq => CmpOp::GtEq,
        }
    }
}

/// An expression paired with an (optional) output name.
///
/// The DataFrame `select` and the plan builders accept either a bare
/// [`Expr`] (named after itself when it is a column reference) or an
/// explicitly aliased one built with [`Expr::alias`].
#[derive(Debug, Clone, PartialEq)]
pub struct NamedExpr {
    pub expr: Expr,
    pub name: Option<String>,
}

impl NamedExpr {
    /// The output name this expression resolves to: the alias if one was
    /// given, a column's own name, or a positional `col{index}` fallback
    /// for anonymous computed expressions.
    pub fn resolve_name(&self, index: usize) -> String {
        match (&self.name, &self.expr) {
            (Some(name), _) => name.clone(),
            (None, Expr::Column(column)) => column.clone(),
            (None, _) => format!("col{index}"),
        }
    }
}

impl From<Expr> for NamedExpr {
    fn from(expr: Expr) -> Self {
        NamedExpr { expr, name: None }
    }
}

/// Shorthand for a column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Shorthand for a literal.
pub fn lit(value: impl Into<ScalarValue>) -> Expr {
    Expr::Literal(value.into())
}

/// Shorthand for a date literal given as `YYYY-MM-DD`.
pub fn date(value: &str) -> Expr {
    Expr::Literal(ScalarValue::Date(quokka_batch::datatype::parse_date(value)))
}

impl Expr {
    fn binary_arith(self, op: ArithOpKind, rhs: Expr) -> Expr {
        Expr::Arith { op, left: Box::new(self), right: Box::new(rhs) }
    }
    fn binary_cmp(self, op: CmpOpKind, rhs: Expr) -> Expr {
        Expr::Cmp { op, left: Box::new(self), right: Box::new(rhs) }
    }

    // DataFusion-style builder names; `a.add(b)` builds an expression tree
    // rather than evaluating, so the std::ops traits don't fit.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary_arith(ArithOpKind::Add, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary_arith(ArithOpKind::Sub, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary_arith(ArithOpKind::Mul, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary_arith(ArithOpKind::Div, rhs)
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary_cmp(CmpOpKind::Eq, rhs)
    }
    pub fn not_eq(self, rhs: Expr) -> Expr {
        self.binary_cmp(CmpOpKind::NotEq, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary_cmp(CmpOpKind::Lt, rhs)
    }
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        self.binary_cmp(CmpOpKind::LtEq, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary_cmp(CmpOpKind::Gt, rhs)
    }
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        self.binary_cmp(CmpOpKind::GtEq, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like { expr: Box::new(self), pattern: pattern.into(), negated: false }
    }
    pub fn not_like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like { expr: Box::new(self), pattern: pattern.into(), negated: true }
    }
    pub fn in_list(self, list: Vec<ScalarValue>) -> Expr {
        Expr::InList { expr: Box::new(self), list, negated: false }
    }
    pub fn not_in_list(self, list: Vec<ScalarValue>) -> Expr {
        Expr::InList { expr: Box::new(self), list, negated: true }
    }
    pub fn between(self, low: impl Into<ScalarValue>, high: impl Into<ScalarValue>) -> Expr {
        Expr::Between { expr: Box::new(self), low: low.into(), high: high.into() }
    }
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }
    pub fn substr(self, start: usize, len: usize) -> Expr {
        Expr::Substr { expr: Box::new(self), start, len }
    }
    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast { expr: Box::new(self), to }
    }

    /// `CASE WHEN cond THEN a ELSE b END` convenience constructor.
    pub fn case_when(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Case { branches: vec![(cond, then)], otherwise: Box::new(otherwise) }
    }

    /// Name this expression's output column (SQL `AS`).
    pub fn alias(self, name: impl Into<String>) -> NamedExpr {
        NamedExpr { expr: self, name: Some(name.into()) }
    }

    /// The output data type of this expression against `schema`.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        Ok(match self {
            Expr::Column(name) => schema.data_type(name)?,
            Expr::Literal(v) => v.data_type(),
            Expr::Arith { op, left, right } => {
                let l = left.data_type(schema)?;
                let r = right.data_type(schema)?;
                if !l.is_numeric() && l != DataType::Date {
                    return Err(QuokkaError::TypeError(format!("arithmetic on {l}")));
                }
                if *op != ArithOpKind::Div && l == DataType::Int64 && r == DataType::Int64 {
                    DataType::Int64
                } else {
                    DataType::Float64
                }
            }
            Expr::Cmp { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::Like { .. }
            | Expr::InList { .. }
            | Expr::Between { .. } => DataType::Bool,
            Expr::Case { branches, otherwise } => {
                let t = branches
                    .first()
                    .map(|(_, then)| then.data_type(schema))
                    .unwrap_or_else(|| otherwise.data_type(schema))?;
                // Mixed Int64/Float64 branches produce Float64.
                let o = otherwise.data_type(schema)?;
                if t == o {
                    t
                } else if t.is_numeric() && o.is_numeric() {
                    DataType::Float64
                } else {
                    t
                }
            }
            Expr::Year(_) => DataType::Int64,
            Expr::Substr { .. } => DataType::Utf8,
            Expr::Cast { to, .. } => *to,
            Expr::OuterRef { dtype, .. } => *dtype,
            Expr::Exists { .. } | Expr::InSubquery { .. } => DataType::Bool,
            Expr::ScalarSubquery(plan) => {
                let sub_schema = plan.schema()?;
                if sub_schema.len() != 1 {
                    return Err(QuokkaError::TypeError(format!(
                        "scalar subquery must produce exactly one column, got {}",
                        sub_schema.len()
                    )));
                }
                sub_schema.field(0).data_type
            }
        })
    }

    /// Evaluate this expression over every row of `batch`.
    pub fn evaluate(&self, batch: &Batch) -> Result<Column> {
        let rows = batch.num_rows();
        match self {
            Expr::Column(name) => Ok(batch.column_by_name(name)?.clone()),
            Expr::Literal(v) => Ok(compute::broadcast(v, rows)),
            Expr::Arith { op, left, right } => {
                let l = left.evaluate(batch)?;
                let r = right.evaluate(batch)?;
                compute::arith((*op).into(), &l, &r)
            }
            Expr::Cmp { op, left, right } => {
                // Column-vs-literal comparisons run the encoding-aware scalar
                // kernel (dictionary LUT, packed streaming) without
                // broadcasting the literal into a full column.
                if let Expr::Literal(v) = right.as_ref() {
                    let l = left.evaluate(batch)?;
                    compute::compare_scalar((*op).into(), &l, v)
                } else if let Expr::Literal(v) = left.as_ref() {
                    let r = right.evaluate(batch)?;
                    compute::compare_scalar(CmpOp::from(*op).mirror(), &r, v)
                } else {
                    let l = left.evaluate(batch)?;
                    let r = right.evaluate(batch)?;
                    compute::compare((*op).into(), &l, &r)
                }
            }
            Expr::And(l, r) => compute::and(&l.evaluate(batch)?, &r.evaluate(batch)?),
            Expr::Or(l, r) => compute::or(&l.evaluate(batch)?, &r.evaluate(batch)?),
            Expr::Not(e) => compute::not(&e.evaluate(batch)?),
            Expr::Like { expr, pattern, negated } => {
                let mask = compute::like(&expr.evaluate(batch)?, pattern)?;
                if *negated {
                    compute::not(&mask)
                } else {
                    Ok(mask)
                }
            }
            Expr::InList { expr, list, negated } => {
                let mask = compute::in_list(&expr.evaluate(batch)?, list)?;
                if *negated {
                    compute::not(&mask)
                } else {
                    Ok(mask)
                }
            }
            Expr::Between { expr, low, high } => {
                let value = expr.evaluate(batch)?;
                let low_mask =
                    compute::compare(CmpOp::GtEq, &value, &compute::broadcast(low, rows))?;
                let high_mask =
                    compute::compare(CmpOp::LtEq, &value, &compute::broadcast(high, rows))?;
                compute::and(&low_mask, &high_mask)
            }
            Expr::Case { branches, otherwise } => {
                // Row-at-a-time select over encoded columns would pay a
                // per-row decode, so branch values are made plain up front.
                let mut result = otherwise.evaluate(batch)?;
                result.make_plain();
                // Apply branches in reverse so the FIRST matching branch wins.
                for (cond, then) in branches.iter().rev() {
                    let mask = cond.evaluate(batch)?;
                    let mask = mask.as_bool()?;
                    let mut then_col = then.evaluate(batch)?;
                    then_col.make_plain();
                    result = select(mask, &then_col, &result)?;
                }
                Ok(result)
            }
            Expr::Year(e) => {
                let dates = e.evaluate(batch)?;
                let dates = dates.decoded();
                let days = dates.as_date()?;
                Ok(Column::Int64(days.iter().map(|&d| date_year(d)).collect()))
            }
            Expr::Substr { expr, start, len } => {
                let values = expr.evaluate(batch)?;
                if let Column::Dict(d) = &values {
                    // Slice each dictionary entry once and remap the codes.
                    let start = start.saturating_sub(1);
                    let sliced: Vec<String> = d
                        .values
                        .iter()
                        .map(|s| s.chars().skip(start).take(*len).collect::<String>())
                        .collect();
                    return Ok(Column::Utf8(
                        d.codes.iter().map(|&c| sliced[c as usize].clone()).collect(),
                    ));
                }
                let strings = values.as_utf8()?;
                let start = start.saturating_sub(1);
                Ok(Column::Utf8(
                    strings
                        .iter()
                        .map(|s| s.chars().skip(start).take(*len).collect::<String>())
                        .collect(),
                ))
            }
            Expr::Cast { expr, to } => compute::cast(&expr.evaluate(batch)?, *to),
            Expr::OuterRef { name, .. } => Err(QuokkaError::PlanError(format!(
                "correlated reference to outer column '{name}' reached execution; \
                 subqueries must be decorrelated first (optimizer::decorrelate)"
            ))),
            Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {
                Err(QuokkaError::PlanError(
                    "subquery expression reached execution; subqueries must be \
                     decorrelated into joins first (optimizer::decorrelate)"
                        .to_string(),
                ))
            }
        }
    }

    /// Evaluate this expression as a boolean mask (for predicates).
    pub fn evaluate_mask(&self, batch: &Batch) -> Result<Vec<bool>> {
        Ok(self.evaluate(batch)?.as_bool()?.to_vec())
    }

    /// Column names referenced by this expression, in first-appearance order.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Arith { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e)
            | Expr::Like { expr: e, .. }
            | Expr::InList { expr: e, .. }
            | Expr::Between { expr: e, .. }
            | Expr::Year(e)
            | Expr::Substr { expr: e, .. }
            | Expr::Cast { expr: e, .. } => e.collect_columns(out),
            Expr::Case { branches, otherwise } => {
                for (c, t) in branches {
                    c.collect_columns(out);
                    t.collect_columns(out);
                }
                otherwise.collect_columns(out);
            }
            // An OuterRef names a column of the *enclosing* scope, which is
            // exactly the schema this expression evaluates against once the
            // subquery holding it is lifted out — so it counts as referenced.
            Expr::OuterRef { name, .. } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            // A subquery expression depends on the outer columns its plan
            // correlates on (one level deep; deeper OuterRefs belong to
            // inner scopes).
            Expr::Exists { plan, .. } | Expr::ScalarSubquery(plan) => {
                collect_plan_outer_refs(plan, out);
            }
            Expr::InSubquery { expr, plan, .. } => {
                expr.collect_columns(out);
                collect_plan_outer_refs(plan, out);
            }
        }
    }

    /// Collect the outer-scope columns this expression's *immediate*
    /// [`Expr::OuterRef`]s name, without descending into nested subquery
    /// plans (their outer refs resolve against a different scope).
    pub(crate) fn collect_outer_refs(&self, out: &mut Vec<String>) {
        match self {
            Expr::OuterRef { name, .. } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::InSubquery { expr, .. } => expr.collect_outer_refs(out),
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Arith { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.collect_outer_refs(out);
                right.collect_outer_refs(out);
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_outer_refs(out);
                r.collect_outer_refs(out);
            }
            Expr::Not(e)
            | Expr::Like { expr: e, .. }
            | Expr::InList { expr: e, .. }
            | Expr::Between { expr: e, .. }
            | Expr::Year(e)
            | Expr::Substr { expr: e, .. }
            | Expr::Cast { expr: e, .. } => e.collect_outer_refs(out),
            Expr::Case { branches, otherwise } => {
                for (c, t) in branches {
                    c.collect_outer_refs(out);
                    t.collect_outer_refs(out);
                }
                otherwise.collect_outer_refs(out);
            }
        }
    }

    /// Whether this expression contains a subquery node (at any depth of the
    /// expression tree, not looking inside subquery plans).
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::OuterRef { .. } => false,
            Expr::Arith { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.contains_subquery() || right.contains_subquery()
            }
            Expr::And(l, r) | Expr::Or(l, r) => l.contains_subquery() || r.contains_subquery(),
            Expr::Not(e)
            | Expr::Like { expr: e, .. }
            | Expr::InList { expr: e, .. }
            | Expr::Between { expr: e, .. }
            | Expr::Year(e)
            | Expr::Substr { expr: e, .. }
            | Expr::Cast { expr: e, .. } => e.contains_subquery(),
            Expr::Case { branches, otherwise } => {
                branches.iter().any(|(c, t)| c.contains_subquery() || t.contains_subquery())
                    || otherwise.contains_subquery()
            }
        }
    }

    /// Whether every column this expression references appears in `schema`.
    pub fn references_only(&self, schema: &Schema) -> bool {
        self.referenced_columns().iter().all(|c| schema.index_of(c).is_ok())
    }

    /// Apply `f` to every direct child expression, rebuilding this node.
    pub fn map_children(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        match self {
            Expr::Column(_) | Expr::Literal(_) => self,
            Expr::Arith { op, left, right } => {
                Expr::Arith { op, left: Box::new(f(*left)), right: Box::new(f(*right)) }
            }
            Expr::Cmp { op, left, right } => {
                Expr::Cmp { op, left: Box::new(f(*left)), right: Box::new(f(*right)) }
            }
            Expr::And(l, r) => Expr::And(Box::new(f(*l)), Box::new(f(*r))),
            Expr::Or(l, r) => Expr::Or(Box::new(f(*l)), Box::new(f(*r))),
            Expr::Not(e) => Expr::Not(Box::new(f(*e))),
            Expr::Like { expr, pattern, negated } => {
                Expr::Like { expr: Box::new(f(*expr)), pattern, negated }
            }
            Expr::InList { expr, list, negated } => {
                Expr::InList { expr: Box::new(f(*expr)), list, negated }
            }
            Expr::Between { expr, low, high } => {
                Expr::Between { expr: Box::new(f(*expr)), low, high }
            }
            Expr::Case { branches, otherwise } => Expr::Case {
                branches: branches.into_iter().map(|(c, t)| (f(c), f(t))).collect(),
                otherwise: Box::new(f(*otherwise)),
            },
            Expr::Year(e) => Expr::Year(Box::new(f(*e))),
            Expr::Substr { expr, start, len } => {
                Expr::Substr { expr: Box::new(f(*expr)), start, len }
            }
            Expr::Cast { expr, to } => Expr::Cast { expr: Box::new(f(*expr)), to },
            // Subquery plans are not expression children; only the tested
            // expression of IN is mapped.
            Expr::OuterRef { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => self,
            Expr::InSubquery { expr, plan, negated } => {
                Expr::InSubquery { expr: Box::new(f(*expr)), plan, negated }
            }
        }
    }

    /// Bottom-up rewrite: children are rewritten first, then `f` is applied
    /// to the rebuilt node.
    pub fn transform_up(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let node = self.map_children(&mut |child| child.transform_up(f));
        f(node)
    }

    /// Replace every column reference with the expression `lookup` maps it
    /// to (references `lookup` does not cover are kept). Used to push a
    /// predicate below the projection that computes its inputs.
    pub fn substitute(self, lookup: &impl Fn(&str) -> Option<Expr>) -> Expr {
        self.transform_up(&mut |e| match &e {
            Expr::Column(name) => lookup(name).unwrap_or(e),
            _ => e,
        })
    }

    /// Evaluate this expression if it references no columns, yielding its
    /// constant value. Non-constant expressions (and constant expressions
    /// whose evaluation fails) yield `None`.
    pub fn const_value(&self) -> Option<ScalarValue> {
        if matches!(self, Expr::Literal(_)) || !self.referenced_columns().is_empty() {
            return None;
        }
        // Reuse the columnar evaluator over a 1-row carrier batch so folded
        // semantics are identical to runtime semantics by construction.
        let schema = Schema::from_pairs(&[("__const", DataType::Int64)]);
        let carrier = Batch::try_new(schema, vec![Column::Int64(vec![0])]).ok()?;
        let column = self.evaluate(&carrier).ok()?;
        (column.len() == 1).then(|| column.get(0))
    }

    /// Fold constant subexpressions into literals and apply the boolean
    /// identities (`true AND x` → `x`, `false OR x` → `x`, ...). The result
    /// evaluates identically on every batch.
    pub fn fold_constants(self) -> Expr {
        self.transform_up(&mut |e| {
            if let Some(value) = e.const_value() {
                return Expr::Literal(value);
            }
            match e {
                Expr::And(l, r) => match (&*l, &*r) {
                    (Expr::Literal(ScalarValue::Bool(true)), _) => *r,
                    (_, Expr::Literal(ScalarValue::Bool(true))) => *l,
                    (Expr::Literal(ScalarValue::Bool(false)), _)
                    | (_, Expr::Literal(ScalarValue::Bool(false))) => {
                        Expr::Literal(ScalarValue::Bool(false))
                    }
                    _ => Expr::And(l, r),
                },
                Expr::Or(l, r) => match (&*l, &*r) {
                    (Expr::Literal(ScalarValue::Bool(false)), _) => *r,
                    (_, Expr::Literal(ScalarValue::Bool(false))) => *l,
                    (Expr::Literal(ScalarValue::Bool(true)), _)
                    | (_, Expr::Literal(ScalarValue::Bool(true))) => {
                        Expr::Literal(ScalarValue::Bool(true))
                    }
                    _ => Expr::Or(l, r),
                },
                Expr::Not(inner) => match &*inner {
                    Expr::Literal(ScalarValue::Bool(b)) => Expr::Literal(ScalarValue::Bool(!b)),
                    Expr::Not(e) => (**e).clone(),
                    _ => Expr::Not(inner),
                },
                other => other,
            }
        })
    }

    /// Split a conjunction into its flat list of conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        let mut out = Vec::new();
        fn walk(e: Expr, out: &mut Vec<Expr>) {
            match e {
                Expr::And(l, r) => {
                    walk(*l, out);
                    walk(*r, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// AND a list of conjuncts back together (None for an empty list).
    pub fn conjoin(conjuncts: Vec<Expr>) -> Option<Expr> {
        conjuncts.into_iter().reduce(|acc, e| acc.and(e))
    }
}

/// Collect the one-level outer references of every expression held by
/// `plan`'s nodes (the correlation columns a subquery plan needs from its
/// enclosing query).
pub(crate) fn collect_plan_outer_refs(plan: &LogicalPlan, out: &mut Vec<String>) {
    for expr in plan.expressions() {
        expr.collect_outer_refs(out);
    }
    for child in plan.children() {
        collect_plan_outer_refs(child, out);
    }
}

/// Element-wise select: `mask[i] ? a[i] : b[i]`.
fn select(mask: &[bool], a: &Column, b: &Column) -> Result<Column> {
    if a.data_type() != b.data_type() {
        // Numeric branches of a CASE may mix Int64 and Float64.
        let av = a.to_f64_vec()?;
        let bv = b.to_f64_vec()?;
        return Ok(Column::Float64(
            mask.iter().enumerate().map(|(i, &m)| if m { av[i] } else { bv[i] }).collect(),
        ));
    }
    let values: Vec<ScalarValue> =
        mask.iter().enumerate().map(|(i, &m)| if m { a.get(i) } else { b.get(i) }).collect();
    Column::from_scalars(a.data_type(), &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::datatype::parse_date;

    fn batch() -> Batch {
        let schema = Schema::from_pairs(&[
            ("qty", DataType::Int64),
            ("price", DataType::Float64),
            ("ship", DataType::Date),
            ("mode", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![10, 20, 30]),
                Column::Float64(vec![1.5, 2.0, 3.0]),
                Column::Date(vec![
                    parse_date("1994-03-01"),
                    parse_date("1995-06-15"),
                    parse_date("1996-01-01"),
                ]),
                Column::Utf8(vec!["AIR".into(), "MAIL".into(), "SHIP".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let b = batch();
        let e = col("qty").mul(col("price"));
        assert_eq!(e.evaluate(&b).unwrap(), Column::Float64(vec![15.0, 40.0, 90.0]));
        assert_eq!(e.data_type(b.schema()).unwrap(), DataType::Float64);

        let p = col("qty").gt_eq(lit(20i64));
        assert_eq!(p.evaluate_mask(&b).unwrap(), vec![false, true, true]);
        assert_eq!(p.data_type(b.schema()).unwrap(), DataType::Bool);

        let int_expr = col("qty").add(lit(1i64));
        assert_eq!(int_expr.data_type(b.schema()).unwrap(), DataType::Int64);
        assert_eq!(col("qty").div(lit(2i64)).data_type(b.schema()).unwrap(), DataType::Float64);
    }

    #[test]
    fn date_predicates_and_year() {
        let b = batch();
        let in_1995 = col("ship").gt_eq(date("1995-01-01")).and(col("ship").lt(date("1996-01-01")));
        assert_eq!(in_1995.evaluate_mask(&b).unwrap(), vec![false, true, false]);
        assert_eq!(col("ship").year().evaluate(&b).unwrap(), Column::Int64(vec![1994, 1995, 1996]));
        let between = col("ship").between(
            ScalarValue::Date(parse_date("1994-01-01")),
            ScalarValue::Date(parse_date("1995-12-31")),
        );
        assert_eq!(between.evaluate_mask(&b).unwrap(), vec![true, true, false]);
    }

    #[test]
    fn boolean_like_and_in_list() {
        let b = batch();
        let e = col("mode").like("%AI%");
        assert_eq!(e.evaluate_mask(&b).unwrap(), vec![true, true, false]);
        let e = col("mode").not_like("%AI%");
        assert_eq!(e.evaluate_mask(&b).unwrap(), vec![false, false, true]);
        let e = col("mode").in_list(vec!["MAIL".into(), "SHIP".into()]);
        assert_eq!(e.evaluate_mask(&b).unwrap(), vec![false, true, true]);
        let e = col("mode").not_in_list(vec!["MAIL".into()]);
        assert_eq!(e.evaluate_mask(&b).unwrap(), vec![true, false, true]);
        let combined = col("qty").eq(lit(10i64)).or(col("mode").eq(lit("SHIP"))).not();
        assert_eq!(combined.evaluate_mask(&b).unwrap(), vec![false, true, false]);
    }

    #[test]
    fn case_and_substr_and_cast() {
        let b = batch();
        // CASE WHEN mode = 'AIR' THEN price ELSE 0 END
        let e = Expr::case_when(col("mode").eq(lit("AIR")), col("price"), lit(0.0f64));
        assert_eq!(e.evaluate(&b).unwrap(), Column::Float64(vec![1.5, 0.0, 0.0]));
        assert_eq!(e.data_type(b.schema()).unwrap(), DataType::Float64);

        // Mixed int/float branches coerce to float.
        let mixed = Expr::case_when(col("qty").gt(lit(15i64)), lit(1i64), lit(0.5f64));
        assert_eq!(mixed.evaluate(&b).unwrap(), Column::Float64(vec![0.5, 1.0, 1.0]));

        let s = col("mode").substr(1, 2);
        assert_eq!(
            s.evaluate(&b).unwrap(),
            Column::Utf8(vec!["AI".into(), "MA".into(), "SH".into()])
        );

        let c = col("qty").cast(DataType::Float64);
        assert_eq!(c.evaluate(&b).unwrap(), Column::Float64(vec![10.0, 20.0, 30.0]));
        assert_eq!(c.data_type(b.schema()).unwrap(), DataType::Float64);
    }

    #[test]
    fn referenced_columns_are_collected_once() {
        let e = col("a").add(col("b")).mul(col("a")).gt(lit(1i64));
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn unknown_column_is_a_plan_error() {
        let b = batch();
        assert!(col("nope").evaluate(&b).is_err());
        assert!(col("nope").data_type(b.schema()).is_err());
    }

    #[test]
    fn multi_branch_case_first_match_wins() {
        let b = batch();
        let e = Expr::Case {
            branches: vec![
                (col("qty").lt(lit(15i64)), lit("small")),
                (col("qty").lt(lit(25i64)), lit("medium")),
            ],
            otherwise: Box::new(lit("large")),
        };
        assert_eq!(
            e.evaluate(&b).unwrap(),
            Column::Utf8(vec!["small".into(), "medium".into(), "large".into()])
        );
    }
}
