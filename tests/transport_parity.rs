//! Integration tests: the TCP transport backend must be invisible to query
//! semantics. Every TPC-H query answered over real loopback sockets must
//! match both the single-threaded reference executor and the in-process
//! transport, and the fault-tolerance machinery must recover identically
//! when shuffle traffic travels over the wire.

use quokka::{
    same_result, EngineConfig, FailureSpec, QuokkaSession, TransportConfig, TransportKind,
};

fn session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).expect("generate TPC-H data")
}

fn tcp(workers: u32) -> EngineConfig {
    EngineConfig::quokka(workers).with_transport(TransportConfig::tcp())
}

/// The CI parity gate: all 22 TPC-H queries over the TCP backend agree with
/// the reference executor and with the in-process backend batch-for-batch.
#[test]
fn all_queries_match_reference_and_inproc_over_tcp() {
    let session = session();
    for q in quokka::tpch::ALL_QUERIES {
        let plan = quokka::tpch::query(q).unwrap();
        let expected = session.run_reference(&plan).unwrap();
        let inproc = session.run_with(&plan, &EngineConfig::quokka(3)).unwrap();
        let tcp = session.run_with(&plan, &tcp(3)).unwrap();
        assert!(
            same_result(&expected, &tcp.batch),
            "Q{q} over tcp diverged from the reference executor"
        );
        assert!(
            same_result(&inproc.batch, &tcp.batch),
            "Q{q} over tcp diverged from the inproc transport"
        );
    }
}

/// Cross-worker shuffle really leaves the process: the per-peer wire stats
/// must show frames on the wire for a distributed join, and roughly agree
/// with the shuffle accounting.
#[test]
fn tcp_shuffle_is_visible_in_per_peer_wire_stats() {
    let session = session();
    let plan = quokka::tpch::query(3).unwrap();
    let outcome = session.run_with(&plan, &tcp(3)).unwrap();
    let peers = &outcome.metrics.transport_peers;
    assert!(!peers.is_empty(), "a 3-worker join must ship frames between peers");
    let frames: u64 = peers.iter().map(|p| p.frames_sent).sum();
    let bytes: u64 = peers.iter().map(|p| p.bytes_sent).sum();
    assert!(frames > 0 && bytes > 0);
    // Framing adds headers, so wire bytes exceed the payload accounting;
    // they may also exceed it further through publish retries.
    assert!(
        bytes >= outcome.metrics.shuffle_bytes,
        "wire bytes {bytes} below shuffle accounting {}",
        outcome.metrics.shuffle_bytes
    );
    // The inproc backend reports no wire traffic at all.
    let inproc = session.run_with(&plan, &EngineConfig::quokka(3)).unwrap();
    assert!(inproc.metrics.transport_peers.is_empty());
}

/// Killing a worker mid-query with shuffle on the wire drives the same
/// lineage-replay recovery to the exact answer: in-flight frames towards
/// the dead peer are lost, the reconcile/replay path repairs them.
#[test]
fn worker_failure_recovers_exactly_over_tcp() {
    let session = session();
    let plan = quokka::tpch::query(10).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    for fraction in [0.3, 0.7] {
        let config = tcp(3).with_failure(FailureSpec::new(1, fraction));
        let outcome = session.run_with(&plan, &config).unwrap();
        assert!(
            same_result(&expected, &outcome.batch),
            "tcp recovery diverged when failing at {fraction}"
        );
        assert_eq!(outcome.metrics.failures, 1);
    }
}

/// The `QUOKKA_TRANSPORT` env override steers the engine (how CI runs the
/// existing suites under both backends without code changes). Env vars are
/// process-global, so exercise every case in one test.
#[test]
fn transport_env_override_applies_to_runs() {
    let session = session();
    let plan = quokka::tpch::query(6).unwrap();
    let expected = session.run_reference(&plan).unwrap();

    std::env::set_var("QUOKKA_TRANSPORT", "tcp");
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3)).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert!(
        !outcome.metrics.transport_peers.is_empty(),
        "QUOKKA_TRANSPORT=tcp must route shuffle over the wire"
    );

    std::env::set_var("QUOKKA_TRANSPORT", "inproc");
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3)).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert!(outcome.metrics.transport_peers.is_empty());

    std::env::set_var("QUOKKA_TRANSPORT", "carrier-pigeon");
    let err = session.run_with(&plan, &EngineConfig::quokka(3));
    assert!(err.is_err(), "malformed transport override must be rejected");

    std::env::remove_var("QUOKKA_TRANSPORT");
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3)).unwrap();
    assert_eq!(outcome.metrics.transport_peers.len(), 0, "default stays inproc");

    // The explicit config constructor agrees with the env spelling.
    assert_eq!(TransportConfig::tcp().kind, TransportKind::Tcp);
    assert_eq!(TransportConfig::default().kind, TransportKind::Inproc);
}
