/root/repo/target/release/deps/quokka_tpch-9ebc38fae89a534d.d: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/libquokka_tpch-9ebc38fae89a534d.rlib: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/libquokka_tpch-9ebc38fae89a534d.rmeta: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/generator.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/q01_q11.rs:
crates/tpch/src/queries/q12_q22.rs:
crates/tpch/src/schema.rs:
